//! The pre-sharding measurement path, preserved as the overhead baseline.
//!
//! Before the sharded fast path, every profiling event dereferenced the
//! monitor's shared `Arc<Inner>` to read the clock, and thread snapshots
//! were merged under a `Mutex<Vec<ThreadSnapshot>>`. This module keeps
//! that exact shape (same [`taskprof::ThreadProfile`] algorithm
//! underneath, same hook surface) so `BENCH_overhead.json` can measure
//! before vs. after in a single build — the "pre-change baseline measured
//! in the same PR".
//!
//! Do not use this for real measurements; it exists only as the
//! comparison point.

use parking_lot::Mutex;
use pomp::{Clock, Monitor, MonotonicClock, ParamId, RegionId, TaskId, TaskRef, ThreadHooks};
use std::cell::RefCell;
use std::sync::Arc;
use taskprof::{AssignPolicy, Profile, ThreadProfile};
use taskprof::snapshot::ThreadSnapshot;

struct Inner<C: Clock> {
    clock: C,
    policy: AssignPolicy,
    collected: Mutex<Vec<ThreadSnapshot>>,
}

/// The pre-sharding profiling monitor: shared-`Arc` clock reads on every
/// event, mutex-guarded snapshot merge at thread end.
pub struct LegacyProfMonitor<C: Clock = MonotonicClock> {
    inner: Arc<Inner<C>>,
}

impl Default for LegacyProfMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyProfMonitor {
    /// Monitor with the real monotonic clock and executing attribution.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::new())
    }
}

impl<C: Clock> LegacyProfMonitor<C> {
    /// Monitor over an arbitrary clock (the overhead microbench swaps in
    /// a [`pomp::VirtualClock`] to measure hook machinery without the
    /// hardware clock read dominating both paths).
    pub fn with_clock(clock: C) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                policy: AssignPolicy::Executing,
                collected: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Drain the snapshots collected so far, sorted by thread id.
    pub fn take_profile(&self) -> Profile {
        let mut threads = std::mem::take(&mut *self.inner.collected.lock());
        threads.sort_by_key(|t| t.tid);
        Profile { threads }
    }
}

/// Per-thread hooks of [`LegacyProfMonitor`]: every event chases the
/// shared `Arc` to read the clock (the steady-state cost the sharded path
/// removed).
pub struct LegacyProfThread<C: Clock> {
    inner: Arc<Inner<C>>,
    prof: RefCell<ThreadProfile>,
}

impl<C: Clock> LegacyProfThread<C> {
    #[inline]
    fn now(&self) -> u64 {
        self.inner.clock.now()
    }
}

impl<C: Clock> Monitor for LegacyProfMonitor<C> {
    type Thread = LegacyProfThread<C>;

    fn thread_begin(
        &self,
        _tid: usize,
        _nthreads: usize,
        region: RegionId,
    ) -> LegacyProfThread<C> {
        let t = self.inner.clock.now();
        let prof = ThreadProfile::new(region, t, self.inner.policy);
        LegacyProfThread {
            inner: self.inner.clone(),
            prof: RefCell::new(prof),
        }
    }

    fn thread_end(&self, tid: usize, thread: LegacyProfThread<C>) {
        let t = self.inner.clock.now();
        let mut prof = thread.prof.into_inner();
        prof.finish(t);
        self.inner.collected.lock().push(prof.snapshot(tid));
    }
}

impl<C: Clock> ThreadHooks for LegacyProfThread<C> {
    #[inline]
    fn enter(&self, region: RegionId) {
        let t = self.now();
        self.prof.borrow_mut().enter(region, t);
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        let t = self.now();
        self.prof.borrow_mut().exit(region, t);
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof
            .borrow_mut()
            .task_create_begin(create_region, task_region, new_task, t);
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof
            .borrow_mut()
            .task_create_end(create_region, new_task, t);
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_begin(task_region, task, t);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_end(task_region, task, t);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_abort(task_region, task, t);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        let t = self.now();
        self.prof.borrow_mut().task_switch(resumed, t);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        let t = self.now();
        self.prof.borrow_mut().parameter_begin(param, value, t);
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        let t = self.now();
        self.prof.borrow_mut().parameter_end(param, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bots::{run_app, AppId, RunOpts, Scale, Variant};

    #[test]
    fn legacy_monitor_still_measures_correctly() {
        let monitor = LegacyProfMonitor::new();
        let opts = RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff);
        let out = run_app(AppId::Fib, &monitor, &opts);
        assert!(out.verified);
        let profile = monitor.take_profile();
        assert_eq!(profile.num_threads(), 2);
    }
}
