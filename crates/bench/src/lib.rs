//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every experiment binary (`fig13`, `table1`, ...) uses these helpers to
//! run BOTS codes instrumented (`taskprof::ProfMonitor`) and
//! uninstrumented (`pomp::NullMonitor`), compute overheads, and print
//! aligned tables.
//!
//! Environment knobs (all optional):
//!
//! * `BENCH_SCALE` — `test` | `small` | `medium` (default `small` so the
//!   full suite completes in minutes; use `medium` for paper-shaped runs),
//! * `BENCH_THREADS` — comma list, default `1,2,4,8` (the paper's sweep),
//! * `BENCH_REPS` — repetitions per configuration, default 3 (minimum is
//!   reported, which is the stablest overhead estimator).

#![warn(missing_docs)]

pub mod legacy;

use bots::{run_app, AppId, Outcome, RunOpts, Scale, Variant};
use cube::AggProfile;
use pomp::{CountingMonitor, NullMonitor};
use std::time::Duration;
use taskprof_session::MeasurementSession;

/// Parsed environment configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Input scale.
    pub scale: Scale,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Repetitions per configuration.
    pub reps: usize,
}

impl Config {
    /// Read `BENCH_*` environment variables.
    pub fn from_env() -> Self {
        let scale = match std::env::var("BENCH_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        };
        let threads = std::env::var("BENCH_THREADS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        let reps = std::env::var("BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3);
        Self {
            scale,
            threads,
            reps,
        }
    }
}

/// Minimum kernel time over `reps` uninstrumented runs.
pub fn uninstrumented_time(
    app: AppId,
    threads: usize,
    scale: Scale,
    variant: Variant,
    reps: usize,
) -> Duration {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    (0..reps)
        .map(|_| {
            let out = run_app(app, &NullMonitor, &opts);
            assert!(out.verified, "{} failed verification", app.name());
            out.kernel
        })
        .min()
        .expect("reps >= 1")
}

/// Minimum kernel time over `reps` instrumented runs, plus the profile of
/// the fastest run.
pub fn instrumented_time(
    app: AppId,
    threads: usize,
    scale: Scale,
    variant: Variant,
    reps: usize,
) -> (Duration, AggProfile) {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    let mut best: Option<(Duration, AggProfile)> = None;
    for _ in 0..reps {
        let session = MeasurementSession::builder("bench")
            .threads(threads)
            .build()
            .expect("default session configuration is valid");
        let out = run_app(app, session.monitor(), &opts);
        assert!(out.verified, "{} failed verification", app.name());
        let prof = AggProfile::from_profile(&session.finish().profile);
        if best.as_ref().is_none_or(|(t, _)| out.kernel < *t) {
            best = Some((out.kernel, prof));
        }
    }
    best.expect("reps >= 1")
}

/// One instrumented run with full options (e.g. depth-parameter runs).
pub fn instrumented_run(app: AppId, opts: &RunOpts) -> (Outcome, AggProfile) {
    let session = MeasurementSession::builder("bench")
        .threads(opts.threads)
        .build()
        .expect("default session configuration is valid");
    let out = run_app(app, session.monitor(), opts);
    assert!(out.verified, "{} failed verification", app.name());
    (out, AggProfile::from_profile(&session.finish().profile))
}

/// Minimum kernel time over `reps` runs under the *legacy* (pre-sharding)
/// measurement path — the before side of the before/after overhead
/// comparison in `BENCH_overhead.json`.
pub fn legacy_instrumented_time(
    app: AppId,
    threads: usize,
    scale: Scale,
    variant: Variant,
    reps: usize,
) -> Duration {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    (0..reps)
        .map(|_| {
            let monitor = legacy::LegacyProfMonitor::new();
            let out = run_app(app, &monitor, &opts);
            assert!(out.verified, "{} failed verification", app.name());
            let profile = monitor.take_profile();
            assert_eq!(profile.num_threads(), threads);
            out.kernel
        })
        .min()
        .expect("reps >= 1")
}

/// Count the measurement events one run of `app` emits (event counts are
/// deterministic per workload, so one counting-only run suffices).
pub fn count_events(app: AppId, threads: usize, scale: Scale, variant: Variant) -> u64 {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    let counter = CountingMonitor::new();
    let out = run_app(app, &counter, &opts);
    assert!(out.verified, "{} failed verification", app.name());
    counter.counts().total()
}

/// Overhead of `instr` relative to `base`, in percent (the quantity of the
/// paper's Figs. 13/14).
pub fn overhead_pct(instr: Duration, base: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (instr.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// Print an aligned table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(ncols - 1)]))
            .collect();
        println!("  {}", line.join("  "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        fmt_row(row);
    }
}

/// Format a duration in seconds with 3 decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a percentage with sign.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:+.1}%")
}

/// Header banner for an experiment binary.
pub fn banner(title: &str, cfg: &Config) {
    println!("== {title} ==");
    println!(
        "   scale={:?} threads={:?} reps={} (set BENCH_SCALE/BENCH_THREADS/BENCH_REPS to change)",
        cfg.scale, cfg.threads, cfg.reps
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let base = Duration::from_millis(100);
        assert!((overhead_pct(Duration::from_millis(110), base) - 10.0).abs() < 1e-9);
        assert!((overhead_pct(Duration::from_millis(90), base) + 10.0).abs() < 1e-9);
        assert_eq!(overhead_pct(base, Duration::ZERO), 0.0);
    }

    #[test]
    fn config_defaults() {
        // Not asserting env specifics (tests may run with env set); just
        // exercise the parser path.
        let c = Config::from_env();
        assert!(!c.threads.is_empty());
        assert!(c.reps >= 1);
    }

    #[test]
    fn harness_runs_fib_both_ways() {
        let t = uninstrumented_time(AppId::Fib, 2, Scale::Test, Variant::Cutoff, 1);
        let (ti, prof) = instrumented_time(AppId::Fib, 2, Scale::Test, Variant::Cutoff, 1);
        assert!(t > Duration::ZERO && ti > Duration::ZERO);
        assert_eq!(prof.nthreads, 2);
        assert!(!prof.task_trees.is_empty());
    }
}
