//! Instrumented vs. uninstrumented kernel times of every BOTS code —
//! the Criterion counterpart of Figs. 13/14 (the `fig13`/`fig14` binaries
//! print the paper-style tables; this tracks regressions).

use bots::{run_app, RunOpts, Scale, ALL_APPS};
use criterion::{criterion_group, criterion_main, Criterion};
use pomp::NullMonitor;
use taskprof::ProfMonitor;

fn bots_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("bots");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    let opts = RunOpts::new(2).scale(Scale::Test);
    for app in ALL_APPS {
        group.bench_function(format!("{}/uninstrumented", app.name()), |b| {
            b.iter(|| {
                let out = run_app(app, &NullMonitor, &opts);
                assert!(out.verified);
            });
        });
        group.bench_function(format!("{}/instrumented", app.name()), |b| {
            b.iter(|| {
                let monitor = ProfMonitor::new();
                let out = run_app(app, &monitor, &opts);
                assert!(out.verified);
                let _ = monitor.take_profile();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bots_overhead);
criterion_main!(benches);
