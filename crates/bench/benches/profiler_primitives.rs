//! Microbenchmarks of the profiler's hot-path primitives: the per-event
//! costs that become the measurement overhead of Figs. 13/14.

use criterion::{criterion_group, criterion_main, Criterion};
use pomp::{registry, RegionKind, TaskIdAllocator, ThreadHooks};
use std::hint::black_box;
use taskprof::{AssignPolicy, ProfMonitor, ThreadProfile};

fn ids() -> (pomp::RegionId, pomp::RegionId, pomp::RegionId) {
    let reg = registry();
    (
        reg.register("bench!parallel", RegionKind::Parallel, file!(), line!()),
        reg.register("bench_task", RegionKind::Task, file!(), line!()),
        reg.register("bench!barrier", RegionKind::ImplicitBarrier, file!(), line!()),
    )
}

fn enter_exit(c: &mut Criterion) {
    let (par, _, _) = ids();
    let work = registry().register("bench_work", RegionKind::User, file!(), line!());
    c.bench_function("profiler/enter_exit_pair", |b| {
        let mut p = ThreadProfile::new(par, 0, AssignPolicy::Executing);
        let mut t = 0u64;
        b.iter(|| {
            t += 2;
            p.enter(black_box(work), t);
            p.exit(black_box(work), t + 1);
        });
    });
}

fn task_lifecycle(c: &mut Criterion) {
    let (par, task, barrier) = ids();
    c.bench_function("profiler/task_begin_end_merge", |b| {
        let mut p = ThreadProfile::new(par, 0, AssignPolicy::Executing);
        p.enter(barrier, 0);
        let alloc = TaskIdAllocator::new();
        let mut t = 0u64;
        b.iter(|| {
            let id = alloc.alloc();
            t += 3;
            p.task_begin(task, id, t);
            p.task_end(task, id, t + 2);
        });
    });
}

fn task_switch(c: &mut Criterion) {
    let (par, task, barrier) = ids();
    c.bench_function("profiler/task_switch_suspend_resume", |b| {
        let mut p = ThreadProfile::new(par, 0, AssignPolicy::Executing);
        p.enter(barrier, 0);
        let alloc = TaskIdAllocator::new();
        let id = alloc.alloc();
        p.task_begin(task, id, 1);
        let mut t = 1u64;
        b.iter(|| {
            t += 2;
            p.task_switch(pomp::TaskRef::Implicit, t);
            p.task_switch(pomp::TaskRef::Explicit(id), t + 1);
        });
    });
}

fn monitor_dispatch(c: &mut Criterion) {
    let (par, _, _) = ids();
    let work = registry().register("bench_work", RegionKind::User, file!(), line!());
    c.bench_function("profiler/monitor_enter_exit_with_clock", |b| {
        let monitor = ProfMonitor::new();
        let th = pomp::Monitor::thread_begin(&monitor, 0, 1, par);
        b.iter(|| {
            th.enter(black_box(work));
            th.exit(black_box(work));
        });
    });
}

fn registry_lookup(c: &mut Criterion) {
    c.bench_function("pomp/region_macro_cached", |b| {
        b.iter(|| black_box(pomp::region!("bench-cached-region", RegionKind::User)));
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = enter_exit, task_lifecycle, task_switch, monitor_dispatch, registry_lookup
}
criterion_main!(benches);
