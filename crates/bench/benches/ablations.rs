//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. executing-node vs. creating-node attribution (paper Fig. 3),
//! 2. free-list node reuse vs. fresh allocation (paper Section V-B).

use criterion::{criterion_group, criterion_main, Criterion};
use pomp::{registry, RegionKind, TaskIdAllocator};
use taskprof::{AssignPolicy, ThreadProfile};

fn regions() -> (pomp::RegionId, pomp::RegionId, pomp::RegionId, pomp::RegionId) {
    let reg = registry();
    (
        reg.register("abl!parallel", RegionKind::Parallel, file!(), line!()),
        reg.register("abl_task", RegionKind::Task, file!(), line!()),
        reg.register("abl_task!create", RegionKind::TaskCreate, file!(), line!()),
        reg.register("abl!barrier", RegionKind::ImplicitBarrier, file!(), line!()),
    )
}

/// Drive `instances` create+begin+inner-region+end cycles through a
/// profiler; returns the arena high-water mark.
fn drive(policy: AssignPolicy, reuse: bool, instances: u64) -> usize {
    let (par, task, create, barrier) = regions();
    let inner = registry().register("abl_inner", RegionKind::User, file!(), line!());
    let alloc = TaskIdAllocator::new();
    let mut p = ThreadProfile::new(par, 0, policy);
    p.set_node_reuse(reuse);
    let mut t = 0u64;
    for _ in 0..instances {
        let id = alloc.alloc();
        p.task_create_begin(create, task, id, t);
        p.task_create_end(create, id, t + 1);
        p.enter(barrier, t + 1);
        p.task_begin(task, id, t + 2);
        p.enter(inner, t + 3);
        p.exit(inner, t + 4);
        p.task_end(task, id, t + 5);
        p.exit(barrier, t + 6);
        t += 10;
    }
    p.arena_capacity()
}

fn attribution_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/attribution");
    group.sample_size(20);
    for (name, policy) in [
        ("executing", AssignPolicy::Executing),
        ("creating", AssignPolicy::Creating),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| drive(policy, true, 1000));
        });
    }
    group.finish();
}

fn node_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/node_reuse");
    group.sample_size(20);
    for (name, reuse) in [("reuse", true), ("fresh_alloc", false)] {
        group.bench_function(name, |b| {
            b.iter(|| drive(AssignPolicy::Executing, reuse, 1000));
        });
    }
    // Document the memory effect alongside the time effect.
    let with = drive(AssignPolicy::Executing, true, 1000);
    let without = drive(AssignPolicy::Executing, false, 1000);
    println!("arena capacity after 1000 instances: reuse = {with} nodes, fresh = {without} nodes");
    assert!(without > 10 * with, "reuse must bound memory");
    group.finish();
}

criterion_group!(benches, attribution_policy, node_reuse);
criterion_main!(benches);
