//! Thread teams and parallel regions.

use crate::constructs::ParallelConstruct;
use crate::ctx::TaskCtx;
use crate::outcome::ParallelOutcome;
use crate::policy::SchedulePolicy;
use crate::raw::RawTask;
use crate::sched::Shared;
use crate::task::TaskNode;
use crate::worker::WorkerState;
use crossbeam_deque::Worker;
use pomp::Monitor;
use std::marker::PhantomData;
use std::sync::Arc;

/// A team configuration. Threads are spawned per parallel region (scoped),
/// which keeps lifetimes simple; the overhead is outside the measured
/// kernels, mirroring how BOTS measures only the parallel region body.
#[derive(Clone)]
pub struct Team {
    nthreads: usize,
    unrestricted_taskwait: bool,
    policy: Option<Arc<dyn SchedulePolicy>>,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("nthreads", &self.nthreads)
            .field("unrestricted_taskwait", &self.unrestricted_taskwait)
            .field("policy", &self.policy.as_ref().map(|_| "custom"))
            .finish()
    }
}

impl Team {
    /// A team of `nthreads` threads (≥ 1).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads >= 1, "a team needs at least one thread");
        Self {
            nthreads,
            unrestricted_taskwait: false,
            policy: None,
        }
    }

    /// ABLATION: drop the tied-task scheduling constraint at taskwaits
    /// (execute *any* queued task, not just descendants of the waiting
    /// task). Still deadlock-free in this runtime, but suspended tasks
    /// pile up on the native stack — the profiler's Table II counter
    /// (max concurrent instances) exposes the difference.
    pub fn unrestricted_taskwait(mut self) -> Self {
        self.unrestricted_taskwait = true;
        self
    }

    /// Install a custom [`SchedulePolicy`] (e.g. the deterministic
    /// simulation scheduler). Without one the team uses production work
    /// stealing ([`crate::WorkSteal`]).
    pub fn with_policy(mut self, policy: Arc<dyn SchedulePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute a parallel region: `f` runs once per team thread (as that
    /// thread's implicit task), tasks created inside are drained by the
    /// implicit barrier at the end, and `monitor` observes every event.
    ///
    /// Panic isolation: a panic in any task body — deferred, undeferred,
    /// or an implicit task itself — is contained at the task boundary
    /// rather than unwinding through the team. The region always runs to
    /// its implicit barrier, the monitor always observes a complete
    /// stream, and the damage is reported in the returned
    /// [`ParallelOutcome`] (failed-task count plus the first panic
    /// payload). Call [`ParallelOutcome::unwrap`] for fail-fast behaviour.
    ///
    /// Pass [`pomp::NullMonitor`] for an uninstrumented run or
    /// `taskprof::ProfMonitor` for a profiled one.
    pub fn parallel<'env, M, F>(
        &self,
        monitor: &M,
        construct: &ParallelConstruct,
        f: F,
    ) -> ParallelOutcome
    where
        M: Monitor,
        F: Fn(&TaskCtx<'_, 'env, M>) + Sync + 'env,
    {
        let n = self.nthreads;
        monitor.parallel_fork(construct.region, n);
        let mut locals: Vec<Worker<RawTask<M>>> = (0..n).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let mut shared = Shared::new(n, *construct, stealers);
        shared.unrestricted_taskwait = self.unrestricted_taskwait;
        if let Some(policy) = &self.policy {
            shared.policy = Arc::clone(policy);
        }
        {
            let shared = &shared;
            let f = &f;
            let local0 = locals.remove(0);
            std::thread::scope(|scope| {
                for (i, local) in locals.drain(..).enumerate() {
                    scope.spawn(move || run_worker(shared, monitor, i + 1, local, f));
                }
                run_worker(shared, monitor, 0, local0, f);
            });
        }
        monitor.parallel_join(construct.region);
        let failed = shared.failed.load(std::sync::atomic::Ordering::Relaxed);
        let first_panic = shared.first_panic.lock().take();
        ParallelOutcome::new(failed, first_panic)
    }
}

fn run_worker<'env, M, F>(
    shared: &Shared<M>,
    monitor: &M,
    tid: usize,
    local: Worker<RawTask<M>>,
    f: &F,
) where
    M: Monitor,
    F: Fn(&TaskCtx<'_, 'env, M>) + Sync + 'env,
{
    // The policy is consulted before the monitor sees the thread and
    // after it lets go, so a serializing policy (the simulation
    // scheduler) covers the monitor's begin/end bookkeeping too.
    shared.policy.thread_start(tid, shared.nthreads);
    let hooks = monitor.thread_begin(tid, shared.nthreads, shared.parallel.region);
    let implicit = TaskNode::implicit();
    let ws = WorkerState::new(shared, tid, local, hooks, implicit.clone());
    {
        // Contain panics escaping the implicit-task body: the thread must
        // still reach the implicit barrier (other threads wait for its
        // arrival, and the barrier drains this thread's queued tasks —
        // the guarantee the closure lifetime erasure in `raw.rs` relies
        // on) and must still return its hooks to the monitor.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = TaskCtx {
                worker: &ws,
                node: implicit,
                _env: PhantomData,
            };
            f(&ctx);
        }));
        if let Err(payload) = outcome {
            shared.task_panicked(payload);
        }
        // Implicit barrier at the end of the parallel region: drains all
        // deferred tasks.
        ws.barrier(shared.parallel.ibarrier);
    }
    monitor.thread_end(tid, ws.hooks);
    shared.policy.thread_stop(tid);
}
