//! Team-shared scheduling state: queues, the task-executing barrier, and
//! the `single` arbiter.

use crate::constructs::ParallelConstruct;
use crate::policy::{SchedulePolicy, WorkSteal};
use crate::raw::RawTask;
use crossbeam_deque::{Injector, Stealer};
use parking_lot::Mutex;
use pomp::{Monitor, TaskIdAllocator};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// State shared by all threads of one parallel region.
pub(crate) struct Shared<M: Monitor> {
    /// Team size.
    pub nthreads: usize,
    /// The parallel construct being executed.
    pub parallel: ParallelConstruct,
    /// Overflow queue (currently used for re-queued stashed tasks and as a
    /// steal source of last resort).
    pub injector: Injector<RawTask<M>>,
    /// One stealer per worker deque, indexed by tid.
    pub stealers: Vec<Stealer<RawTask<M>>>,
    /// Deferred tasks queued or currently executing.
    pub outstanding: AtomicUsize,
    /// The team barrier (implicit and explicit barriers share it: OpenMP
    /// forbids concurrent distinct barriers within one team).
    pub barrier: TaskBarrier,
    /// Instance-id allocator for this region.
    pub ids: TaskIdAllocator,
    /// Arbitration for `single` constructs.
    pub singles: SingleArbiter,
    /// Shared counters for dynamic `for` scheduling.
    pub workshares: WorkshareArbiter,
    /// Named critical-section locks, keyed by region.
    pub criticals: CriticalLocks,
    /// ABLATION: ignore the tied-task scheduling constraint at taskwaits.
    pub unrestricted_taskwait: bool,
    /// Tasks whose body panicked (panic isolation: contained at the task
    /// boundary, reported via [`crate::ParallelOutcome`]).
    pub failed: AtomicUsize,
    /// Payload of the first panic observed anywhere in the team.
    pub first_panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Scheduling decisions: production work stealing by default, or a
    /// deterministic simulation policy installed via
    /// [`crate::Team::with_policy`].
    pub policy: Arc<dyn SchedulePolicy>,
}

impl<M: Monitor> Shared<M> {
    pub fn new(
        nthreads: usize,
        parallel: ParallelConstruct,
        stealers: Vec<Stealer<RawTask<M>>>,
    ) -> Self {
        Self {
            nthreads,
            parallel,
            injector: Injector::new(),
            stealers,
            outstanding: AtomicUsize::new(0),
            barrier: TaskBarrier::new(),
            ids: TaskIdAllocator::new(),
            singles: SingleArbiter::new(),
            workshares: WorkshareArbiter::new(),
            criticals: CriticalLocks::new(),
            unrestricted_taskwait: false,
            failed: AtomicUsize::new(0),
            first_panic: Mutex::new(None),
            policy: Arc::new(WorkSteal),
        }
    }

    /// Account one newly queued deferred task.
    #[inline]
    pub fn task_queued(&self) {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one completed deferred task.
    #[inline]
    pub fn task_retired(&self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "outstanding-task underflow");
    }

    /// Record a contained task-body panic; the first payload is kept for
    /// the region's [`crate::ParallelOutcome`].
    pub fn task_panicked(&self, payload: Box<dyn Any + Send>) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let mut first = self.first_panic.lock();
        if first.is_none() {
            *first = Some(payload);
        }
    }
}

/// A sense-counting barrier at which waiting threads execute queued tasks.
///
/// Release condition: all team threads arrived *and* no deferred task is
/// queued or running. Arrivals are counted monotonically (generation `g`
/// releases at `arrived == (g + 1) * nthreads`), which avoids the classic
/// reset race when threads proceed to the next barrier immediately.
pub(crate) struct TaskBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl TaskBarrier {
    pub fn new() -> Self {
        Self {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Arrive at the barrier; returns the generation to wait on.
    pub fn arrive(&self) -> usize {
        let gen = self.generation.load(Ordering::Acquire);
        self.arrived.fetch_add(1, Ordering::AcqRel);
        gen
    }

    /// True once generation `gen` has been released.
    #[inline]
    pub fn released(&self, gen: usize) -> bool {
        self.generation.load(Ordering::Acquire) != gen
    }

    /// True when every team thread has arrived for generation `gen`.
    #[inline]
    pub fn all_arrived(&self, gen: usize, nthreads: usize) -> bool {
        self.arrived.load(Ordering::Acquire) >= (gen + 1) * nthreads
    }

    /// Attempt to release generation `gen`; returns true for the winner.
    pub fn try_release(&self, gen: usize) -> bool {
        self.generation
            .compare_exchange(gen, gen + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// Shared iteration counters for dynamically scheduled `for` constructs.
///
/// Like [`SingleArbiter`], indexed by each thread's k-th dynamic
/// worksharing encounter (SPMD code reaches the same construct instances
/// in the same order on every thread).
pub(crate) struct WorkshareArbiter {
    counters: Mutex<Vec<std::sync::Arc<AtomicUsize>>>,
}

impl WorkshareArbiter {
    pub fn new() -> Self {
        Self {
            counters: Mutex::new(Vec::new()),
        }
    }

    /// The shared iteration counter of the k-th worksharing instance.
    pub fn counter(&self, k: usize) -> std::sync::Arc<AtomicUsize> {
        let mut v = self.counters.lock();
        while v.len() <= k {
            v.push(std::sync::Arc::new(AtomicUsize::new(0)));
        }
        v[k].clone()
    }
}

/// Named `critical` section locks: one mutex per critical region, created
/// on first use.
pub(crate) struct CriticalLocks {
    locks: Mutex<std::collections::HashMap<pomp::RegionId, std::sync::Arc<Mutex<()>>>>,
}

impl CriticalLocks {
    pub fn new() -> Self {
        Self {
            locks: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The lock guarding `region`.
    pub fn lock_for(&self, region: pomp::RegionId) -> std::sync::Arc<Mutex<()>> {
        self.locks.lock().entry(region).or_default().clone()
    }
}

/// First-arriver-wins arbitration for `single` constructs.
///
/// Threads of a team execute the same sequence of `single` constructs, so
/// the k-th dynamic `single` encounter of each thread refers to the same
/// construct instance; the first thread to claim index k executes the body.
pub(crate) struct SingleArbiter {
    claims: Mutex<Vec<u32>>,
}

impl SingleArbiter {
    pub fn new() -> Self {
        Self {
            claims: Mutex::new(Vec::new()),
        }
    }

    /// Claim the k-th single instance; true for the first claimant.
    pub fn claim(&self, k: usize) -> bool {
        let mut v = self.claims.lock();
        if v.len() <= k {
            v.resize(k + 1, 0);
        }
        v[k] += 1;
        v[k] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arbiter_first_claim_wins() {
        let s = SingleArbiter::new();
        assert!(s.claim(0));
        assert!(!s.claim(0));
        assert!(s.claim(2)); // sparse index is fine
        assert!(s.claim(1));
        assert!(!s.claim(1));
    }

    #[test]
    fn barrier_generation_counting() {
        let b = TaskBarrier::new();
        let g0 = b.arrive();
        assert_eq!(g0, 0);
        assert!(!b.all_arrived(g0, 2));
        let g0b = b.arrive();
        assert_eq!(g0b, 0);
        assert!(b.all_arrived(g0, 2));
        assert!(!b.released(g0));
        assert!(b.try_release(g0));
        assert!(b.released(g0));
        assert!(!b.try_release(g0), "only one winner per generation");
        // Next generation: arrivals accumulate past the old threshold.
        let g1 = b.arrive();
        assert_eq!(g1, 1);
        assert!(!b.all_arrived(g1, 2));
        b.arrive();
        assert!(b.all_arrived(g1, 2));
        assert!(b.try_release(g1));
    }

    #[test]
    fn barrier_two_threads_loop() {
        // Hammer the barrier across threads to shake out release races.
        let b = std::sync::Arc::new(TaskBarrier::new());
        let n = 2;
        let rounds = 2000;
        let mut handles = vec![];
        for _ in 0..n {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..rounds {
                    let gen = b.arrive();
                    while !b.released(gen) {
                        if b.all_arrived(gen, n) && b.try_release(gen) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
