//! Pluggable scheduling decisions: one trait covering every point where
//! the runtime makes a nondeterministic choice.
//!
//! The production scheduler ([`WorkSteal`]) and the deterministic
//! simulation scheduler (`simsched::SimScheduler`) implement the same
//! trait, so both drive the *same* worker/barrier/taskwait code paths —
//! the schedule explorer exercises exactly the runtime it validates.
//!
//! Every method has a default that reproduces the production behaviour
//! byte-for-byte, so `WorkSteal` is a unit struct and the hooks cost one
//! predictable dynamic call at points that are already scheduling-heavy
//! (queue operations, barrier polls); nothing is added to task bodies.

/// A point in the runtime where the scheduler is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedPoint {
    /// A deferred task is being created (between `task_create_begin` and
    /// `task_create_end`); the new task is already queued.
    Spawn,
    /// A `taskwait` wait loop finished executing one eligible task and is
    /// about to look for the next.
    TaskwaitPoll,
    /// A barrier wait loop finished executing one task and is about to
    /// look for the next.
    BarrierPoll,
    /// One iteration of a `taskwait` wait loop found nothing runnable —
    /// the thread cannot make progress until another thread acts.
    TaskwaitIdle,
    /// One iteration of a barrier wait loop found nothing runnable (and
    /// the barrier is not releasable yet).
    BarrierIdle,
    /// The thread just released a barrier (all arrived, no outstanding
    /// tasks) — other threads waiting at it become runnable now.
    BarrierRelease,
    /// A thread is about to arbitrate a `single` construct.
    SingleEnter,
}

/// Which task source a barrier scheduling point drains first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireOrder {
    /// Own deque, then the injector, then steal (production order).
    LocalFirst,
    /// Steal first, then own deque, then the injector.
    StealFirst,
}

/// Scheduling decisions a team consults during a parallel region.
///
/// Implementations must be `Send + Sync`: one policy value is shared by
/// every thread of the team. The default body of every method reproduces
/// the production work-stealing behaviour.
pub trait SchedulePolicy: Send + Sync {
    /// Thread `tid` of an `nthreads`-wide team is about to run its
    /// implicit task (called before the monitor's `thread_begin`).
    fn thread_start(&self, tid: usize, nthreads: usize) {
        let _ = (tid, nthreads);
    }

    /// Thread `tid` finished the region (called after the monitor's
    /// `thread_end`).
    fn thread_stop(&self, tid: usize) {
        let _ = tid;
    }

    /// The thread reached a task scheduling point. Returning `true` means
    /// the policy performed its own wait/yield and the caller must skip
    /// its backoff; `false` (the default) keeps the production
    /// spin-then-snooze behaviour.
    fn sched_point(&self, tid: usize, point: SchedPoint) -> bool {
        let _ = (tid, point);
        false
    }

    /// Whether a `task()` creation on `tid` defers (queues) the task.
    /// `false` executes it immediately (undeferred) on the encountering
    /// thread — the choice OpenMP runtimes are free to make for any task.
    fn defer_task(&self, tid: usize) -> bool {
        let _ = tid;
        true
    }

    /// First victim index to probe when stealing. `round_robin` is the
    /// thread's cursor (the victim after the last successful steal); the
    /// production policy continues from it.
    fn steal_start(&self, tid: usize, nthreads: usize, round_robin: usize) -> usize {
        let _ = (tid, nthreads);
        round_robin
    }

    /// Source order for barrier scheduling points.
    fn acquire_order(&self, tid: usize) -> AcquireOrder {
        let _ = tid;
        AcquireOrder::LocalFirst
    }
}

/// The production policy: plain work stealing, exactly the behaviour the
/// runtime had before policies existed. Every method keeps its default.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkSteal;

impl SchedulePolicy for WorkSteal {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worksteal_defaults_reproduce_production_choices() {
        let p = WorkSteal;
        p.thread_start(0, 2);
        assert!(!p.sched_point(0, SchedPoint::TaskwaitPoll));
        assert!(!p.sched_point(1, SchedPoint::BarrierPoll));
        assert!(p.defer_task(0));
        assert_eq!(p.steal_start(0, 4, 3), 3);
        assert_eq!(p.acquire_order(0), AcquireOrder::LocalFirst);
        p.thread_stop(0);
    }

    #[test]
    fn policy_is_object_safe() {
        let p: std::sync::Arc<dyn SchedulePolicy> = std::sync::Arc::new(WorkSteal);
        assert!(p.defer_task(1));
        assert!(!p.sched_point(0, SchedPoint::Spawn));
    }
}
