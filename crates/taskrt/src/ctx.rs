//! The per-task execution context — the API task bodies and parallel
//! regions program against.

use crate::constructs::{SingleConstruct, TaskConstruct};
use crate::raw::erase_closure;
use crate::task::TaskNode;
use crate::worker::WorkerState;
use pomp::{Monitor, ParamId, RegionId, TaskId, TaskRef, ThreadHooks};
use std::marker::PhantomData;
use std::sync::Arc;

/// Handle to the current task, passed to every parallel-region and task
/// closure.
///
/// `'env` is the environment lifetime of the enclosing [`crate::Team::parallel`]
/// call: task closures may borrow anything that outlives the parallel
/// region, exactly like `rayon::scope` tasks.
pub struct TaskCtx<'w, 'env, M: Monitor> {
    pub(crate) worker: &'w WorkerState<'w, M>,
    pub(crate) node: Arc<TaskNode>,
    pub(crate) _env: PhantomData<&'env mut &'env ()>,
}

impl<'w, 'env, M: Monitor> TaskCtx<'w, 'env, M> {
    /// Team-local id of the executing thread (0-based).
    pub fn tid(&self) -> usize {
        self.worker.tid
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.worker.shared.nthreads
    }

    /// Recursion depth of the current task in the dynamic task tree
    /// (implicit task = 0).
    pub fn task_depth(&self) -> u32 {
        self.node.depth
    }

    /// Instance id of the current task, `None` in the implicit task.
    pub fn task_id(&self) -> Option<TaskId> {
        self.node.id
    }

    /// True in the implicit task (directly inside the parallel region).
    pub fn is_implicit(&self) -> bool {
        self.node.is_implicit()
    }

    fn assert_current(&self) {
        debug_assert!(
            Arc::ptr_eq(&self.node, &self.worker.current.borrow()),
            "TaskCtx used outside its own task's execution"
        );
    }

    /// Create a tied task: an instance of `construct` whose body may run
    /// on any team thread, at any scheduling point, but — being tied —
    /// never migrates once started. Normally the task is deferred
    /// (queued); a [`crate::SchedulePolicy`] may instead choose to run it
    /// undeferred on the encountering thread, a freedom OpenMP grants the
    /// runtime for any task.
    pub fn task<F>(&self, construct: &TaskConstruct, f: F)
    where
        F: for<'x> FnOnce(&TaskCtx<'x, 'env, M>) + Send + 'env,
    {
        if self.worker.shared.policy.defer_task(self.worker.tid) {
            self.task_deferred(construct, f);
        } else {
            self.task_undeferred(construct, f);
        }
    }

    /// The `if` clause: when `cond` is false the task executes immediately
    /// (undeferred) on the encountering thread, still as a proper task
    /// instance with its own begin/end events.
    ///
    /// Undeferred bodies get the same panic isolation as deferred ones:
    /// a panicking body is recorded as a failed instance (`task_abort`
    /// event, [`crate::ParallelOutcome`] accounting), the encountering
    /// task resumes, and execution continues after the construct.
    pub fn task_if<F>(&self, cond: bool, construct: &TaskConstruct, f: F)
    where
        F: for<'x> FnOnce(&TaskCtx<'x, 'env, M>) + Send + 'env,
    {
        if cond {
            self.task(construct, f);
        } else {
            self.task_undeferred(construct, f);
        }
    }

    /// Queue a deferred instance of `construct`.
    fn task_deferred<F>(&self, construct: &TaskConstruct, f: F)
    where
        F: for<'x> FnOnce(&TaskCtx<'x, 'env, M>) + Send + 'env,
    {
        self.assert_current();
        let boxed: crate::raw::ScopedClosure<'env, M> = Box::new(f);
        // SAFETY: the implicit barrier at the end of the parallel region
        // completes every deferred task before `Team::parallel` returns,
        // i.e. before `'env` can end.
        let erased = unsafe { erase_closure(boxed) };
        self.worker
            .spawn(construct.task, construct.create, &self.node, erased);
    }

    /// Execute an instance of `construct` immediately (undeferred) on the
    /// encountering thread.
    fn task_undeferred<F>(&self, construct: &TaskConstruct, f: F)
    where
        F: for<'x> FnOnce(&TaskCtx<'x, 'env, M>) + Send + 'env,
    {
        self.assert_current();
        let id = self.worker.shared.ids.alloc();
        let child = TaskNode::child_of(&self.node, id);
        let prev = self.worker.current.replace(child.clone());
        self.worker.hooks.task_begin(construct.task, id);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&TaskCtx {
                worker: self.worker,
                node: child.clone(),
                _env: PhantomData,
            });
        }));
        match outcome {
            Ok(()) => self.worker.hooks.task_end(construct.task, id),
            Err(payload) => {
                self.worker.hooks.task_abort(construct.task, id);
                self.worker.shared.task_panicked(payload);
            }
        }
        child.complete();
        if let Some(prev_id) = prev.id {
            self.worker.hooks.task_switch(TaskRef::Explicit(prev_id));
        }
        *self.worker.current.borrow_mut() = prev;
    }

    /// Wait for the current task's direct children, executing eligible
    /// queued tasks meanwhile (a task scheduling point).
    pub fn taskwait(&self, region: RegionId) {
        self.assert_current();
        self.worker.taskwait(region);
    }

    /// Explicit team barrier (only valid in the implicit task). Waiting
    /// threads execute queued tasks.
    pub fn barrier(&self, region: RegionId) {
        self.assert_current();
        assert!(
            self.node.is_implicit(),
            "explicit barrier inside an explicit task"
        );
        self.worker.barrier(region);
    }

    /// `single` construct: exactly one team thread runs `f`; an implied
    /// barrier (at which threads execute queued tasks) closes the
    /// construct. Only valid in the implicit task.
    pub fn single<F>(&self, construct: &SingleConstruct, f: F)
    where
        F: FnOnce(&TaskCtx<'_, 'env, M>),
    {
        self.assert_current();
        assert!(self.node.is_implicit(), "single inside an explicit task");
        let k = self.worker.single_count.get();
        self.worker.single_count.set(k + 1);
        // Let a simulating policy decide the arrival order — and thus the
        // winner — of this `single` arbitration (no-op in production).
        self.worker
            .shared
            .policy
            .sched_point(self.worker.tid, crate::policy::SchedPoint::SingleEnter);
        self.worker.hooks.enter(construct.region);
        if self.worker.shared.singles.claim(k) {
            f(self);
        }
        self.worker.hooks.exit(construct.region);
        self.worker.barrier(construct.barrier);
    }

    /// `for` worksharing, static schedule: iterations `range` are divided
    /// into `chunk`-sized blocks assigned round-robin by thread id (like
    /// `schedule(static, chunk)`); an implied barrier closes the
    /// construct. Only valid in the implicit task, and every team thread
    /// must reach the construct.
    pub fn for_static<F>(
        &self,
        construct: &crate::constructs::ForConstruct,
        range: std::ops::Range<usize>,
        chunk: usize,
        f: F,
    ) where
        F: Fn(usize),
    {
        self.assert_current();
        assert!(self.node.is_implicit(), "worksharing inside an explicit task");
        assert!(chunk > 0, "chunk must be positive");
        // Keep the per-thread encounter counters aligned with for_dynamic.
        let k = self.worker.workshare_count.get();
        self.worker.workshare_count.set(k + 1);
        self.worker.hooks.enter(construct.region);
        let n = self.num_threads();
        let mut block = self.tid();
        loop {
            let start = range.start + block * chunk;
            if start >= range.end {
                break;
            }
            let end = (start + chunk).min(range.end);
            for i in start..end {
                f(i);
            }
            block += n;
        }
        self.worker.hooks.exit(construct.region);
        self.worker.barrier(construct.barrier);
    }

    /// `for` worksharing, dynamic schedule: threads grab `chunk`-sized
    /// blocks from a shared counter (like `schedule(dynamic, chunk)`); an
    /// implied barrier closes the construct. Only valid in the implicit
    /// task, and every team thread must reach the construct.
    pub fn for_dynamic<F>(
        &self,
        construct: &crate::constructs::ForConstruct,
        range: std::ops::Range<usize>,
        chunk: usize,
        f: F,
    ) where
        F: Fn(usize),
    {
        self.assert_current();
        assert!(self.node.is_implicit(), "worksharing inside an explicit task");
        assert!(chunk > 0, "chunk must be positive");
        let k = self.worker.workshare_count.get();
        self.worker.workshare_count.set(k + 1);
        let counter = self.worker.shared.workshares.counter(k);
        self.worker.hooks.enter(construct.region);
        loop {
            let start = range.start + counter.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
            if start >= range.end {
                break;
            }
            let end = (start + chunk).min(range.end);
            for i in start..end {
                f(i);
            }
        }
        self.worker.hooks.exit(construct.region);
        self.worker.barrier(construct.barrier);
    }

    /// Named `critical` section: mutual exclusion across the team. The
    /// region is entered *before* acquiring the lock, so lock contention
    /// shows up as the critical region's exclusive time in the profile.
    /// Do not create or wait for tasks inside (the lock is held).
    pub fn critical<R>(&self, region: RegionId, f: impl FnOnce(&Self) -> R) -> R {
        self.assert_current();
        let lock = self.worker.shared.criticals.lock_for(region);
        self.worker.hooks.enter(region);
        let guard = lock.lock();
        let r = f(self);
        drop(guard);
        self.worker.hooks.exit(region);
        r
    }

    /// Run `f` inside an instrumented user region.
    pub fn region<R>(&self, region: RegionId, f: impl FnOnce(&Self) -> R) -> R {
        self.assert_current();
        self.worker.hooks.enter(region);
        let r = f(self);
        self.worker.hooks.exit(region);
        r
    }

    /// Run `f` inside a parameter scope (paper Section VI): profile
    /// children are recorded under a `(param, value)` sub-tree, e.g. the
    /// recursion depth of `nqueens` in the paper's Table IV.
    pub fn parameter<R>(&self, param: ParamId, value: i64, f: impl FnOnce(&Self) -> R) -> R {
        self.assert_current();
        self.worker.hooks.parameter_begin(param, value);
        let r = f(self);
        self.worker.hooks.parameter_end(param);
        r
    }
}
