//! Pre-registered region bundles for the OpenMP-like constructs.
//!
//! OPARI2 generates one static region descriptor per construct in the
//! source; these types are the equivalent: register them once (e.g. in a
//! lazily-initialized struct per application) and pass references into the
//! hot paths.

use pomp::{registry, RegionId, RegionKind};

/// Regions of a `task` construct: the task region itself plus its creation
/// region (entered/exited by the encountering thread while queuing an
/// instance — paper Fig. 7 "create A").
#[derive(Clone, Copy, Debug)]
pub struct TaskConstruct {
    /// Root region of every instance of this construct.
    pub task: RegionId,
    /// The creation-site region.
    pub create: RegionId,
}

impl TaskConstruct {
    /// Register (or look up) the construct named `name`.
    pub fn new(name: &str) -> Self {
        let r = registry();
        Self {
            task: r.register(name, RegionKind::Task, file!(), line!()),
            create: r.register(&format!("{name}!create"), RegionKind::TaskCreate, file!(), line!()),
        }
    }
}

/// Regions of a `parallel` construct: the region itself plus the implicit
/// barrier at its end.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConstruct {
    /// The parallel region (root of each thread's main call tree).
    pub region: RegionId,
    /// The implicit barrier at region end.
    pub ibarrier: RegionId,
}

impl ParallelConstruct {
    /// Register (or look up) the construct named `name`.
    pub fn new(name: &str) -> Self {
        let r = registry();
        Self {
            region: r.register(name, RegionKind::Parallel, file!(), line!()),
            ibarrier: r.register(
                &format!("{name}!ibarrier"),
                RegionKind::ImplicitBarrier,
                file!(),
                line!(),
            ),
        }
    }
}

/// Regions of a `single` construct: the region plus its implied barrier.
#[derive(Clone, Copy, Debug)]
pub struct SingleConstruct {
    /// The single region (all threads enter/exit; one executes the body).
    pub region: RegionId,
    /// The implied barrier at the end of the construct.
    pub barrier: RegionId,
}

impl SingleConstruct {
    /// Register (or look up) the construct named `name`.
    pub fn new(name: &str) -> Self {
        let r = registry();
        Self {
            region: r.register(name, RegionKind::Single, file!(), line!()),
            barrier: r.register(
                &format!("{name}!barrier"),
                RegionKind::ImplicitBarrier,
                file!(),
                line!(),
            ),
        }
    }
}

/// Regions of a `for` worksharing construct: the loop region plus its
/// implied barrier.
#[derive(Clone, Copy, Debug)]
pub struct ForConstruct {
    /// The worksharing region (all threads enter/exit; iterations are
    /// divided among them).
    pub region: RegionId,
    /// The implied barrier at the end of the construct.
    pub barrier: RegionId,
}

impl ForConstruct {
    /// Register (or look up) the construct named `name`.
    pub fn new(name: &str) -> Self {
        let r = registry();
        Self {
            region: r.register(name, RegionKind::Workshare, file!(), line!()),
            barrier: r.register(
                &format!("{name}!barrier"),
                RegionKind::ImplicitBarrier,
                file!(),
                line!(),
            ),
        }
    }
}

/// Register (or look up) a `taskwait` region named `name`.
pub fn taskwait_region(name: &str) -> RegionId {
    registry().register(name, RegionKind::Taskwait, file!(), line!())
}

/// Register (or look up) an explicit `barrier` region named `name`.
pub fn barrier_region(name: &str) -> RegionId {
    registry().register(name, RegionKind::ExplicitBarrier, file!(), line!())
}

/// Register (or look up) a named `critical` region.
pub fn critical_region(name: &str) -> RegionId {
    registry().register(name, RegionKind::Critical, file!(), line!())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_register_paired_regions() {
        let t = TaskConstruct::new("tc-test");
        assert_eq!(registry().kind(t.task), RegionKind::Task);
        assert_eq!(registry().kind(t.create), RegionKind::TaskCreate);
        assert_eq!(registry().name(t.create), "tc-test!create");
        // Idempotent.
        let t2 = TaskConstruct::new("tc-test");
        assert_eq!(t.task, t2.task);
        assert_eq!(t.create, t2.create);
    }

    #[test]
    fn parallel_and_single_register() {
        let p = ParallelConstruct::new("pc-test");
        assert_eq!(registry().kind(p.ibarrier), RegionKind::ImplicitBarrier);
        let s = SingleConstruct::new("sc-test");
        assert_eq!(registry().kind(s.region), RegionKind::Single);
        let tw = taskwait_region("tw-test");
        assert_eq!(registry().kind(tw), RegionKind::Taskwait);
        let b = barrier_region("b-test");
        assert_eq!(registry().kind(b), RegionKind::ExplicitBarrier);
    }
}
