//! Type-erased deferred tasks.
//!
//! Task closures may borrow from the environment of the enclosing
//! `parallel` call (lifetime `'env`), like `rayon::scope` tasks. Queues are
//! `'static`-typed, so closures are transmuted to `'static` on enqueue. The
//! soundness argument is the classic scoped-task one: every deferred task
//! completes before `Team::parallel` returns (the implicit barrier at the
//! end of the parallel region drains all queues and waits for running
//! tasks), so no closure is ever invoked after `'env` ends.

use crate::ctx::TaskCtx;
use crate::task::TaskNode;
use pomp::{Monitor, RegionId};
use std::sync::Arc;

/// A task closure still carrying its environment lifetime.
pub(crate) type ScopedClosure<'env, M> =
    Box<dyn for<'w> FnOnce(&TaskCtx<'w, 'env, M>) + Send + 'env>;

/// A queued (deferred) task closure, erased to `'static`.
pub(crate) type ErasedClosure<M> = ScopedClosure<'static, M>;

/// A deferred task instance waiting in a queue.
pub(crate) struct RawTask<M: Monitor> {
    /// Dynamic task-tree node (carries the instance id — the OPARI2 "store
    /// the id inside the task's context" trick).
    pub node: Arc<TaskNode>,
    /// The task construct's region.
    pub region: RegionId,
    /// The body.
    pub body: ErasedClosure<M>,
}

/// Erase the environment lifetime of a task closure.
///
/// # Safety
///
/// The caller must guarantee the closure is invoked (or dropped) before
/// `'env` ends. `Team::parallel` guarantees this via its implicit barrier.
pub(crate) unsafe fn erase_closure<'env, M: Monitor>(
    f: ScopedClosure<'env, M>,
) -> ErasedClosure<M> {
    // Box<dyn Trait + 'a> -> Box<dyn Trait + 'static>: identical layout,
    // only the lifetime bound changes.
    std::mem::transmute(f)
}
