//! `taskrt` — an OpenMP-3.0-style *tied task* runtime for Rust.
//!
//! This crate is the runtime substrate of the paper reproduction: the
//! original work profiles OpenMP tasks through OPARI2 instrumentation of a
//! C runtime; here we provide the equivalent tasking semantics as a
//! library, with the instrumentation hooks (`pomp`) built into exactly the
//! program points OPARI2 instruments.
//!
//! # Model
//!
//! * [`Team::parallel`] runs a closure once per team thread (the thread's
//!   *implicit task*), ending with an implicit barrier.
//! * [`TaskCtx::task`] creates a *deferred tied task*: it may start on any
//!   thread (work stealing) at a task scheduling point, but once started it
//!   never migrates — suspension at a [`TaskCtx::taskwait`] resumes on the
//!   same thread (it is literally kept on that thread's stack).
//! * Scheduling points execute queued tasks: `taskwait` runs descendants
//!   of the waiting task (the tied-task scheduling constraint), barriers
//!   run anything.
//! * Untied tasks are not provided; like the paper's instrumentation
//!   (Section IV-D2), everything is tied by default because arbitrary
//!   interruption points cannot be instrumented from outside the runtime.
//!
//! # Instrumentation
//!
//! Every scheduling-relevant event is reported to a [`pomp::Monitor`]:
//! the profiler (`taskprof::ProfMonitor`) for measured runs, or
//! [`pomp::NullMonitor`] — whose hooks compile to nothing — for the
//! uninstrumented baseline used in overhead experiments.
//!
//! ```
//! use taskrt::{Team, TaskConstruct, ParallelConstruct, taskwait_region};
//! use pomp::NullMonitor;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let par = ParallelConstruct::new("demo");
//! let fib_task = TaskConstruct::new("demo_fib");
//! let tw = taskwait_region("demo_fib!wait");
//! let result = AtomicU64::new(0);
//!
//! Team::new(2).parallel(&NullMonitor, &par, |ctx| {
//!     if ctx.tid() == 0 {
//!         ctx.task(&fib_task, |ctx| {
//!             ctx.task(&fib_task, |_| { /* child work */ });
//!             ctx.taskwait(tw);
//!             result.fetch_add(1, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(result.load(Ordering::Relaxed), 1);
//! ```

#![warn(missing_docs)]

mod constructs;
mod ctx;
mod outcome;
mod policy;
mod raw;
mod sched;
mod task;
mod team;
mod worker;

pub use constructs::{
    barrier_region, critical_region, taskwait_region, ForConstruct, ParallelConstruct,
    SingleConstruct, TaskConstruct,
};
pub use ctx::TaskCtx;
pub use outcome::ParallelOutcome;
pub use policy::{AcquireOrder, SchedPoint, SchedulePolicy, WorkSteal};
pub use task::TaskNode;
pub use team::Team;

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn constructs(name: &str) -> (ParallelConstruct, TaskConstruct, pomp::RegionId) {
        (
            ParallelConstruct::new(&format!("{name}-par")),
            TaskConstruct::new(&format!("{name}-task")),
            taskwait_region(&format!("{name}-tw")),
        )
    }

    #[test]
    fn all_threads_run_implicit_task() {
        let (par, _, _) = constructs("t-implicit");
        let seen = Mutex::new(Vec::new());
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            seen.lock().unwrap().push(ctx.tid());
            assert_eq!(ctx.num_threads(), 4);
            assert!(ctx.is_implicit());
            assert_eq!(ctx.task_depth(), 0);
        });
        let mut tids = seen.into_inner().unwrap();
        tids.sort();
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deferred_tasks_all_execute() {
        let (par, task, _) = constructs("t-defer");
        let count = AtomicUsize::new(0);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for _ in 0..1000 {
                    ctx.task(&task, |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn tasks_borrow_the_environment() {
        let (par, task, tw) = constructs("t-borrow");
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicUsize::new(0);
        let (data_ref, total_ref) = (&data, &total);
        Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for chunk in data_ref.chunks(10) {
                    ctx.task(&task, move |_| {
                        let s: u64 = chunk.iter().sum();
                        total_ref.fetch_add(s as usize, Ordering::Relaxed);
                    });
                }
                ctx.taskwait(tw);
                assert_eq!(total_ref.load(Ordering::Relaxed), 4950);
            }
        });
    }

    #[test]
    fn taskwait_waits_for_direct_children() {
        let (par, task, tw) = constructs("t-tw");
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for i in 0..8 {
                    ctx.task(&task, move |_| {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        order_ref.lock().unwrap().push(format!("child{i}"));
                    });
                }
                ctx.taskwait(tw);
                order_ref.lock().unwrap().push("after".into());
            }
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 9);
        assert_eq!(order.last().unwrap(), "after");
    }

    #[test]
    fn recursive_fib_with_taskwait() {
        let (par, task, tw) = constructs("t-fib");
        fn fib<'e, M: pomp::Monitor>(
            ctx: &TaskCtx<'_, 'e, M>,
            task: &'e TaskConstruct,
            tw: pomp::RegionId,
            n: u64,
            out: &'e AtomicUsize,
        ) {
            if n < 2 {
                out.fetch_add(n as usize, Ordering::Relaxed);
                return;
            }
            // Sum leaf contributions directly into `out`.
            ctx.task(task, move |ctx| fib(ctx, task, tw, n - 1, out));
            ctx.task(task, move |ctx| fib(ctx, task, tw, n - 2, out));
            ctx.taskwait(tw);
        }
        let out = AtomicUsize::new(0);
        let task_ref = &task;
        let out_ref = &out;
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                fib(ctx, task_ref, tw, 16, out_ref);
            }
        });
        assert_eq!(out.load(Ordering::Relaxed), 987); // fib(16)
    }

    #[test]
    fn undeferred_task_runs_inline() {
        let (par, task, _) = constructs("t-undeferred");
        let tid_of_exec = AtomicUsize::new(usize::MAX);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 2 {
                ctx.task_if(false, &task, |inner| {
                    assert!(!inner.is_implicit());
                    assert_eq!(inner.task_depth(), 1);
                    tid_of_exec.store(inner.tid(), Ordering::Relaxed);
                });
                // Undeferred: executed before task_if returns.
                assert_eq!(tid_of_exec.load(Ordering::Relaxed), 2);
            }
        });
    }

    #[test]
    fn single_runs_exactly_once_per_encounter() {
        let (par, _, _) = constructs("t-single");
        let single = SingleConstruct::new("t-single-s");
        let count = AtomicUsize::new(0);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            for _ in 0..3 {
                ctx.single(&single, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn explicit_barrier_synchronizes() {
        let (par, task, _) = constructs("t-barrier");
        let barrier = barrier_region("t-barrier-b");
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for _ in 0..100 {
                    ctx.task(&task, |_| {
                        before.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            ctx.barrier(barrier);
            // The barrier drains all queued tasks.
            if before.load(Ordering::Relaxed) != 100 {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_creator_pattern_spreads_work() {
        // sparselu/alignment shape: one thread creates, all execute.
        let (par, task, _) = constructs("t-creator");
        let single = SingleConstruct::new("t-creator-s");
        let executed_by = Mutex::new(std::collections::HashSet::new());
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            ctx.single(&single, |sctx| {
                for _ in 0..400 {
                    sctx.task(&task, |ictx| {
                        // Busy work so stealing has a chance to kick in.
                        std::hint::black_box((0..2000u64).sum::<u64>());
                        executed_by.lock().unwrap().insert(ictx.tid());
                    });
                }
            });
        });
        let set = executed_by.into_inner().unwrap();
        assert!(!set.is_empty());
        // With 400 tasks × 4 threads stealing, more than one thread should
        // participate (not guaranteed in theory, overwhelmingly likely).
        assert!(set.len() >= 2, "no stealing happened: {set:?}");
    }

    #[test]
    fn nested_taskwaits_single_thread() {
        // Regression guard for the taskwait work-discovery path with one
        // thread: ancestors must find their children again after a nested
        // taskwait stashed unrelated tasks.
        let (par, task, tw) = constructs("t-nested1");
        let count = AtomicUsize::new(0);
        Team::new(1).parallel(&NullMonitor, &par, |ctx| {
            for _ in 0..4 {
                ctx.task(&task, |ctx| {
                    for _ in 0..4 {
                        ctx.task(&task, |ctx| {
                            for _ in 0..4 {
                                ctx.task(&task, |_| {
                                    count.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                            ctx.taskwait(tw);
                        });
                    }
                    ctx.taskwait(tw);
                });
            }
            ctx.taskwait(tw);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn for_static_covers_range_disjointly() {
        let (par, _, _) = constructs("t-forstatic");
        let fc = ForConstruct::new("t-forstatic-f");
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        let hits_ref = &hits;
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            ctx.for_static(&fc, 0..103, 7, |i| {
                hits_ref[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "iteration {i}");
        }
    }

    #[test]
    fn for_dynamic_covers_range_disjointly() {
        let (par, _, _) = constructs("t-fordyn");
        let fc = ForConstruct::new("t-fordyn-f");
        let hits: Vec<AtomicUsize> = (0..211).map(|_| AtomicUsize::new(0)).collect();
        let hits_ref = &hits;
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            // Two consecutive dynamic loops: encounter counters must not
            // bleed between them.
            ctx.for_dynamic(&fc, 0..100, 3, |i| {
                hits_ref[i].fetch_add(1, Ordering::Relaxed);
            });
            ctx.for_dynamic(&fc, 100..211, 5, |i| {
                hits_ref[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "iteration {i}");
        }
    }

    #[test]
    fn critical_sections_are_mutually_exclusive() {
        let (par, task, _) = constructs("t-crit");
        let crit = critical_region("t-crit-c");
        // A non-atomic counter only stays consistent under real mutual
        // exclusion.
        let mut unguarded = 0u64;
        let cell = std::sync::atomic::AtomicPtr::new(&mut unguarded as *mut u64);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            for _ in 0..50 {
                ctx.task(&task, |ctx| {
                    ctx.critical(crit, |_| {
                        // SAFETY: the critical section provides exclusion.
                        unsafe {
                            let p = cell.load(Ordering::Relaxed);
                            let v = *p;
                            std::hint::black_box(v);
                            *p = v + 1;
                        }
                    });
                });
            }
        });
        assert_eq!(unguarded, 200);
    }

    #[test]
    fn for_empty_range_is_fine() {
        let (par, _, _) = constructs("t-forempty");
        let fc = ForConstruct::new("t-forempty-f");
        let count = AtomicUsize::new(0);
        Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            ctx.for_static(&fc, 5..5, 4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            ctx.for_dynamic(&fc, 9..9, 1, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tasks_created_by_multiple_threads() {
        let (par, task, tw) = constructs("t-multi");
        let count = AtomicUsize::new(0);
        Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            for _ in 0..50 {
                ctx.task(&task, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            ctx.taskwait(tw);
        });
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn deep_task_chain_completes() {
        let (par, task, tw) = constructs("t-deep");
        fn chain<'e, M: pomp::Monitor>(
            ctx: &TaskCtx<'_, 'e, M>,
            task: &'e TaskConstruct,
            tw: pomp::RegionId,
            depth: u32,
            count: &'e AtomicUsize,
        ) {
            count.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                ctx.task(task, move |ctx| chain(ctx, task, tw, depth - 1, count));
                ctx.taskwait(tw);
            }
        }
        let count = AtomicUsize::new(0);
        let (task_ref, count_ref) = (&task, &count);
        Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                chain(ctx, task_ref, tw, 200, count_ref);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 201);
    }

    #[test]
    fn panicking_sibling_is_contained() {
        let (par, task, tw) = constructs("t-panic-sibling");
        let done = AtomicUsize::new(0);
        let done_ref = &done;
        let outcome = Team::new(4).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for i in 0..16 {
                    ctx.task(&task, move |_| {
                        if i == 5 {
                            panic!("sibling 5 exploded");
                        }
                        done_ref.fetch_add(1, Ordering::Relaxed);
                    });
                }
                ctx.taskwait(tw); // must not deadlock on the dead child
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 15, "siblings kept running");
        assert!(!outcome.is_ok());
        assert_eq!(outcome.failed_tasks(), 1);
        assert_eq!(outcome.panic_message(), Some("sibling 5 exploded"));
    }

    #[test]
    fn panicking_undeferred_task_is_contained() {
        let (par, task, _) = constructs("t-panic-undeferred");
        let after = AtomicUsize::new(0);
        let outcome = Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                ctx.task_if(false, &task, |_| panic!("undeferred boom"));
                after.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(
            after.load(Ordering::Relaxed),
            1,
            "encountering task resumes after the failed undeferred child"
        );
        assert_eq!(outcome.failed_tasks(), 1);
        assert_eq!(outcome.panic_message(), Some("undeferred boom"));
    }

    #[test]
    fn panicking_implicit_task_still_joins() {
        let (par, task, _) = constructs("t-panic-implicit");
        let executed = AtomicUsize::new(0);
        let executed_ref = &executed;
        let outcome = Team::new(3).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                for _ in 0..32 {
                    ctx.task(&task, move |_| {
                        executed_ref.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            if ctx.tid() == 2 {
                panic!("implicit task of thread 2 died");
            }
        });
        assert_eq!(
            executed.load(Ordering::Relaxed),
            32,
            "deferred work still drains at the implicit barrier"
        );
        assert_eq!(outcome.failed_tasks(), 1);
        assert_eq!(
            outcome.panic_message(),
            Some("implicit task of thread 2 died")
        );
    }

    #[test]
    fn panic_in_recursive_chain_releases_ancestors() {
        // A panic deep in a recursive task chain must not wedge the
        // taskwaits of its ancestors.
        let (par, task, tw) = constructs("t-panic-chain");
        fn chain<'e, M: pomp::Monitor>(
            ctx: &TaskCtx<'_, 'e, M>,
            task: &'e TaskConstruct,
            tw: pomp::RegionId,
            depth: usize,
        ) {
            if depth == 0 {
                panic!("leaf panicked");
            }
            ctx.task(task, move |ctx| chain(ctx, task, tw, depth - 1));
            ctx.taskwait(tw);
        }
        let task_ref = &task;
        let outcome = Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                chain(ctx, task_ref, tw, 20);
            }
        });
        assert_eq!(outcome.failed_tasks(), 1);
        assert_eq!(outcome.panic_message(), Some("leaf panicked"));
    }

    #[test]
    fn outcome_is_ok_on_clean_run() {
        let (par, task, _) = constructs("t-outcome-ok");
        let outcome = Team::new(2).parallel(&NullMonitor, &par, |ctx| {
            if ctx.tid() == 0 {
                ctx.task(&task, |_| {});
            }
        });
        assert!(outcome.is_ok());
        assert_eq!(outcome.failed_tasks(), 0);
        outcome.unwrap();
    }
}
