//! Per-thread worker: task execution, scheduling points, stealing.

use crate::ctx::TaskCtx;
use crate::policy::{AcquireOrder, SchedPoint};
use crate::raw::{ErasedClosure, RawTask};
use crate::sched::Shared;
use crate::task::{is_descendant_of, TaskNode};
use crossbeam_deque::{Steal, Worker};
use crossbeam_utils::Backoff;
use pomp::{Monitor, RegionId, TaskRef, ThreadHooks};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;

/// One team thread's execution state.
pub(crate) struct WorkerState<'s, M: Monitor> {
    pub shared: &'s Shared<M>,
    pub tid: usize,
    pub local: Worker<RawTask<M>>,
    pub hooks: M::Thread,
    /// The task currently executing on this thread (implicit at top level).
    pub current: RefCell<Arc<TaskNode>>,
    /// Count of `single` constructs dynamically encountered by this thread.
    pub single_count: Cell<usize>,
    /// Count of worksharing constructs dynamically encountered.
    pub workshare_count: Cell<usize>,
    /// Round-robin steal cursor.
    steal_from: Cell<usize>,
}

impl<'s, M: Monitor> WorkerState<'s, M> {
    pub fn new(
        shared: &'s Shared<M>,
        tid: usize,
        local: Worker<RawTask<M>>,
        hooks: M::Thread,
        implicit: Arc<TaskNode>,
    ) -> Self {
        Self {
            shared,
            tid,
            local,
            hooks,
            current: RefCell::new(implicit),
            single_count: Cell::new(0),
            workshare_count: Cell::new(0),
            steal_from: Cell::new((tid + 1) % shared.nthreads.max(1)),
        }
    }

    /// Queue a deferred tied task created by `creator`.
    pub fn spawn(
        &self,
        task_region: RegionId,
        create_region: RegionId,
        creator: &Arc<TaskNode>,
        body: ErasedClosure<M>,
    ) {
        let id = self.shared.ids.alloc();
        self.hooks.task_create_begin(create_region, task_region, id);
        let node = TaskNode::child_of(creator, id);
        self.shared.task_queued();
        self.local.push(RawTask {
            node,
            region: task_region,
            body,
        });
        // Task creation is a scheduling point; the simulation policy
        // charges its deterministic creation cost here, inside the
        // create_begin/create_end frame, and may switch simulated threads.
        self.shared.policy.sched_point(self.tid, SchedPoint::Spawn);
        self.hooks.task_create_end(create_region, id);
    }

    /// Execute one task instance to completion on this thread. Emits
    /// `task_begin` and `task_end` (or `task_abort` if the body panics)
    /// and the resume `task_switch` for a suspended explicit task below
    /// it, maintains the current-task pointer, and signals completion to
    /// the parent.
    ///
    /// Panic isolation: a panic in the task body is caught here, at the
    /// task boundary. The instance is recorded as failed on the shared
    /// state, its completion is still signalled (so the parent's
    /// `taskwait` and the team barrier counters cannot deadlock), and the
    /// thread carries on with sibling tasks. The panic payload surfaces
    /// through [`crate::ParallelOutcome`].
    ///
    /// Does not touch the outstanding-task counter: deferred-task callers
    /// retire it themselves; undeferred tasks were never counted.
    pub fn execute(&self, raw: RawTask<M>) {
        let prev = self.current.replace(raw.node.clone());
        let id = raw.node.id.expect("executing an implicit task");
        self.hooks.task_begin(raw.region, id);
        let body = raw.body;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ctx = TaskCtx {
                worker: self,
                node: raw.node.clone(),
                _env: PhantomData,
            };
            body(&ctx);
        }));
        match outcome {
            Ok(()) => self.hooks.task_end(raw.region, id),
            Err(payload) => {
                self.hooks.task_abort(raw.region, id);
                self.shared.task_panicked(payload);
            }
        }
        raw.node.complete();
        // Resume whatever was suspended below us.
        if let Some(prev_id) = prev.id {
            self.hooks.task_switch(TaskRef::Explicit(prev_id));
        }
        *self.current.borrow_mut() = prev;
    }

    /// Pop from the thread's own LIFO deque.
    fn pop_local(&self) -> Option<RawTask<M>> {
        self.local.pop()
    }

    /// Pull from the shared injector (re-queued stashed tasks).
    fn pop_injector(&self) -> Option<RawTask<M>> {
        loop {
            match self.shared.injector.steal_batch_and_pop(&self.local) {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => return None,
            }
        }
    }

    /// Steal from other workers, starting at the policy-chosen victim and
    /// continuing round-robin.
    fn pop_steal(&self) -> Option<RawTask<M>> {
        let n = self.shared.stealers.len();
        let start = self
            .shared
            .policy
            .steal_start(self.tid, n, self.steal_from.get());
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.tid {
                continue;
            }
            loop {
                match self.shared.stealers[victim].steal() {
                    Steal::Success(t) => {
                        self.steal_from.set(victim);
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Pop any runnable task: by default local LIFO first, then the
    /// injector, then steal round-robin from other workers (the policy
    /// may flip the order). Used by (implicit-task) barriers, where the
    /// scheduling constraint allows any task.
    pub fn pop_any(&self) -> Option<RawTask<M>> {
        match self.shared.policy.acquire_order(self.tid) {
            AcquireOrder::LocalFirst => self
                .pop_local()
                .or_else(|| self.pop_injector())
                .or_else(|| self.pop_steal()),
            AcquireOrder::StealFirst => self
                .pop_steal()
                .or_else(|| self.pop_local())
                .or_else(|| self.pop_injector()),
        }
    }

    /// `taskwait`: wait until the current task's direct children complete,
    /// executing eligible queued tasks meanwhile.
    ///
    /// Tied-task scheduling constraint: a new tied task may only run here
    /// if it is a descendant of the suspended task, otherwise the schedule
    /// could require resuming the suspended task on a different thread.
    /// Ineligible tasks popped from the local deque are stashed and
    /// re-queued afterwards.
    pub fn taskwait(&self, region: RegionId) {
        self.hooks.enter(region);
        let waiting = self.current.borrow().clone();
        let eligible = |node: &Arc<TaskNode>| {
            self.shared.unrestricted_taskwait || is_descendant_of(node, &waiting)
        };
        if waiting.pending() > 0 {
            let mut stash: Vec<RawTask<M>> = Vec::new();
            let backoff = Backoff::new();
            while waiting.pending() > 0 {
                if let Some(t) = self.local.pop() {
                    if eligible(&t.node) {
                        self.execute(t);
                        self.shared.task_retired();
                        backoff.reset();
                        // Completed a task at the scheduling point: let a
                        // simulating policy rotate to another thread
                        // before the next pop (no-op in production).
                        self.shared
                            .policy
                            .sched_point(self.tid, SchedPoint::TaskwaitPoll);
                    } else {
                        stash.push(t);
                    }
                    continue;
                }
                // Local deque exhausted: pull from the injector, which may
                // hold descendants re-queued by nested taskwaits.
                match self.shared.injector.steal_batch_and_pop(&self.local) {
                    Steal::Success(t) => {
                        if eligible(&t.node) {
                            self.execute(t);
                            self.shared.task_retired();
                            backoff.reset();
                            self.shared
                                .policy
                                .sched_point(self.tid, SchedPoint::TaskwaitPoll);
                        } else {
                            stash.push(t);
                        }
                        continue;
                    }
                    Steal::Retry => continue,
                    Steal::Empty => {}
                }
                if !self
                    .shared
                    .policy
                    .sched_point(self.tid, SchedPoint::TaskwaitIdle)
                {
                    backoff.snooze();
                }
            }
            // Make stashed tasks schedulable again. They go back on the
            // local deque so that suspended ancestors (whose taskwait scans
            // this deque) find their children when they resume; idle
            // threads can steal them from here as usual.
            for t in stash.into_iter().rev() {
                self.local.push(t);
            }
        }
        self.hooks.exit(region);
    }

    /// Team barrier at which waiting threads execute queued tasks. Used
    /// for the implicit barrier at the end of the parallel region, for
    /// explicit barriers, and for the implied barrier of `single`.
    ///
    /// Must only be called from the implicit task (OpenMP forbids barriers
    /// inside explicit tasks).
    pub fn barrier(&self, region: RegionId) {
        debug_assert!(
            self.current.borrow().is_implicit(),
            "barrier inside an explicit task"
        );
        self.hooks.enter(region);
        let b = &self.shared.barrier;
        let gen = b.arrive();
        let backoff = Backoff::new();
        while !b.released(gen) {
            if let Some(t) = self.pop_any() {
                self.execute(t);
                self.shared.task_retired();
                backoff.reset();
                self.shared
                    .policy
                    .sched_point(self.tid, SchedPoint::BarrierPoll);
                continue;
            }
            if b.all_arrived(gen, self.shared.nthreads)
                && self.shared.outstanding.load(std::sync::atomic::Ordering::Acquire) == 0
            {
                if b.try_release(gen) {
                    // Releasing is a state change the other waiters cannot
                    // observe through their own actions; tell the policy so
                    // a simulating scheduler can wake them (no-op in
                    // production).
                    self.shared
                        .policy
                        .sched_point(self.tid, SchedPoint::BarrierRelease);
                    break;
                }
                continue;
            }
            if !self
                .shared
                .policy
                .sched_point(self.tid, SchedPoint::BarrierIdle)
            {
                backoff.snooze();
            }
        }
        self.hooks.exit(region);
    }
}
