//! Structured result of a parallel region under panic isolation.

use std::any::Any;
use std::fmt;

/// What happened inside one [`crate::Team::parallel`] call.
///
/// A measurement runtime must never let a fault in one task tear down the
/// whole team (Score-P's cardinal rule: instrumentation does not take down
/// the application). Panics inside task bodies are therefore caught at
/// the task boundary: the instance is marked failed, its completion is
/// still signalled (so `taskwait`s and barriers do not deadlock), and the
/// siblings keep running. The team reports the damage here instead of
/// unwinding mid-region.
pub struct ParallelOutcome {
    failed_tasks: usize,
    first_panic: Option<Box<dyn Any + Send>>,
}

impl ParallelOutcome {
    pub(crate) fn new(failed_tasks: usize, first_panic: Option<Box<dyn Any + Send>>) -> Self {
        Self {
            failed_tasks,
            first_panic,
        }
    }

    /// True when every task (and every implicit task) ran to completion.
    pub fn is_ok(&self) -> bool {
        self.failed_tasks == 0
    }

    /// Number of task instances whose body panicked. Implicit tasks
    /// (the per-thread region bodies) count too.
    pub fn failed_tasks(&self) -> usize {
        self.failed_tasks
    }

    /// The payload of the chronologically first panic the team observed,
    /// if any.
    pub fn first_panic(&self) -> Option<&(dyn Any + Send)> {
        self.first_panic.as_deref()
    }

    /// Best-effort rendering of the first panic's message (`&str` and
    /// `String` payloads; anything else is opaque).
    pub fn panic_message(&self) -> Option<&str> {
        let payload = self.first_panic.as_deref()?;
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            Some(s)
        } else {
            payload.downcast_ref::<String>().map(String::as_str)
        }
    }

    /// Consume the outcome, returning the first panic payload.
    pub fn into_first_panic(self) -> Option<Box<dyn Any + Send>> {
        self.first_panic
    }

    /// Re-raise the first panic on the calling thread, if any — for
    /// callers that *want* fail-fast semantics after the team has shut
    /// down cleanly. No-op when the region succeeded.
    pub fn unwrap(self) {
        if let Some(payload) = self.first_panic {
            std::panic::resume_unwind(payload);
        }
        debug_assert_eq!(self.failed_tasks, 0);
    }
}

impl fmt::Debug for ParallelOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelOutcome")
            .field("failed_tasks", &self.failed_tasks)
            .field("first_panic", &self.panic_message())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_outcome() {
        let o = ParallelOutcome::new(0, None);
        assert!(o.is_ok());
        assert_eq!(o.failed_tasks(), 0);
        assert!(o.panic_message().is_none());
        o.unwrap(); // must not panic
    }

    #[test]
    fn failed_outcome_reports_message() {
        let o = ParallelOutcome::new(2, Some(Box::new("boom")));
        assert!(!o.is_ok());
        assert_eq!(o.failed_tasks(), 2);
        assert_eq!(o.panic_message(), Some("boom"));
        let o = ParallelOutcome::new(1, Some(Box::new(String::from("dynamic boom"))));
        assert_eq!(o.panic_message(), Some("dynamic boom"));
    }

    #[test]
    fn unwrap_resumes_the_panic() {
        let o = ParallelOutcome::new(1, Some(Box::new("resurfaced")));
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || o.unwrap())).unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "resurfaced");
    }
}
