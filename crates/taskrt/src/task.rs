//! Task bookkeeping: the dynamic task tree and type-erased task closures.

use pomp::TaskId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A node of the *dynamic* task tree (not the profile tree): one per task
/// instance, linked to its creating task. Used for
///
/// * `taskwait` semantics: a task waits for its *direct* children
///   (see [`TaskNode::pending`]),
/// * the tied-task scheduling constraint: at a suspended tied task's
///   scheduling point the thread only starts tasks that are descendants
///   of the suspended task.
#[derive(Debug)]
pub struct TaskNode {
    /// The creating task, `None` for implicit tasks.
    pub parent: Option<Arc<TaskNode>>,
    /// Direct children created and not yet completed.
    pending_children: AtomicUsize,
    /// Distance from the implicit task (implicit = 0).
    pub depth: u32,
    /// Instance id for explicit tasks; `None` for implicit tasks.
    pub id: Option<TaskId>,
}

impl TaskNode {
    /// The implicit task of one team thread.
    pub fn implicit() -> Arc<Self> {
        Arc::new(Self {
            parent: None,
            pending_children: AtomicUsize::new(0),
            depth: 0,
            id: None,
        })
    }

    /// A new explicit child of `parent`. Increments the parent's pending
    /// count.
    pub fn child_of(parent: &Arc<TaskNode>, id: TaskId) -> Arc<Self> {
        parent.pending_children.fetch_add(1, Ordering::Relaxed);
        Arc::new(Self {
            parent: Some(parent.clone()),
            pending_children: AtomicUsize::new(0),
            depth: parent.depth + 1,
            id: Some(id),
        })
    }

    /// Direct children still outstanding (what `taskwait` waits on).
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending_children.load(Ordering::Acquire)
    }

    /// Mark this instance complete: releases the parent's `taskwait`.
    pub fn complete(&self) {
        if let Some(p) = &self.parent {
            let prev = p.pending_children.fetch_sub(1, Ordering::Release);
            debug_assert!(prev > 0, "pending-children underflow");
        }
    }

    /// True if this is an implicit task.
    pub fn is_implicit(&self) -> bool {
        self.id.is_none()
    }
}

/// Is `node` a (transitive) descendant of `ancestor`? Walks the parent
/// chain; cheap because task depths are small in practice (paper Table II:
/// at most 20 concurrently live instances even in deep recursions).
pub fn is_descendant_of(node: &Arc<TaskNode>, ancestor: &Arc<TaskNode>) -> bool {
    let mut cur = node.clone();
    while cur.depth > ancestor.depth {
        match &cur.parent {
            Some(p) => {
                if Arc::ptr_eq(p, ancestor) {
                    return true;
                }
                cur = p.clone();
            }
            None => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::TaskIdAllocator;

    #[test]
    fn pending_children_counts_direct_children_only() {
        let ids = TaskIdAllocator::new();
        let root = TaskNode::implicit();
        let a = TaskNode::child_of(&root, ids.alloc());
        let _b = TaskNode::child_of(&root, ids.alloc());
        let aa = TaskNode::child_of(&a, ids.alloc());
        assert_eq!(root.pending(), 2);
        assert_eq!(a.pending(), 1);
        aa.complete();
        assert_eq!(a.pending(), 0);
        assert_eq!(root.pending(), 2, "grandchild completion is invisible to root");
        a.complete();
        assert_eq!(root.pending(), 1);
    }

    #[test]
    fn descendant_check_walks_chain() {
        let ids = TaskIdAllocator::new();
        let root = TaskNode::implicit();
        let other_root = TaskNode::implicit();
        let a = TaskNode::child_of(&root, ids.alloc());
        let aa = TaskNode::child_of(&a, ids.alloc());
        let b = TaskNode::child_of(&other_root, ids.alloc());
        assert!(is_descendant_of(&a, &root));
        assert!(is_descendant_of(&aa, &root));
        assert!(is_descendant_of(&aa, &a));
        assert!(!is_descendant_of(&a, &aa));
        assert!(!is_descendant_of(&b, &root));
        assert!(!is_descendant_of(&root, &root), "a task is not its own descendant");
    }

    #[test]
    fn implicit_vs_explicit() {
        let ids = TaskIdAllocator::new();
        let root = TaskNode::implicit();
        assert!(root.is_implicit());
        let c = TaskNode::child_of(&root, ids.alloc());
        assert!(!c.is_implicit());
        assert_eq!(c.depth, 1);
        assert_eq!(c.id.unwrap().get(), 1);
    }
}
