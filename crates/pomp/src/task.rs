//! Task-instance identifiers.
//!
//! The key enabler of the paper's algorithm is that every *instance* of a
//! task construct can be identified across suspension and resumption. In the
//! original system this is the OPARI2 extension that stores an id in the
//! task's own context structure; here the runtime stores a [`TaskId`] in its
//! task object and passes it to every hook.

use std::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of one task instance. Unique within one [`TaskIdAllocator`]
/// (the runtime uses one allocator per process).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TaskId(NonZeroU64);

impl TaskId {
    /// Raw numeric value (always ≥ 1; 0 is reserved so `Option<TaskId>` is
    /// pointer-sized).
    #[inline]
    pub fn get(self) -> u64 {
        self.0.get()
    }

    /// Rebuild a `TaskId` from [`TaskId::get`]. Returns `None` for 0.
    #[inline]
    pub fn from_raw(raw: u64) -> Option<Self> {
        NonZeroU64::new(raw).map(TaskId)
    }
}

/// Lock-free allocator of task-instance ids.
#[derive(Debug)]
pub struct TaskIdAllocator {
    next: AtomicU64,
}

impl Default for TaskIdAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskIdAllocator {
    /// New allocator starting at id 1.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next id. Never returns the same id twice.
    #[inline]
    pub fn alloc(&self) -> TaskId {
        let raw = self.next.fetch_add(1, Ordering::Relaxed);
        TaskId(NonZeroU64::new(raw).expect("task id counter wrapped"))
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn ids_are_unique_and_dense() {
        let a = TaskIdAllocator::new();
        let ids: Vec<u64> = (0..100).map(|_| a.alloc().get()).collect();
        assert_eq!(ids, (1..=100).collect::<Vec<u64>>());
        assert_eq!(a.allocated(), 100);
    }

    #[test]
    fn option_task_id_is_word_sized() {
        assert_eq!(
            std::mem::size_of::<Option<TaskId>>(),
            std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn from_raw_round_trips() {
        let a = TaskIdAllocator::new();
        let id = a.alloc();
        assert_eq!(TaskId::from_raw(id.get()), Some(id));
        assert_eq!(TaskId::from_raw(0), None);
    }

    #[test]
    fn concurrent_allocation_no_duplicates() {
        let a = Arc::new(TaskIdAllocator::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || (0..1000).map(|_| a.alloc().get()).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
