//! Time sources for measurement.
//!
//! All profiler timestamps are `u64` nanoseconds from an arbitrary origin.
//! [`MonotonicClock`] wraps `std::time::Instant` for real measurements;
//! [`VirtualClock`] is a manually-advanced counter used by tests and the
//! event-replay examples to reproduce the paper's figures with exact
//! numbers.
//!
//! # Per-thread readers (the sharded fast path)
//!
//! The per-event cost of a monitor is dominated by its clock reads, so the
//! event fast path must not chase shared pointers to obtain a timestamp.
//! [`ClockSource`] lets a clock hand out a cheap per-thread
//! [`ClockReader`] at `thread_begin`: the reader caches whatever
//! calibration state the clock needs so that every subsequent `now()`
//! touches thread-local state only. For [`MonotonicClock`] on x86-64 that
//! state is a TSC anchor — the cycle counter calibrated once per process
//! against the OS monotonic clock — so a read is one `rdtsc` plus a
//! multiply instead of a `clock_gettime` call; elsewhere (or if
//! calibration fails) the reader falls back to a copied origin `Instant`.
//! [`VirtualClock`] readers share the underlying atomic counter, so
//! deterministic tests still observe `set`/`advance` calls made from the
//! driver.
//!
//! The portable (non-TSC) fallback can be forced on x86-64 with
//! `--cfg taskprof_portable_clock` (`RUSTFLAGS`), which is how CI
//! compile-checks the path other architectures take without needing a
//! cross toolchain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must be monotonic per thread.
    fn now(&self) -> u64;
}

/// A per-thread timestamp reader handed out by a [`ClockSource`].
///
/// Readers are owned by exactly one thread and live on that thread's
/// measurement shard; `now()` must not acquire locks or dereference
/// shared monitor state beyond what the clock semantically requires.
pub trait ClockReader: Send {
    /// Nanoseconds since the source clock's origin, consistent with the
    /// source's own [`Clock::now`].
    fn now(&self) -> u64;
}

/// A clock that can hand out per-thread [`ClockReader`]s with cached
/// calibration state. This is what the profiler's sharded fast path
/// requires; plain [`Clock`] remains object-safe for coarse uses.
pub trait ClockSource: Clock {
    /// The per-thread reader type.
    type Reader: ClockReader + 'static;

    /// Create a reader for the calling thread. Readers are cheap; one is
    /// created per thread per parallel region.
    fn thread_reader(&self) -> Self::Reader;
}

/// Real time via `std::time::Instant`, origin = construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Clock with origin "now".
    pub fn new() -> Self {
        // Force the process-wide TSC calibration here, at measurement
        // setup, so the one-time spin never lands inside a timed region
        // via the first `thread_reader()` call.
        #[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
        tsc::ns_per_tick();
        Self {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Calibrated time-stamp-counter access (x86-64 only).
#[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
mod tsc {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    #[inline]
    pub(super) fn read() -> u64 {
        // SAFETY: `rdtsc` has no preconditions on x86-64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Nanoseconds per TSC tick, calibrated once per process against the
    /// OS monotonic clock over a short spin. `None` when the result is
    /// implausible (TSC stopped, virtualized away, or wildly off), in
    /// which case readers fall back to `Instant`.
    pub(super) fn ns_per_tick() -> Option<f64> {
        static CAL: OnceLock<Option<f64>> = OnceLock::new();
        *CAL.get_or_init(|| {
            let i0 = Instant::now();
            let t0 = read();
            while i0.elapsed() < Duration::from_millis(5) {
                std::hint::spin_loop();
            }
            let dns = i0.elapsed().as_nanos() as f64;
            let dticks = read().wrapping_sub(t0);
            if dticks == 0 {
                return None;
            }
            let k = dns / dticks as f64;
            (0.01..=100.0).contains(&k).then_some(k)
        })
    }
}

/// A TSC anchor pinning a reader's cycle counter to the source clock's
/// nanosecond timeline at reader creation.
#[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
#[derive(Clone, Copy, Debug)]
struct TscAnchor {
    /// Clock time (ns since the source's origin) when the anchor was set.
    origin_ns: u64,
    /// TSC value when the anchor was set.
    origin_tick: u64,
    /// Process-wide calibration factor.
    ns_per_tick: f64,
}

/// Per-thread reader of a [`MonotonicClock`] — the cached calibrated
/// clock read of the sharded fast path. On x86-64 it carries a
/// [`TscAnchor`] so `now()` is one `rdtsc` plus a multiply; otherwise (or
/// when calibration fails) it is a copied origin `Instant`. Either way,
/// zero shared state.
///
/// Readers are anchored to the source clock's timeline when created and
/// live for one parallel region, so cross-thread skew is bounded by the
/// calibration error over a region's duration.
#[derive(Clone, Copy, Debug)]
pub struct MonotonicReader {
    origin: Instant,
    #[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
    tsc: Option<TscAnchor>,
}

impl ClockReader for MonotonicReader {
    #[inline]
    fn now(&self) -> u64 {
        #[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
        if let Some(a) = self.tsc {
            let dticks = tsc::read().wrapping_sub(a.origin_tick);
            return a.origin_ns + (dticks as f64 * a.ns_per_tick) as u64;
        }
        self.origin.elapsed().as_nanos() as u64
    }
}

impl ClockSource for MonotonicClock {
    type Reader = MonotonicReader;

    #[inline]
    fn thread_reader(&self) -> MonotonicReader {
        MonotonicReader {
            origin: self.origin,
            #[cfg(all(target_arch = "x86_64", not(taskprof_portable_clock)))]
            tsc: tsc::ns_per_tick().map(|ns_per_tick| TscAnchor {
                origin_ns: self.origin.elapsed().as_nanos() as u64,
                origin_tick: tsc::read(),
                ns_per_tick,
            }),
        }
    }
}

/// Deterministic clock: `now()` returns the last value set or advanced to.
///
/// Clones share the underlying counter (so do the per-thread readers it
/// hands out), which lets a test driver keep a handle while the monitor
/// owns another. The caller is responsible for only advancing it from one
/// place at a time in deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    t: Arc<AtomicU64>,
}

impl VirtualClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// New clock starting at `t` nanoseconds.
    pub fn starting_at(t: u64) -> Self {
        let c = Self::new();
        c.set(t);
        c
    }

    /// Advance by `dt` nanoseconds, returning the new time.
    pub fn advance(&self, dt: u64) -> u64 {
        self.t.fetch_add(dt, Ordering::Relaxed) + dt
    }

    /// Jump to an absolute time. Must not go backwards (debug-asserted).
    pub fn set(&self, t: u64) {
        debug_assert!(t >= self.t.load(Ordering::Relaxed), "virtual clock moved backwards");
        self.t.store(t, Ordering::Relaxed);
    }

    /// Current virtual time. Inherent so `c.now()` stays unambiguous even
    /// though `VirtualClock` is both a [`Clock`] and its own
    /// [`ClockReader`].
    #[inline]
    pub fn now(&self) -> u64 {
        self.t.load(Ordering::Relaxed)
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> u64 {
        self.t.load(Ordering::Relaxed)
    }
}

impl ClockReader for VirtualClock {
    #[inline]
    fn now(&self) -> u64 {
        self.t.load(Ordering::Relaxed)
    }
}

impl ClockSource for VirtualClock {
    type Reader = VirtualClock;

    #[inline]
    fn thread_reader(&self) -> VirtualClock {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(3), 8);
        assert_eq!(c.now(), 8);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clock_is_object_safe() {
        let c: Box<dyn Clock> = Box::new(VirtualClock::starting_at(7));
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn monotonic_reader_agrees_with_source() {
        let c = MonotonicClock::new();
        let r = c.thread_reader();
        let a = c.now();
        let b = r.now();
        // Same origin: the reader's timeline is the clock's timeline. The
        // TSC calibration may sit a hair behind the raw clock_gettime
        // read, so bound the skew in either direction instead of assuming
        // the reader always lands second.
        let skew = a.abs_diff(b);
        assert!(skew < 1_000_000_000, "reader diverged from source: {skew}ns");
    }

    #[test]
    fn monotonic_reader_tracks_real_time() {
        let c = MonotonicClock::new();
        let r = c.thread_reader();
        let start = r.now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let elapsed = r.now() - start;
        // The TSC-calibrated path must agree with wall time to well under
        // a percent; allow generous slack for scheduler delay on top of
        // the sleep (only the lower bound is tight).
        assert!(elapsed >= 19_000_000, "reader ran fast: {elapsed} ns");
        assert!(elapsed < 2_000_000_000, "reader ran wild: {elapsed} ns");
    }

    #[test]
    fn monotonic_reader_is_monotonic() {
        let c = MonotonicClock::new();
        let r = c.thread_reader();
        let mut prev = r.now();
        for _ in 0..10_000 {
            let t = r.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn virtual_readers_share_the_counter() {
        let c = VirtualClock::new();
        let r = c.thread_reader();
        c.set(42);
        assert_eq!(ClockReader::now(&r), 42);
        let c2 = c.clone();
        c2.set(50);
        assert_eq!(Clock::now(&c), 50);
    }
}
