//! Time sources for measurement.
//!
//! All profiler timestamps are `u64` nanoseconds from an arbitrary origin.
//! [`MonotonicClock`] wraps `std::time::Instant` for real measurements;
//! [`VirtualClock`] is a manually-advanced counter used by tests and the
//! event-replay examples to reproduce the paper's figures with exact
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must be monotonic per thread.
    fn now(&self) -> u64;
}

/// Real time via `std::time::Instant`, origin = construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Clock with origin "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock: `now()` returns the last value set or advanced to.
///
/// Shared freely between threads; in deterministic tests the caller is
/// responsible for only advancing it from one place at a time.
#[derive(Debug, Default)]
pub struct VirtualClock {
    t: AtomicU64,
}

impl VirtualClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// New clock starting at `t` nanoseconds.
    pub fn starting_at(t: u64) -> Self {
        let c = Self::new();
        c.set(t);
        c
    }

    /// Advance by `dt` nanoseconds, returning the new time.
    pub fn advance(&self, dt: u64) -> u64 {
        self.t.fetch_add(dt, Ordering::Relaxed) + dt
    }

    /// Jump to an absolute time. Must not go backwards (debug-asserted).
    pub fn set(&self, t: u64) {
        debug_assert!(t >= self.t.load(Ordering::Relaxed), "virtual clock moved backwards");
        self.t.store(t, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> u64 {
        self.t.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(3), 8);
        assert_eq!(c.now(), 8);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clock_is_object_safe() {
        let c: Box<dyn Clock> = Box::new(VirtualClock::starting_at(7));
        assert_eq!(c.now(), 7);
    }
}
