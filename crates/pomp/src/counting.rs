//! A minimal statistics monitor: counts events without timestamps or
//! trees.
//!
//! Useful as (a) the cheapest possible instrumentation — its per-event
//! cost is one relaxed atomic increment, bounding from below what *any*
//! monitor must pay — and (b) a quick way to size a workload (how many
//! tasks? how many switches?) before running the full profiler.

use crate::hooks::{Monitor, TaskRef, ThreadHooks};
use crate::region::{ParamId, RegionId};
use crate::task::TaskId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate event counts of one or more parallel regions.
#[derive(Debug, Default)]
pub struct EventCounts {
    /// Region enter events (exits are symmetric by construction).
    pub enters: AtomicU64,
    /// Deferred task creations.
    pub creations: AtomicU64,
    /// Task instances begun.
    pub task_begins: AtomicU64,
    /// Task instances completed.
    pub task_ends: AtomicU64,
    /// Task instances aborted by a panic in their body.
    pub task_aborts: AtomicU64,
    /// Explicit suspend/resume switches (excludes begin/end implied ones).
    pub switches: AtomicU64,
    /// Parameter scopes opened.
    pub params: AtomicU64,
    /// Threads that participated.
    pub threads: AtomicU64,
}

impl EventCounts {
    /// Snapshot as plain numbers
    /// (enters, creations, begins, ends, switches, params, threads).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.enters.load(Ordering::Relaxed),
            self.creations.load(Ordering::Relaxed),
            self.task_begins.load(Ordering::Relaxed),
            self.task_ends.load(Ordering::Relaxed),
            self.switches.load(Ordering::Relaxed),
            self.params.load(Ordering::Relaxed),
            self.threads.load(Ordering::Relaxed),
        )
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        let (e, c, b, d, s, p, _) = self.snapshot();
        // enters+exits are symmetric, creations have begin+end too.
        2 * e + 2 * c + b + d + s + 2 * p + self.task_aborts.load(Ordering::Relaxed)
    }
}

/// Monitor that only counts events.
#[derive(Clone, Debug, Default)]
pub struct CountingMonitor {
    counts: Arc<EventCounts>,
}

impl CountingMonitor {
    /// Fresh counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared counters.
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }
}

/// Per-thread handle of [`CountingMonitor`].
#[derive(Debug)]
pub struct CountingThread {
    counts: Arc<EventCounts>,
}

impl Monitor for CountingMonitor {
    type Thread = CountingThread;

    fn thread_begin(&self, _tid: usize, _n: usize, _region: RegionId) -> CountingThread {
        self.counts.threads.fetch_add(1, Ordering::Relaxed);
        CountingThread {
            counts: self.counts.clone(),
        }
    }

    fn thread_end(&self, _tid: usize, _thread: CountingThread) {}
}

impl ThreadHooks for CountingThread {
    #[inline]
    fn enter(&self, _region: RegionId) {
        self.counts.enters.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn task_create_begin(&self, _c: RegionId, _t: RegionId, _id: TaskId) {
        self.counts.creations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn task_begin(&self, _region: RegionId, _task: TaskId) {
        self.counts.task_begins.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn task_end(&self, _region: RegionId, _task: TaskId) {
        self.counts.task_ends.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn task_abort(&self, _region: RegionId, _task: TaskId) {
        self.counts.task_aborts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn task_switch(&self, _resumed: TaskRef) {
        self.counts.switches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn parameter_begin(&self, _param: ParamId, _value: i64) {
        self.counts.params.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionKind;
    use crate::task::TaskIdAllocator;

    #[test]
    fn counts_accumulate() {
        let m = CountingMonitor::new();
        let r = crate::registry().register("cm-r", RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let th = m.thread_begin(0, 1, r);
        th.enter(r);
        th.exit(r); // exits not counted (symmetric)
        let id = ids.alloc();
        th.task_create_begin(r, r, id);
        th.task_create_end(r, id);
        th.task_begin(r, id);
        th.task_switch(TaskRef::Implicit);
        th.task_end(r, id);
        th.parameter_begin(ParamId(0), 1);
        m.thread_end(0, th);
        let (e, c, b, d, s, p, t) = m.counts().snapshot();
        assert_eq!((e, c, b, d, s, p, t), (1, 1, 1, 1, 1, 1, 1));
        assert!(m.counts().total() > 0);
    }

    #[test]
    fn clones_share_counters() {
        let m = CountingMonitor::new();
        let m2 = m.clone();
        let r = crate::registry().register("cm-r2", RegionKind::Task, "t", 0);
        let th = m2.thread_begin(0, 1, r);
        th.enter(r);
        m2.thread_end(0, th);
        assert_eq!(m.counts().enters.load(Ordering::Relaxed), 1);
    }
}
