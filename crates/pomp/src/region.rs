//! Interned source-code regions.
//!
//! Every profilable entity — a task construct, a taskwait, a barrier, a task
//! creation site, a user function — is registered once and referred to by a
//! compact [`RegionId`]. This mirrors the region handles OPARI2 generates as
//! static descriptors in the instrumented source: the [`crate::region!`]
//! macro caches the id in a per-call-site `OnceLock`, so after the first
//! call registration is a single atomic load.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Compact handle for an interned region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Index into the registry's region table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Compact handle for an interned parameter name (paper Section VI,
/// "parameter instrumentation" — e.g. the recursion depth of `nqueens`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ParamId(pub u32);

/// What kind of construct a region instruments.
///
/// The profiler treats most kinds identically (they are just call-tree
/// nodes); the kind matters for analysis queries ("exclusive time of all
/// taskwait regions") and for rendering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionKind {
    /// An instrumented user function or code region.
    Function,
    /// A `parallel` construct (the implicit tasks' root).
    Parallel,
    /// An explicit `task` construct: the root region of every instance
    /// created by that construct.
    Task,
    /// The task *creation* region: entered/exited by the encountering thread
    /// around queuing a deferred task (paper Fig. 7, "create A").
    TaskCreate,
    /// A `taskwait` construct — a task scheduling point.
    Taskwait,
    /// The implicit barrier at the end of a parallel region — a scheduling
    /// point in which threads execute queued tasks (paper Fig. 8).
    ImplicitBarrier,
    /// An explicit `barrier` construct.
    ExplicitBarrier,
    /// A `single` construct (BOTS uses it for single-creator codes).
    Single,
    /// A `for` worksharing construct (BOTS provides for-versions of
    /// alignment and sparselu alongside the task versions).
    Workshare,
    /// A named `critical` section (lock acquisition shows up as exclusive
    /// time of this region — lock-contention profiling).
    Critical,
    /// Anything else the user wants on the call path.
    User,
}

impl RegionKind {
    /// Short lowercase label used by renderers.
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::Function => "fn",
            RegionKind::Parallel => "parallel",
            RegionKind::Task => "task",
            RegionKind::TaskCreate => "create",
            RegionKind::Taskwait => "taskwait",
            RegionKind::ImplicitBarrier => "ibarrier",
            RegionKind::ExplicitBarrier => "barrier",
            RegionKind::Single => "single",
            RegionKind::Workshare => "for",
            RegionKind::Critical => "critical",
            RegionKind::User => "region",
        }
    }

    /// True for kinds that are task scheduling points in OpenMP 3.0: task
    /// creation, taskwait, and barriers. (Task completion is also a
    /// scheduling point but has no region of its own.)
    pub fn is_scheduling_point(self) -> bool {
        matches!(
            self,
            RegionKind::TaskCreate
                | RegionKind::Taskwait
                | RegionKind::ImplicitBarrier
                | RegionKind::ExplicitBarrier
        )
    }
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metadata stored for a registered region.
#[derive(Clone, Debug)]
pub struct RegionInfo {
    /// Display name, e.g. `"nqueens"` or `"taskwait@nqueens.rs:42"`.
    pub name: String,
    /// Construct kind.
    pub kind: RegionKind,
    /// Source file of the registration site (`file!()` via the macro).
    pub file: &'static str,
    /// Source line of the registration site.
    pub line: u32,
}

#[derive(Default)]
struct Inner {
    regions: Vec<RegionInfo>,
    by_key: HashMap<(String, RegionKind), RegionId>,
    params: Vec<String>,
    params_by_name: HashMap<String, ParamId>,
}

/// Global region registry.
///
/// Cheap to read after registration; registration takes a write lock and is
/// expected to happen once per call site (see [`crate::region!`]).
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// Create an empty registry. Most users want the global [`registry()`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a region. Registering the same `(name, kind)` twice returns
    /// the same id (the first registration's file/line win).
    pub fn register(
        &self,
        name: &str,
        kind: RegionKind,
        file: &'static str,
        line: u32,
    ) -> RegionId {
        if let Some(&id) = self.inner.read().by_key.get(&(name.to_owned(), kind)) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_key.get(&(name.to_owned(), kind)) {
            return id;
        }
        let id = RegionId(u32::try_from(inner.regions.len()).expect("region table overflow"));
        inner.regions.push(RegionInfo {
            name: name.to_owned(),
            kind,
            file,
            line,
        });
        inner.by_key.insert((name.to_owned(), kind), id);
        id
    }

    /// Intern a parameter name.
    pub fn register_param(&self, name: &str) -> ParamId {
        if let Some(&id) = self.inner.read().params_by_name.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.params_by_name.get(name) {
            return id;
        }
        let id = ParamId(u32::try_from(inner.params.len()).expect("param table overflow"));
        inner.params.push(name.to_owned());
        inner.params_by_name.insert(name.to_owned(), id);
        id
    }

    /// Metadata for `id`. Panics on an id from a different registry.
    pub fn info(&self, id: RegionId) -> RegionInfo {
        self.inner.read().regions[id.index()].clone()
    }

    /// Display name for `id` (allocates; renderers should batch via
    /// [`Registry::info`] when formatting whole trees).
    pub fn name(&self, id: RegionId) -> String {
        self.inner.read().regions[id.index()].name.clone()
    }

    /// Construct kind for `id`.
    pub fn kind(&self, id: RegionId) -> RegionKind {
        self.inner.read().regions[id.index()].kind
    }

    /// Name of an interned parameter.
    pub fn param_name(&self, id: ParamId) -> String {
        self.inner.read().params[id.0 as usize].clone()
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.inner.read().regions.len()
    }

    /// True when no region has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up an already-registered region by name and kind.
    pub fn lookup(&self, name: &str, kind: RegionKind) -> Option<RegionId> {
        self.inner.read().by_key.get(&(name.to_owned(), kind)).copied()
    }
}

/// The process-global registry used by the `region!` macro, the runtime,
/// and the profiler.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Register (once) and return the [`RegionId`] for this call site.
///
/// ```
/// use pomp::{region, RegionKind};
/// let id = region!("compute", RegionKind::Task);
/// assert_eq!(id, region!("compute", RegionKind::Task));
/// ```
#[macro_export]
macro_rules! region {
    ($name:expr, $kind:expr) => {{
        static __POMP_REGION: ::std::sync::OnceLock<$crate::RegionId> =
            ::std::sync::OnceLock::new();
        *__POMP_REGION.get_or_init(|| {
            $crate::registry().register($name, $kind, ::core::file!(), ::core::line!())
        })
    }};
}

/// Register (once) and return the [`ParamId`] for this call site.
#[macro_export]
macro_rules! param {
    ($name:expr) => {{
        static __POMP_PARAM: ::std::sync::OnceLock<$crate::ParamId> =
            ::std::sync::OnceLock::new();
        *__POMP_PARAM.get_or_init(|| $crate::registry().register_param($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let r = Registry::new();
        let a = r.register("x", RegionKind::Task, "f", 1);
        let b = r.register("x", RegionKind::Task, "g", 2);
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        // First registration wins for metadata.
        assert_eq!(r.info(a).file, "f");
    }

    #[test]
    fn same_name_different_kind_distinct() {
        let r = Registry::new();
        let a = r.register("x", RegionKind::Task, "f", 1);
        let b = r.register("x", RegionKind::Taskwait, "f", 2);
        assert_ne!(a, b);
        assert_eq!(r.kind(a), RegionKind::Task);
        assert_eq!(r.kind(b), RegionKind::Taskwait);
    }

    #[test]
    fn params_interned() {
        let r = Registry::new();
        let a = r.register_param("depth");
        let b = r.register_param("depth");
        let c = r.register_param("level");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(r.param_name(c), "level");
    }

    #[test]
    fn lookup_finds_registered() {
        let r = Registry::new();
        assert!(r.lookup("y", RegionKind::Task).is_none());
        let id = r.register("y", RegionKind::Task, "f", 1);
        assert_eq!(r.lookup("y", RegionKind::Task), Some(id));
        assert!(r.lookup("y", RegionKind::Function).is_none());
    }

    #[test]
    fn macro_caches_global_id() {
        let a = crate::region!("macro-test-region", RegionKind::User);
        let b = crate::region!("macro-test-region", RegionKind::User);
        assert_eq!(a, b);
        let p = crate::param!("macro-test-param");
        assert_eq!(registry().param_name(p), "macro-test-param");
    }

    #[test]
    fn scheduling_point_kinds() {
        assert!(RegionKind::Taskwait.is_scheduling_point());
        assert!(RegionKind::ImplicitBarrier.is_scheduling_point());
        assert!(RegionKind::ExplicitBarrier.is_scheduling_point());
        assert!(RegionKind::TaskCreate.is_scheduling_point());
        assert!(!RegionKind::Task.is_scheduling_point());
        assert!(!RegionKind::Function.is_scheduling_point());
    }

    #[test]
    fn concurrent_registration_race() {
        let r = std::sync::Arc::new(Registry::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| r.register(&format!("r{i}"), RegionKind::Task, "f", 0))
                    .collect::<Vec<_>>()
            }));
        }
        let ids: Vec<Vec<RegionId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in ids.windows(2) {
            assert_eq!(w[0], w[1], "all threads must agree on interned ids");
        }
        assert_eq!(r.len(), 100);
    }
}
