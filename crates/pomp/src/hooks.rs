//! The measurement hook interface (the POMP2 analogue).
//!
//! A tasking runtime calls these hooks at exactly the program points where
//! OPARI2 inserts POMP2 calls:
//!
//! * `enter`/`exit` around every instrumented region — taskwaits, barriers,
//!   `single` constructs, user regions,
//! * `task_create_begin`/`task_create_end` around queuing a deferred task,
//! * `task_begin`/`task_end` around the execution of one task instance,
//! * `task_switch` whenever the thread's *current task* changes without a
//!   begin/end (i.e. suspension/resumption at a scheduling point),
//! * `parameter_begin`/`parameter_end` for parameter instrumentation
//!   (paper Section VI, Table IV).
//!
//! Hook methods take `&self`: each [`ThreadHooks`] value is owned by exactly
//! one runtime thread, so implementations keep their mutable state in a
//! `RefCell`/`Cell` without synchronization — the "separate preallocated
//! memory per thread" design the paper inherits from Score-P.

use crate::region::{ParamId, RegionId};
use crate::task::TaskId;

/// Classification of the hook vocabulary for telemetry and perturbation
/// accounting: every [`ThreadHooks`] method maps to exactly one class
/// (begin/end pairs of the same construct share one — `task_create_begin`
/// and `task_create_end` are both [`EventClass::TaskCreate`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum EventClass {
    /// Region `enter`.
    Enter,
    /// Region `exit`.
    Exit,
    /// `task_create_begin` / `task_create_end`.
    TaskCreate,
    /// `task_begin`.
    TaskBegin,
    /// `task_end`.
    TaskEnd,
    /// `task_abort`.
    TaskAbort,
    /// `task_switch`.
    TaskSwitch,
    /// `parameter_begin` / `parameter_end`.
    Param,
}

impl EventClass {
    /// Number of classes (array dimension for per-class counters).
    pub const COUNT: usize = 8;

    /// Every class, in index order.
    pub const ALL: [EventClass; EventClass::COUNT] = [
        EventClass::Enter,
        EventClass::Exit,
        EventClass::TaskCreate,
        EventClass::TaskBegin,
        EventClass::TaskEnd,
        EventClass::TaskAbort,
        EventClass::TaskSwitch,
        EventClass::Param,
    ];

    /// Dense index (0-based, stable across versions within `COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case label used by exporters (`enter`, `task_begin`, ...).
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Enter => "enter",
            EventClass::Exit => "exit",
            EventClass::TaskCreate => "task_create",
            EventClass::TaskBegin => "task_begin",
            EventClass::TaskEnd => "task_end",
            EventClass::TaskAbort => "task_abort",
            EventClass::TaskSwitch => "task_switch",
            EventClass::Param => "param",
        }
    }

    /// Inverse of [`EventClass::label`].
    pub fn from_label(label: &str) -> Option<EventClass> {
        EventClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// The task whose execution a thread resumes at a `task_switch`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TaskRef {
    /// The thread's implicit task.
    Implicit,
    /// An explicit task instance.
    Explicit(TaskId),
}

impl TaskRef {
    /// `Some(id)` for explicit tasks.
    #[inline]
    pub fn explicit(self) -> Option<TaskId> {
        match self {
            TaskRef::Implicit => None,
            TaskRef::Explicit(id) => Some(id),
        }
    }
}

/// Per-thread measurement hooks. All methods default to no-ops so partial
/// monitors (e.g. a tracer that only cares about task events) stay small.
pub trait ThreadHooks {
    /// The thread enters `region` within its current task.
    #[inline]
    fn enter(&self, region: RegionId) {
        let _ = region;
    }

    /// The thread exits `region` within its current task.
    #[inline]
    fn exit(&self, region: RegionId) {
        let _ = region;
    }

    /// The thread starts creating (queuing) a deferred instance `new_task`
    /// of the task construct `task_region`. `create_region` is the creation
    /// site's own region (kind [`crate::RegionKind::TaskCreate`]).
    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let _ = (create_region, task_region, new_task);
    }

    /// Creation of `new_task` finished; the creating task continues.
    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        let _ = (create_region, new_task);
    }

    /// The thread begins executing instance `task` of construct
    /// `task_region` (paper Fig. 12 `TaskBegin`).
    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        let _ = (task_region, task);
    }

    /// Instance `task` completed (paper Fig. 12 `TaskEnd`).
    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        let _ = (task_region, task);
    }

    /// Instance `task` terminated abnormally (its body panicked). Emitted
    /// *instead of* `task_end`: the instance will never complete normally,
    /// but the thread resumes whatever was below it just as after an end.
    /// Monitors should close any state still open for the instance; time
    /// measured up to the abort is still valid measurement data.
    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let _ = (task_region, task);
    }

    /// The thread's current task changes to `resumed` at a scheduling point
    /// (paper Fig. 12 `TaskSwitch`). `task_begin`/`task_end` imply their own
    /// switches; the runtime only calls this for suspend/resume transitions
    /// that are *not* paired with a begin or end on this thread.
    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        let _ = resumed;
    }

    /// Enter a parameter scope: subsequent children of the current node are
    /// recorded under a `(param, value)` sub-tree until `parameter_end`.
    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        let _ = (param, value);
    }

    /// Leave the innermost parameter scope for `param`.
    #[inline]
    fn parameter_end(&self, param: ParamId) {
        let _ = param;
    }
}

/// Process-level monitor: hands out per-thread hooks at parallel-region
/// fork and collects them at join.
pub trait Monitor: Sync {
    /// The per-thread hook type.
    type Thread: ThreadHooks;

    /// A parallel region with `nthreads` threads is about to fork.
    #[inline]
    fn parallel_fork(&self, region: RegionId, nthreads: usize) {
        let _ = (region, nthreads);
    }

    /// Thread `tid` (0-based) of the team starts; returns its hooks.
    fn thread_begin(&self, tid: usize, nthreads: usize, parallel_region: RegionId)
        -> Self::Thread;

    /// Thread `tid` finished the parallel region; its hooks are returned to
    /// the monitor (this is where a profiler collects the thread's data).
    fn thread_end(&self, tid: usize, thread: Self::Thread);

    /// The parallel region joined.
    #[inline]
    fn parallel_join(&self, region: RegionId) {
        let _ = region;
    }
}

/// Monitors can be passed by reference (useful with the pair monitor:
/// `(&profiler, &tracer)`).
impl<M: Monitor> Monitor for &M {
    type Thread = M::Thread;

    fn parallel_fork(&self, region: RegionId, nthreads: usize) {
        (**self).parallel_fork(region, nthreads);
    }

    fn thread_begin(&self, tid: usize, nthreads: usize, region: RegionId) -> Self::Thread {
        (**self).thread_begin(tid, nthreads, region)
    }

    fn thread_end(&self, tid: usize, thread: Self::Thread) {
        (**self).thread_end(tid, thread);
    }

    fn parallel_join(&self, region: RegionId) {
        (**self).parallel_join(region);
    }
}

/// Fan-out: a pair of monitors observes the same run (e.g. a profiler
/// plus a tracer). Hooks are invoked in order, first then second.
impl<A: Monitor, B: Monitor> Monitor for (A, B) {
    type Thread = (A::Thread, B::Thread);

    fn parallel_fork(&self, region: RegionId, nthreads: usize) {
        self.0.parallel_fork(region, nthreads);
        self.1.parallel_fork(region, nthreads);
    }

    fn thread_begin(&self, tid: usize, nthreads: usize, region: RegionId) -> Self::Thread {
        (
            self.0.thread_begin(tid, nthreads, region),
            self.1.thread_begin(tid, nthreads, region),
        )
    }

    fn thread_end(&self, tid: usize, thread: Self::Thread) {
        self.0.thread_end(tid, thread.0);
        self.1.thread_end(tid, thread.1);
    }

    fn parallel_join(&self, region: RegionId) {
        self.0.parallel_join(region);
        self.1.parallel_join(region);
    }
}

impl<A: ThreadHooks, B: ThreadHooks> ThreadHooks for (A, B) {
    #[inline]
    fn enter(&self, region: RegionId) {
        self.0.enter(region);
        self.1.enter(region);
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        self.0.exit(region);
        self.1.exit(region);
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        self.0.task_create_begin(create_region, task_region, new_task);
        self.1.task_create_begin(create_region, task_region, new_task);
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        self.0.task_create_end(create_region, new_task);
        self.1.task_create_end(create_region, new_task);
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        self.0.task_begin(task_region, task);
        self.1.task_begin(task_region, task);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        self.0.task_end(task_region, task);
        self.1.task_end(task_region, task);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        self.0.task_abort(task_region, task);
        self.1.task_abort(task_region, task);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        self.0.task_switch(resumed);
        self.1.task_switch(resumed);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        self.0.parameter_begin(param, value);
        self.1.parameter_begin(param, value);
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        self.0.parameter_end(param);
        self.1.parameter_end(param);
    }
}

/// Per-thread hooks that do nothing. With `NullMonitor` this is the
/// *uninstrumented* configuration: every hook is an empty inline function
/// the optimizer removes entirely.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullThreadHooks;

impl ThreadHooks for NullThreadHooks {}

/// Monitor that measures nothing — the overhead baseline.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    type Thread = NullThreadHooks;

    #[inline]
    fn thread_begin(&self, _tid: usize, _n: usize, _region: RegionId) -> NullThreadHooks {
        NullThreadHooks
    }

    #[inline]
    fn thread_end(&self, _tid: usize, _thread: NullThreadHooks) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionKind;
    use std::cell::RefCell;

    #[test]
    fn null_monitor_round_trip() {
        let m = NullMonitor;
        let r = crate::registry().register("p", RegionKind::Parallel, "t", 0);
        m.parallel_fork(r, 4);
        let t = m.thread_begin(0, 4, r);
        t.enter(r);
        t.exit(r);
        t.task_switch(TaskRef::Implicit);
        m.thread_end(0, t);
        m.parallel_join(r);
    }

    #[test]
    fn task_ref_explicit() {
        let alloc = crate::TaskIdAllocator::new();
        let id = alloc.alloc();
        assert_eq!(TaskRef::Implicit.explicit(), None);
        assert_eq!(TaskRef::Explicit(id).explicit(), Some(id));
    }

    /// A minimal recording monitor exercising the default-method surface —
    /// also documents the expected call sequencing for runtime authors.
    struct Recorder(RefCell<Vec<String>>);

    impl ThreadHooks for Recorder {
        fn enter(&self, r: RegionId) {
            self.0.borrow_mut().push(format!("enter {}", r.0));
        }
        fn exit(&self, r: RegionId) {
            self.0.borrow_mut().push(format!("exit {}", r.0));
        }
        fn task_begin(&self, r: RegionId, t: TaskId) {
            self.0.borrow_mut().push(format!("begin {} #{}", r.0, t.get()));
        }
        fn task_end(&self, r: RegionId, t: TaskId) {
            self.0.borrow_mut().push(format!("end {} #{}", r.0, t.get()));
        }
    }

    #[test]
    fn partial_hooks_record_only_overridden_events() {
        let rec = Recorder(RefCell::new(vec![]));
        let alloc = crate::TaskIdAllocator::new();
        let r = RegionId(3);
        let t = alloc.alloc();
        rec.enter(r);
        rec.task_begin(r, t);
        rec.task_switch(TaskRef::Implicit); // default no-op
        rec.task_end(r, t);
        rec.exit(r);
        assert_eq!(
            rec.0.into_inner(),
            vec!["enter 3", "begin 3 #1", "end 3 #1", "exit 3"]
        );
    }
}
