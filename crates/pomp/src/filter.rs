//! Runtime region filtering (Score-P's filtering feature).
//!
//! Score-P lets users exclude regions from measurement at runtime to cut
//! overhead ("filter files"). [`FilteredMonitor`] wraps any monitor and
//! suppresses enter/exit (and parameter) events for regions rejected by a
//! predicate, while always passing task lifecycle events through — the
//! profiler requires the complete task event stream, but can live without
//! arbitrarily many region events.
//!
//! Typical use: drop high-frequency tiny regions (e.g. the taskwait of a
//! pathological fib) to reduce the measurement perturbation the paper's
//! Section V-A quantifies.

use crate::hooks::{Monitor, TaskRef, ThreadHooks};
use crate::region::{ParamId, RegionId};
use crate::task::TaskId;
use std::sync::Arc;

/// Predicate deciding whether a region is measured.
pub trait RegionFilter: Send + Sync + 'static {
    /// True to keep (measure) the region.
    fn keep(&self, region: RegionId) -> bool;
}

impl<F: Fn(RegionId) -> bool + Send + Sync + 'static> RegionFilter for F {
    fn keep(&self, region: RegionId) -> bool {
        self(region)
    }
}

/// A monitor wrapper that filters region enter/exit events.
pub struct FilteredMonitor<M> {
    inner: M,
    filter: Arc<dyn RegionFilter>,
    filter_params: bool,
}

impl<M: Monitor> FilteredMonitor<M> {
    /// Wrap `inner`, keeping only regions for which `filter.keep` is true.
    pub fn new(inner: M, filter: impl RegionFilter) -> Self {
        Self {
            inner,
            filter: Arc::new(filter),
            filter_params: false,
        }
    }

    /// Also suppress parameter events (Table IV instrumentation).
    pub fn filtering_params(mut self) -> Self {
        self.filter_params = true;
        self
    }

    /// Access the wrapped monitor (e.g. to take its profile afterwards).
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

/// Per-thread handle of [`FilteredMonitor`].
pub struct FilteredThread<T> {
    inner: T,
    filter: Arc<dyn RegionFilter>,
    filter_params: bool,
}

impl<M: Monitor> Monitor for FilteredMonitor<M> {
    type Thread = FilteredThread<M::Thread>;

    fn parallel_fork(&self, region: RegionId, nthreads: usize) {
        self.inner.parallel_fork(region, nthreads);
    }

    fn thread_begin(&self, tid: usize, nthreads: usize, region: RegionId) -> Self::Thread {
        FilteredThread {
            inner: self.inner.thread_begin(tid, nthreads, region),
            filter: self.filter.clone(),
            filter_params: self.filter_params,
        }
    }

    fn thread_end(&self, tid: usize, thread: Self::Thread) {
        self.inner.thread_end(tid, thread.inner);
    }

    fn parallel_join(&self, region: RegionId) {
        self.inner.parallel_join(region);
    }
}

impl<T: ThreadHooks> ThreadHooks for FilteredThread<T> {
    #[inline]
    fn enter(&self, region: RegionId) {
        if self.filter.keep(region) {
            self.inner.enter(region);
        }
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        if self.filter.keep(region) {
            self.inner.exit(region);
        }
    }

    // Task lifecycle events always pass through: the profiling algorithm
    // needs the full stream (paper Section IV-C).
    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        if self.filter.keep(create_region) {
            self.inner
                .task_create_begin(create_region, task_region, new_task);
        }
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        if self.filter.keep(create_region) {
            self.inner.task_create_end(create_region, new_task);
        }
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        self.inner.task_begin(task_region, task);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        self.inner.task_end(task_region, task);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        self.inner.task_abort(task_region, task);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        self.inner.task_switch(resumed);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        if !self.filter_params {
            self.inner.parameter_begin(param, value);
        }
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        if !self.filter_params {
            self.inner.parameter_end(param);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMonitor;
    use crate::region::RegionKind;
    use crate::task::TaskIdAllocator;

    #[test]
    fn filters_region_events_but_not_task_events() {
        let reg = crate::registry();
        let keep = reg.register("fl-keep", RegionKind::User, "t", 0);
        let drop = reg.register("fl-drop", RegionKind::Taskwait, "t", 0);
        let task = reg.register("fl-task", RegionKind::Task, "t", 0);
        let counting = CountingMonitor::new();
        let filtered = FilteredMonitor::new(counting.clone(), move |r: RegionId| r != drop);
        let ids = TaskIdAllocator::new();
        let th = filtered.thread_begin(0, 1, keep);
        th.enter(keep);
        th.exit(keep);
        th.enter(drop); // suppressed
        th.exit(drop); // suppressed
        let id = ids.alloc();
        th.task_begin(task, id);
        th.task_end(task, id);
        filtered.thread_end(0, th);
        let (enters, _c, begins, ends, ..) = counting.counts().snapshot();
        assert_eq!(enters, 1, "only the kept region counted");
        assert_eq!((begins, ends), (1, 1), "task events always pass");
    }

    #[test]
    fn param_filtering_is_opt_in() {
        let reg = crate::registry();
        let r = reg.register("fl-r", RegionKind::User, "t", 0);
        let passthrough = CountingMonitor::new();
        let f = FilteredMonitor::new(passthrough.clone(), |_| true);
        let th = f.thread_begin(0, 1, r);
        th.parameter_begin(ParamId(0), 5);
        th.parameter_end(ParamId(0));
        f.thread_end(0, th);
        assert_eq!(passthrough.counts().params.load(std::sync::atomic::Ordering::Relaxed), 1);

        let suppressed = CountingMonitor::new();
        let f = FilteredMonitor::new(suppressed.clone(), |_| true).filtering_params();
        let th = f.thread_begin(0, 1, r);
        th.parameter_begin(ParamId(0), 5);
        th.parameter_end(ParamId(0));
        f.thread_end(0, th);
        assert_eq!(suppressed.counts().params.load(std::sync::atomic::Ordering::Relaxed), 0);
    }
}
