//! Event-stream validation (fault-tolerant measurement).
//!
//! Instrumentation is code, and code has bugs: a hand-instrumented runtime
//! may emit an `exit` for a region it never entered, end a task instance
//! twice, or switch to an instance the monitor has never seen. A strict
//! profiler turns each of those into a panic *inside the measurement
//! system* — the paper's equivalent would be Score-P aborting the whole
//! application run because one POMP2 call was misplaced.
//!
//! [`ValidatingMonitor`] wraps any [`Monitor`] and guarantees the wrapped
//! monitor only ever observes a *well-formed* stream:
//!
//! * enter/exit (and create/param) events are properly nested per task —
//!   unbalanced exits are either matched by force-closing the frames above
//!   them or dropped when nothing matches,
//! * task lifecycle is sane — `task_end`/`task_abort`/`task_switch`
//!   referring to an instance that never began are dropped, duplicate
//!   begins are dropped, an end for a *suspended* instance gets the
//!   missing `task_switch` synthesized,
//! * at `thread_end`, instances still live are closed with a synthetic
//!   [`ThreadHooks::task_abort`] and leftover open regions with synthetic
//!   closers, so downstream state is always finalized.
//!
//! Every deviation is recorded as a structured [`Diagnostic`] (which
//! defect, on which thread, and whether the event was dropped or
//! repaired); retrieve them with [`ValidatingMonitor::take_diagnostics`].
//! A clean run produces an identical stream and zero diagnostics.

use crate::hooks::{Monitor, TaskRef, ThreadHooks};
use crate::region::{ParamId, RegionId};
use crate::task::TaskId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A defect detected in the raw event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Defect {
    /// `exit` (or `task_create_end` / `parameter_end`) with no matching
    /// open frame anywhere on the current task's stack.
    ExitWithoutEnter {
        /// Region the spurious exit named.
        region: RegionId,
    },
    /// `exit` matched an open frame, but not the innermost one: the frames
    /// above it were never closed by the instrumentation.
    UnbalancedExit {
        /// Region the exit named.
        region: RegionId,
        /// Number of inner frames force-closed to reach it.
        force_closed: usize,
    },
    /// `parameter_end` with no matching open parameter scope.
    ParamEndWithoutBegin {
        /// Parameter the spurious end named.
        param: ParamId,
    },
    /// `parameter_end` matched an open scope, but frames above it were
    /// never closed by the instrumentation.
    UnbalancedParamEnd {
        /// Parameter the end named.
        param: ParamId,
        /// Number of inner frames force-closed to reach it.
        force_closed: usize,
    },
    /// `task_begin` for an instance id that is already executing.
    DuplicateTaskBegin {
        /// The doubly-begun instance.
        task: TaskId,
    },
    /// `task_end` for an instance that never began on this thread.
    TaskEndWithoutBegin {
        /// The unknown instance.
        task: TaskId,
    },
    /// `task_end` for a live instance that was suspended (not current) —
    /// the `task_switch` resuming it is missing.
    TaskEndWhileSuspended {
        /// The instance ended while suspended.
        task: TaskId,
    },
    /// `task_abort` for an instance that never began on this thread.
    TaskAbortWithoutBegin {
        /// The unknown instance.
        task: TaskId,
    },
    /// `task_switch` to an explicit instance that never began (or already
    /// ended) on this thread.
    SwitchToUnknown {
        /// The unknown instance.
        task: TaskId,
    },
    /// An instance was still live (begun, never ended) at `thread_end`.
    TaskNeverEnded {
        /// The leaked instance.
        task: TaskId,
    },
    /// Frames were still open on the implicit task at `thread_end`.
    UnclosedRegions {
        /// Number of frames force-closed.
        count: usize,
    },
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defect::ExitWithoutEnter { region } => {
                write!(f, "exit of region {} without matching enter", region.0)
            }
            Defect::UnbalancedExit { region, force_closed } => write!(
                f,
                "exit of region {} skipped {force_closed} still-open inner frame(s)",
                region.0
            ),
            Defect::ParamEndWithoutBegin { param } => {
                write!(f, "parameter_end of {} without matching begin", param.0)
            }
            Defect::UnbalancedParamEnd { param, force_closed } => write!(
                f,
                "parameter_end of {} skipped {force_closed} still-open inner frame(s)",
                param.0
            ),
            Defect::DuplicateTaskBegin { task } => {
                write!(f, "task_begin for already-live instance {}", task.get())
            }
            Defect::TaskEndWithoutBegin { task } => {
                write!(f, "task_end for unknown instance {}", task.get())
            }
            Defect::TaskEndWhileSuspended { task } => write!(
                f,
                "task_end for suspended instance {} (missing task_switch)",
                task.get()
            ),
            Defect::TaskAbortWithoutBegin { task } => {
                write!(f, "task_abort for unknown instance {}", task.get())
            }
            Defect::SwitchToUnknown { task } => {
                write!(f, "task_switch to unknown instance {}", task.get())
            }
            Defect::TaskNeverEnded { task } => write!(
                f,
                "instance {} still live at thread end; aborted",
                task.get()
            ),
            Defect::UnclosedRegions { count } => {
                write!(f, "{count} frame(s) left open; force-closed")
            }
        }
    }
}

/// How the validator resolved a defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repair {
    /// The offending event was suppressed; the wrapped monitor never saw it.
    Dropped,
    /// Missing events were synthesized so the stream stays well-formed.
    Synthesized,
}

/// One validation finding: which defect, where, and what was done about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diagnostic {
    /// Team-local thread id the defect occurred on.
    pub tid: usize,
    /// The defect.
    pub defect: Defect,
    /// The repair action taken.
    pub repair: Repair,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let action = match self.repair {
            Repair::Dropped => "dropped",
            Repair::Synthesized => "repaired",
        };
        write!(f, "thread {}: {} [{action}]", self.tid, self.defect)
    }
}

/// One open frame on a task's validation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// Opened by `enter`.
    Region(RegionId),
    /// Opened by `task_create_begin` (closed by `task_create_end`).
    Create(RegionId, TaskId),
    /// Opened by `parameter_begin`.
    Param(ParamId),
}

struct TaskState {
    region: RegionId,
    stack: Vec<Frame>,
}

struct State {
    current: TaskRef,
    implicit: Vec<Frame>,
    live: HashMap<TaskId, TaskState>,
}

/// A monitor wrapper validating (and where possible repairing) the event
/// stream before it reaches the wrapped monitor. See the module docs.
pub struct ValidatingMonitor<M> {
    inner: M,
    diags: Arc<Mutex<Vec<Diagnostic>>>,
}

impl<M: Monitor> ValidatingMonitor<M> {
    /// Wrap `inner`; it will only observe well-formed event streams.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            diags: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Access the wrapped monitor (e.g. to take its profile afterwards).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Drain the diagnostics recorded so far (across all threads, in
    /// detection order per thread).
    pub fn take_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diags.lock().unwrap())
    }

    /// True when no defect has been detected since the last
    /// [`Self::take_diagnostics`].
    pub fn is_clean(&self) -> bool {
        self.diags.lock().unwrap().is_empty()
    }
}

/// Per-thread handle of [`ValidatingMonitor`].
pub struct ValidatingThread<T> {
    inner: T,
    tid: usize,
    state: RefCell<State>,
    diags: Arc<Mutex<Vec<Diagnostic>>>,
}

impl<T: ThreadHooks> ValidatingThread<T> {
    fn report(&self, defect: Defect, repair: Repair) {
        self.diags.lock().unwrap().push(Diagnostic {
            tid: self.tid,
            defect,
            repair,
        });
    }

    /// Forward the closing event for one popped frame.
    fn close_frame(&self, frame: Frame) {
        match frame {
            Frame::Region(r) => self.inner.exit(r),
            Frame::Create(r, id) => self.inner.task_create_end(r, id),
            Frame::Param(p) => self.inner.parameter_end(p),
        }
    }

    /// Close `target` on the current task's stack: if it is the top frame
    /// the close is forwarded verbatim; if it is buried, the frames above
    /// it are force-closed first (synthesizing their closers); if it is
    /// absent the close is dropped. Returns diagnostics as needed.
    fn close_matching(&self, target: Frame) {
        let mut st = self.state.borrow_mut();
        let stack = match st.current {
            TaskRef::Implicit => &mut st.implicit,
            TaskRef::Explicit(id) => {
                &mut st
                    .live
                    .get_mut(&id)
                    .expect("current task is always live")
                    .stack
            }
        };
        let matches = |f: &Frame| match (f, &target) {
            (Frame::Region(a), Frame::Region(b)) => a == b,
            (Frame::Create(a, _), Frame::Create(b, _)) => a == b,
            (Frame::Param(a), Frame::Param(b)) => a == b,
            _ => false,
        };
        let Some(pos) = stack.iter().rposition(matches) else {
            drop(st);
            let defect = match target {
                Frame::Param(p) => Defect::ParamEndWithoutBegin { param: p },
                Frame::Region(r) | Frame::Create(r, _) => Defect::ExitWithoutEnter { region: r },
            };
            self.report(defect, Repair::Dropped);
            return;
        };
        let above: Vec<Frame> = stack.drain(pos + 1..).collect();
        let matched = stack.pop().expect("rposition points into the stack");
        drop(st);
        if !above.is_empty() {
            let defect = match target {
                Frame::Region(r) | Frame::Create(r, _) => Defect::UnbalancedExit {
                    region: r,
                    force_closed: above.len(),
                },
                Frame::Param(p) => Defect::UnbalancedParamEnd {
                    param: p,
                    force_closed: above.len(),
                },
            };
            self.report(defect, Repair::Synthesized);
            for f in above.into_iter().rev() {
                self.close_frame(f);
            }
        }
        self.close_frame(matched);
    }

    /// Finalize the thread's state: abort live instances, close leftover
    /// frames. Called by the monitor right before the real `thread_end`.
    fn heal_at_end(&self) {
        // A still-current explicit task ends first (its abort returns the
        // thread to the implicit task), then any suspended instances.
        let mut leaked: Vec<TaskId> = {
            let st = self.state.borrow();
            let mut v: Vec<TaskId> = st.live.keys().copied().collect();
            v.sort();
            if let TaskRef::Explicit(cur) = st.current {
                v.retain(|&id| id != cur);
                v.insert(0, cur);
            }
            v
        };
        for id in leaked.drain(..) {
            self.report(Defect::TaskNeverEnded { task: id }, Repair::Synthesized);
            let region = {
                let mut st = self.state.borrow_mut();
                let ts = st.live.remove(&id).expect("collected from live set");
                if st.current == TaskRef::Explicit(id) {
                    st.current = TaskRef::Implicit;
                }
                ts.region
            };
            self.inner.task_abort(region, id);
        }
        let frames: Vec<Frame> = {
            let mut st = self.state.borrow_mut();
            st.implicit.drain(..).collect()
        };
        if !frames.is_empty() {
            self.report(
                Defect::UnclosedRegions {
                    count: frames.len(),
                },
                Repair::Synthesized,
            );
            for f in frames.into_iter().rev() {
                self.close_frame(f);
            }
        }
    }
}

impl<M: Monitor> Monitor for ValidatingMonitor<M> {
    type Thread = ValidatingThread<M::Thread>;

    fn parallel_fork(&self, region: RegionId, nthreads: usize) {
        self.inner.parallel_fork(region, nthreads);
    }

    fn thread_begin(&self, tid: usize, nthreads: usize, region: RegionId) -> Self::Thread {
        ValidatingThread {
            inner: self.inner.thread_begin(tid, nthreads, region),
            tid,
            state: RefCell::new(State {
                current: TaskRef::Implicit,
                implicit: Vec::new(),
                live: HashMap::new(),
            }),
            diags: self.diags.clone(),
        }
    }

    fn thread_end(&self, tid: usize, thread: Self::Thread) {
        thread.heal_at_end();
        self.inner.thread_end(tid, thread.inner);
    }

    fn parallel_join(&self, region: RegionId) {
        self.inner.parallel_join(region);
    }
}

impl<T: ThreadHooks> ThreadHooks for ValidatingThread<T> {
    fn enter(&self, region: RegionId) {
        let mut st = self.state.borrow_mut();
        match st.current {
            TaskRef::Implicit => st.implicit.push(Frame::Region(region)),
            TaskRef::Explicit(id) => st
                .live
                .get_mut(&id)
                .expect("current task is always live")
                .stack
                .push(Frame::Region(region)),
        }
        drop(st);
        self.inner.enter(region);
    }

    fn exit(&self, region: RegionId) {
        self.close_matching(Frame::Region(region));
    }

    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let mut st = self.state.borrow_mut();
        let frame = Frame::Create(create_region, new_task);
        match st.current {
            TaskRef::Implicit => st.implicit.push(frame),
            TaskRef::Explicit(id) => st
                .live
                .get_mut(&id)
                .expect("current task is always live")
                .stack
                .push(frame),
        }
        drop(st);
        self.inner
            .task_create_begin(create_region, task_region, new_task);
    }

    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        self.close_matching(Frame::Create(create_region, new_task));
    }

    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        {
            let mut st = self.state.borrow_mut();
            if st.live.contains_key(&task) {
                drop(st);
                self.report(Defect::DuplicateTaskBegin { task }, Repair::Dropped);
                return;
            }
            st.live.insert(
                task,
                TaskState {
                    region: task_region,
                    stack: Vec::new(),
                },
            );
            st.current = TaskRef::Explicit(task);
        }
        self.inner.task_begin(task_region, task);
    }

    fn task_end(&self, task_region: RegionId, task: TaskId) {
        {
            let st = self.state.borrow();
            if !st.live.contains_key(&task) {
                drop(st);
                self.report(Defect::TaskEndWithoutBegin { task }, Repair::Dropped);
                return;
            }
            if st.current != TaskRef::Explicit(task) {
                drop(st);
                // The switch resuming the instance is missing — synthesize
                // it so the wrapped monitor sees a legal end.
                self.report(Defect::TaskEndWhileSuspended { task }, Repair::Synthesized);
                self.state.borrow_mut().current = TaskRef::Explicit(task);
                self.inner.task_switch(TaskRef::Explicit(task));
            }
        }
        // Close frames the task body left open before the end.
        let open: Vec<Frame> = {
            let mut st = self.state.borrow_mut();
            let ts = st.live.get_mut(&task).expect("checked live above");
            ts.stack.drain(..).collect()
        };
        if !open.is_empty() {
            self.report(
                Defect::UnclosedRegions { count: open.len() },
                Repair::Synthesized,
            );
            for f in open.into_iter().rev() {
                self.close_frame(f);
            }
        }
        {
            let mut st = self.state.borrow_mut();
            st.live.remove(&task);
            st.current = TaskRef::Implicit;
        }
        self.inner.task_end(task_region, task);
    }

    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let prev = {
            let mut st = self.state.borrow_mut();
            if !st.live.contains_key(&task) {
                drop(st);
                self.report(Defect::TaskAbortWithoutBegin { task }, Repair::Dropped);
                return;
            }
            // An abort legally closes a suspended or current instance; the
            // wrapped monitor force-closes its frames itself and ends up on
            // the implicit task.
            let prev = st.current;
            st.live.remove(&task);
            if st.current == TaskRef::Explicit(task) {
                st.current = TaskRef::Implicit;
            }
            prev
        };
        self.inner.task_abort(task_region, task);
        if let TaskRef::Explicit(cur) = prev {
            if cur != task {
                // Aborting a *suspended* instance left the wrapped monitor
                // on the implicit task; switch it back to the task this
                // thread is actually still executing.
                self.inner.task_switch(TaskRef::Explicit(cur));
            }
        }
    }

    fn task_switch(&self, resumed: TaskRef) {
        {
            let mut st = self.state.borrow_mut();
            if st.current == resumed {
                // Switch to the already-current task: a no-op by the hook
                // contract (profilers ignore it), so not worth a diagnostic
                // — and the validator's own abort repair can introduce one.
                return;
            }
            if let TaskRef::Explicit(id) = resumed {
                if !st.live.contains_key(&id) {
                    drop(st);
                    self.report(Defect::SwitchToUnknown { task: id }, Repair::Dropped);
                    return;
                }
            }
            st.current = resumed;
        }
        self.inner.task_switch(resumed);
    }

    fn parameter_begin(&self, param: ParamId, value: i64) {
        let mut st = self.state.borrow_mut();
        match st.current {
            TaskRef::Implicit => st.implicit.push(Frame::Param(param)),
            TaskRef::Explicit(id) => st
                .live
                .get_mut(&id)
                .expect("current task is always live")
                .stack
                .push(Frame::Param(param)),
        }
        drop(st);
        self.inner.parameter_begin(param, value);
    }

    fn parameter_end(&self, param: ParamId) {
        self.close_matching(Frame::Param(param));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMonitor;
    use crate::region::RegionKind;
    use crate::task::TaskIdAllocator;
    use std::sync::atomic::Ordering;

    fn regions(tag: &str) -> (RegionId, RegionId, RegionId) {
        let reg = crate::registry();
        (
            reg.register(&format!("vd-{tag}-par"), RegionKind::Parallel, "t", 0),
            reg.register(&format!("vd-{tag}-r"), RegionKind::User, "t", 0),
            reg.register(&format!("vd-{tag}-task"), RegionKind::Task, "t", 0),
        )
    }

    #[test]
    fn clean_stream_passes_untouched() {
        let (par, r, task) = regions("clean");
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let ids = TaskIdAllocator::new();
        let th = v.thread_begin(0, 1, par);
        th.enter(r);
        let id = ids.alloc();
        th.task_create_begin(r, task, id);
        th.task_create_end(r, id);
        th.task_begin(task, id);
        th.task_end(task, id);
        th.exit(r);
        v.thread_end(0, th);
        assert!(v.is_clean());
        let (e, c, b, d, ..) = counting.counts().snapshot();
        assert_eq!((e, c, b, d), (1, 1, 1, 1));
        assert!(v.take_diagnostics().is_empty());
    }

    #[test]
    fn exit_without_enter_is_dropped() {
        let (par, r, _) = regions("noenter");
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let th = v.thread_begin(0, 1, par);
        th.exit(r); // never entered
        v.thread_end(0, th);
        let diags = v.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].defect, Defect::ExitWithoutEnter { region: r });
        assert_eq!(diags[0].repair, Repair::Dropped);
        assert_eq!(counting.counts().enters.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn buried_exit_force_closes_inner_frames() {
        let reg = crate::registry();
        let par = reg.register("vd-buried-par", RegionKind::Parallel, "t", 0);
        let outer = reg.register("vd-buried-outer", RegionKind::User, "t", 0);
        let inner = reg.register("vd-buried-inner", RegionKind::User, "t", 0);
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let th = v.thread_begin(0, 1, par);
        th.enter(outer);
        th.enter(inner);
        th.exit(outer); // inner never exited: synthesize its exit first
        v.thread_end(0, th);
        let diags = v.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].defect,
            Defect::UnbalancedExit {
                region: outer,
                force_closed: 1
            }
        );
        assert_eq!(diags[0].repair, Repair::Synthesized);
        assert_eq!(counting.counts().enters.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn lifecycle_defects_are_dropped() {
        let (par, _, task) = regions("life");
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let ids = TaskIdAllocator::new();
        let th = v.thread_begin(0, 1, par);
        let ghost = ids.alloc();
        th.task_end(task, ghost); // never began
        th.task_switch(TaskRef::Explicit(ghost)); // unknown instance
        th.task_switch(TaskRef::Implicit); // already current: silent no-op
        th.task_abort(task, ghost); // never began
        let id = ids.alloc();
        th.task_begin(task, id);
        th.task_begin(task, id); // duplicate
        th.task_end(task, id);
        v.thread_end(0, th);
        let defects: Vec<Defect> = v.take_diagnostics().iter().map(|d| d.defect).collect();
        assert_eq!(
            defects,
            vec![
                Defect::TaskEndWithoutBegin { task: ghost },
                Defect::SwitchToUnknown { task: ghost },
                Defect::TaskAbortWithoutBegin { task: ghost },
                Defect::DuplicateTaskBegin { task: id },
            ]
        );
        let (_, _, b, d, s, ..) = counting.counts().snapshot();
        assert_eq!((b, d, s), (1, 1, 0), "only the legal begin/end forwarded");
        assert_eq!(counting.counts().task_aborts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn end_while_suspended_synthesizes_the_missing_switch() {
        let (par, _, task) = regions("susp");
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let ids = TaskIdAllocator::new();
        let th = v.thread_begin(0, 1, par);
        let id = ids.alloc();
        th.task_begin(task, id);
        th.task_switch(TaskRef::Implicit); // suspend it
        th.task_end(task, id); // end without resuming first
        v.thread_end(0, th);
        let diags = v.take_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].defect, Defect::TaskEndWhileSuspended { task: id });
        assert_eq!(diags[0].repair, Repair::Synthesized);
        let (_, _, b, d, s, ..) = counting.counts().snapshot();
        // suspend + synthesized resume; begin and end both forwarded.
        assert_eq!((b, d, s), (1, 1, 2));
    }

    #[test]
    fn leaked_instances_and_frames_heal_at_thread_end() {
        let (par, r, task) = regions("leak");
        let counting = CountingMonitor::new();
        let v = ValidatingMonitor::new(counting.clone());
        let ids = TaskIdAllocator::new();
        let th = v.thread_begin(0, 1, par);
        th.enter(r); // never exited
        let id = ids.alloc();
        th.task_begin(task, id); // never ended
        v.thread_end(0, th);
        let diags = v.take_diagnostics();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].defect, Defect::TaskNeverEnded { task: id });
        assert_eq!(diags[1].defect, Defect::UnclosedRegions { count: 1 });
        assert_eq!(counting.counts().task_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(counting.counts().task_ends.load(Ordering::Relaxed), 0);
    }
}
