//! POMP2/OPARI2-style instrumentation interface.
//!
//! In the paper's stack, the source-to-source instrumenter OPARI2 rewrites
//! OpenMP pragmas into calls of the POMP2 measurement interface, which
//! Score-P implements. This crate plays the same role for the Rust stack:
//!
//! * a global, interned [`region::Registry`] of source-code regions
//!   (functions, task constructs, taskwaits, barriers, creation sites, ...),
//! * task-instance identifiers ([`task::TaskId`]) that the runtime stores in
//!   the task's own context — the OPARI2 extension of Lorenz et al.
//!   (IWOMP 2010) that makes instance-level tracking possible,
//! * the [`hooks::Monitor`] / [`hooks::ThreadHooks`] traits: the event
//!   vocabulary a measurement system (the `taskprof` crate) implements and a
//!   tasking runtime (the `taskrt` crate) invokes, and
//! * a [`clock::Clock`] abstraction so measurements can run against the
//!   monotonic system clock or a deterministic virtual clock for replaying
//!   the paper's event-stream figures exactly.
//!
//! The design keeps the three layers of the original system separable:
//! a runtime only depends on this crate (not on the profiler), a profiler
//! only depends on this crate (not on the runtime), and both can be unit
//! tested in isolation or recombined, e.g. a [`hooks::NullMonitor`] gives
//! the *uninstrumented* configuration used as the overhead baseline in the
//! paper's Section V.

#![warn(missing_docs)]

pub mod clock;
pub mod counting;
pub mod filter;
pub mod hooks;
pub mod region;
pub mod task;
pub mod validate;

pub use clock::{Clock, ClockReader, ClockSource, MonotonicClock, MonotonicReader, VirtualClock};
pub use counting::{CountingMonitor, EventCounts};
pub use filter::{FilteredMonitor, RegionFilter};
pub use hooks::{EventClass, Monitor, NullMonitor, NullThreadHooks, TaskRef, ThreadHooks};
pub use region::{registry, ParamId, RegionId, RegionInfo, RegionKind, Registry};
pub use task::{TaskId, TaskIdAllocator};
pub use validate::{Defect, Diagnostic, Repair, ValidatingMonitor, ValidatingThread};
