//! Segment files: the on-disk unit of the append-only log.
//!
//! Layout:
//!
//! ```text
//! segment := MAGIC (8 bytes) record*
//! record  := len:u32le  payload[len]  crc32(payload):u32le
//! ```
//!
//! The payload starts with the codec version byte (see [`crate::codec`]).
//! Appends go through a [`SegmentWriter`] that flushes the full frame per
//! record, so after a crash the file is a valid prefix plus at most one
//! torn frame. [`SegmentReader::scan`] validates every frame and reports
//! where the valid prefix ends so the store can truncate the tail on open.
//!
//! Every file operation goes through a [`StoreIo`] handle so the fault
//! injector ([`crate::FaultIo`]) can tear or fail any of them; production
//! passes [`crate::RealIo`](crate::RealIo).

use crate::codec::MAX_RECORD_BYTES;
use crate::crc::crc32;
use crate::io::{StoreFile, StoreIo};
use std::path::{Path, PathBuf};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"profseg1";

/// Bytes of framing around a payload (length word + CRC word).
pub const RECORD_HEADER_BYTES: u64 = 8;

/// One record located inside a segment.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Byte offset of the frame (the length word) within the file.
    pub offset: u64,
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
}

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer bytes than a complete frame (torn length word or payload).
    TornFrame,
    /// Frame complete but the CRC does not match the payload.
    CrcMismatch,
    /// The length word is implausible (beyond [`MAX_RECORD_BYTES`]).
    BadLength(u64),
}

impl std::fmt::Display for TailDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailDefect::TornFrame => write!(f, "torn frame"),
            TailDefect::CrcMismatch => write!(f, "crc mismatch"),
            TailDefect::BadLength(n) => write!(f, "implausible record length {n}"),
        }
    }
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// All records with valid frames, in file order.
    pub records: Vec<RawRecord>,
    /// Offset one past the last valid frame (where appends may resume).
    pub valid_len: u64,
    /// The defect that ended the scan early, if the file has a bad tail.
    pub tail_defect: Option<TailDefect>,
}

/// Sequential reader/recoverer for one segment file.
pub struct SegmentReader;

impl SegmentReader {
    /// Scan `path`, validating the magic and every record frame.
    ///
    /// A file shorter than the magic, or with a wrong magic, is reported
    /// as `valid_len == 0` with a tail defect, letting the caller decide
    /// whether that is recoverable (an empty just-created file) or fatal.
    pub fn scan(io: &dyn StoreIo, path: &Path) -> std::io::Result<SegmentScan> {
        let data = io.read_all(path)?;
        if data.len() < SEGMENT_MAGIC.len() || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Ok(SegmentScan {
                records: Vec::new(),
                valid_len: 0,
                tail_defect: Some(TailDefect::TornFrame),
            });
        }
        let mut records = Vec::new();
        let mut pos = SEGMENT_MAGIC.len();
        let mut tail_defect = None;
        while pos < data.len() {
            if data.len() - pos < 4 {
                tail_defect = Some(TailDefect::TornFrame);
                break;
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len as u64 > MAX_RECORD_BYTES as u64 {
                tail_defect = Some(TailDefect::BadLength(len as u64));
                break;
            }
            if data.len() - pos < 4 + len + 4 {
                tail_defect = Some(TailDefect::TornFrame);
                break;
            }
            let payload = &data[pos + 4..pos + 4 + len];
            let stored_crc = u32::from_le_bytes(
                data[pos + 4 + len..pos + 8 + len].try_into().expect("4 bytes"),
            );
            if crc32(payload) != stored_crc {
                tail_defect = Some(TailDefect::CrcMismatch);
                break;
            }
            records.push(RawRecord {
                offset: pos as u64,
                payload: payload.to_vec(),
            });
            pos += 8 + len;
        }
        Ok(SegmentScan {
            records,
            valid_len: pos.min(data.len()) as u64,
            tail_defect,
        })
    }

    /// Read the single record at `offset` (as recorded in a store index).
    pub fn read_at(io: &dyn StoreIo, path: &Path, offset: u64) -> std::io::Result<Option<Vec<u8>>> {
        let lenbuf = io.read_range(path, offset, 4)?;
        if lenbuf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(lenbuf[..4].try_into().expect("4 bytes")) as usize;
        if len as u64 > MAX_RECORD_BYTES as u64 {
            return Ok(None);
        }
        let body = io.read_range(path, offset + 4, len + 4)?;
        if body.len() < len + 4 {
            return Ok(None);
        }
        let payload = &body[..len];
        let stored_crc = u32::from_le_bytes(body[len..len + 4].try_into().expect("4 bytes"));
        if crc32(payload) != stored_crc {
            return Ok(None);
        }
        Ok(Some(payload.to_vec()))
    }
}

/// Appender for the active segment.
pub struct SegmentWriter {
    path: PathBuf,
    file: Box<dyn StoreFile>,
    len: u64,
    sync: bool,
}

impl SegmentWriter {
    /// Create a fresh segment (fails if `path` exists).
    pub fn create(io: &dyn StoreIo, path: &Path, sync: bool) -> std::io::Result<Self> {
        let mut file = io.create_new(path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.flush()?;
        if sync {
            file.sync_all()?;
        }
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: SEGMENT_MAGIC.len() as u64,
            sync,
        })
    }

    /// Reopen an existing segment for appends, first truncating it to
    /// `valid_len` (the recovery step that drops a torn tail record).
    ///
    /// A `valid_len` shorter than the magic means the header itself never
    /// made it to disk (a crash between `create_new` and the magic write)
    /// or was destroyed: the file is truncated and the magic rewritten, so
    /// appends resume into a well-formed segment. Without this, every
    /// record appended after recovery would sit behind a bad header and be
    /// discarded wholesale by the next scan.
    pub fn recover(
        io: &dyn StoreIo,
        path: &Path,
        valid_len: u64,
        sync: bool,
    ) -> std::io::Result<Self> {
        let mut file = io.open_rw(path)?;
        let len = if valid_len < SEGMENT_MAGIC.len() as u64 {
            file.set_len(0)?;
            file.seek_to(0)?;
            file.write_all(SEGMENT_MAGIC)?;
            file.flush()?;
            SEGMENT_MAGIC.len() as u64
        } else {
            file.set_len(valid_len)?;
            file.seek_to(valid_len)?;
            valid_len
        };
        if sync {
            file.sync_all()?;
        }
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len,
            sync,
        })
    }

    /// Append one framed record; returns the frame's byte offset.
    ///
    /// On failure the writer repairs itself best-effort: the file is
    /// truncated back to the last good frame and the cursor reseated, so
    /// a transient error (`ENOSPC` while the disk fills, `EIO` on one
    /// sector) leaves a well-formed log and the *next* append can
    /// succeed. If the repair itself fails (the process is "dead" in a
    /// crash simulation, or the device is gone) the partial frame stays
    /// behind as a torn tail — exactly what scan-and-truncate recovery on
    /// the next open handles.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let offset = self.len;
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        let result = (|| {
            self.file.write_all(&frame)?;
            self.file.flush()?;
            if self.sync {
                self.file.sync_data()?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek_to(self.len);
            return Err(e);
        }
        self.len += frame.len() as u64;
        Ok(offset)
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len <= SEGMENT_MAGIC.len() as u64
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultIo, FaultKind, FaultPlan, RealIo};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profstore-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("seg-000001.log");
        let io = RealIo;
        let mut w = SegmentWriter::create(&io, &path, false).expect("create");
        let a = w.append(b"first record").expect("append");
        let b = w.append(b"second, longer record payload").expect("append");
        assert!(b > a);
        let scan = SegmentReader::scan(&io, &path).expect("scan");
        assert_eq!(scan.tail_defect, None);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].payload, b"first record");
        assert_eq!(scan.records[1].payload, b"second, longer record payload");
        assert_eq!(scan.valid_len, w.len());
        assert_eq!(
            SegmentReader::read_at(&io, &path, b).expect("read_at"),
            Some(b"second, longer record payload".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("seg-000001.log");
        let io = RealIo;
        let mut w = SegmentWriter::create(&io, &path, false).expect("create");
        w.append(b"kept").expect("append");
        let good_len = w.len();
        w.append(b"lost to the crash").expect("append");
        drop(w);
        // Simulate a crash mid-append: cut the file inside the last frame.
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 5]).expect("write");
        let scan = SegmentReader::scan(&io, &path).expect("scan");
        assert_eq!(scan.tail_defect, Some(TailDefect::TornFrame));
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good_len);
        // Recovery truncates and appends continue cleanly.
        let mut w = SegmentWriter::recover(&io, &path, scan.valid_len, false).expect("recover");
        w.append(b"after recovery").expect("append");
        let scan = SegmentReader::scan(&io, &path).expect("scan");
        assert_eq!(scan.tail_defect, None);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"after recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_at_zero_rewrites_the_magic_header() {
        let dir = tmpdir("zero");
        let path = dir.join("seg-000001.log");
        let io = RealIo;
        // A crash between create_new and the magic write leaves an empty
        // (or partial-header) file; its scan reports valid_len == 0.
        std::fs::write(&path, b"pro").expect("write partial header");
        let scan = SegmentReader::scan(&io, &path).expect("scan");
        assert_eq!(scan.valid_len, 0);
        let mut w = SegmentWriter::recover(&io, &path, scan.valid_len, false).expect("recover");
        let off = w.append(b"post-recovery record").expect("append");
        drop(w);
        // The segment is well-formed again: the magic is back and the
        // appended record survives the next scan instead of being
        // discarded behind a bad header.
        let scan = SegmentReader::scan(&io, &path).expect("rescan");
        assert_eq!(scan.tail_defect, None);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"post-recovery record");
        assert_eq!(
            SegmentReader::read_at(&io, &path, off).expect("read_at"),
            Some(b"post-recovery record".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let dir = tmpdir("crc");
        let path = dir.join("seg-000001.log");
        let io = RealIo;
        let mut w = SegmentWriter::create(&io, &path, false).expect("create");
        let off = w.append(b"pristine payload bytes").expect("append");
        drop(w);
        let mut data = std::fs::read(&path).expect("read");
        let idx = off as usize + 4 + 3; // a byte inside the payload
        data[idx] ^= 0x40;
        std::fs::write(&path, &data).expect("write");
        let scan = SegmentReader::scan(&io, &path).expect("scan");
        assert_eq!(scan.tail_defect, Some(TailDefect::CrcMismatch));
        assert!(scan.records.is_empty());
        assert_eq!(SegmentReader::read_at(&io, &path, off).expect("read_at"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_repairs_the_tail_and_the_next_append_succeeds() {
        let dir = tmpdir("repair");
        let path = dir.join("seg-000001.log");
        // Ops: 0 create_new, 1 magic write, 2 good append, 3 torn append.
        let (io, _handle) = FaultIo::with_plan(FaultPlan::fail_at(11, 3, FaultKind::Enospc));
        let mut w = SegmentWriter::create(&*io, &path, false).expect("create");
        let a = w.append(b"survives").expect("append");
        let err = w.append(b"hits the full disk").expect_err("injected enospc");
        assert!(crate::io::is_enospc(&err), "{err}");
        // The repair truncated the torn prefix: the file is well-formed
        // and the next append lands cleanly at the same offset.
        let b = w.append(b"after the disk recovered").expect("append");
        assert_eq!(w.len(), b + 24 + RECORD_HEADER_BYTES);
        drop(w);
        let scan = SegmentReader::scan(&RealIo, &path).expect("scan");
        assert_eq!(scan.tail_defect, None, "repair left no torn tail");
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].payload, b"survives");
        assert_eq!(scan.records[0].offset, a);
        assert_eq!(scan.records[1].payload, b"after the disk recovered");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
