//! [`Repo`]: one handle over either repository flavor, so the serving
//! daemon is agnostic to whether it fronts a single [`ProfileStore`] or
//! a [`ShardedStore`]. Exactly the operations the daemon needs are
//! delegated; everything else stays on the concrete types.

use crate::agg::BenchAgg;
use crate::codec::RunMeta;
use crate::shard::ShardedStore;
use crate::store::{
    ExportBatch, GcReport, IngestReceipt, ProfileStore, RetentionPolicy, RunWindow, StoreError,
    StoreStats, TrendBucket,
};
use std::collections::BTreeMap;
use std::path::Path;
use taskprof::Profile;

/// A single-store or sharded repository behind one dispatching handle.
#[derive(Debug)]
pub enum Repo {
    /// One `ProfileStore` (the pre-sharding deployment shape).
    Single(ProfileStore),
    /// N stores routed by benchmark with global run ids.
    Sharded(ShardedStore),
}

impl From<ProfileStore> for Repo {
    fn from(store: ProfileStore) -> Self {
        Repo::Single(store)
    }
}

impl From<ShardedStore> for Repo {
    fn from(store: ShardedStore) -> Self {
        Repo::Sharded(store)
    }
}

impl Repo {
    /// The repository root directory.
    pub fn dir(&self) -> &Path {
        match self {
            Repo::Single(s) => s.dir(),
            Repo::Sharded(s) => s.dir(),
        }
    }

    /// Shards behind this handle (1 for a single store).
    pub fn shard_count(&self) -> usize {
        match self {
            Repo::Single(_) => 1,
            Repo::Sharded(s) => s.shard_count(),
        }
    }

    /// Append one run, assigning the next run id.
    pub fn ingest(
        &mut self,
        benchmark: &str,
        threads: u32,
        timestamp_ns: u64,
        profile: &Profile,
    ) -> Result<IngestReceipt, StoreError> {
        match self {
            Repo::Single(s) => s.ingest(benchmark, threads, timestamp_ns, profile),
            Repo::Sharded(s) => s.ingest(benchmark, threads, timestamp_ns, profile),
        }
    }

    /// Load one run by id.
    pub fn load(&self, run_id: u64) -> Result<(RunMeta, Profile), StoreError> {
        match self {
            Repo::Single(s) => s.load(run_id),
            Repo::Sharded(s) => s.load(run_id),
        }
    }

    /// Cross-run aggregate of a windowed (benchmark, threads) group.
    pub fn aggregate_window(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
    ) -> Result<BenchAgg, StoreError> {
        match self {
            Repo::Single(s) => s.aggregate_window(benchmark, threads, window),
            Repo::Sharded(s) => s.aggregate_window(benchmark, threads, window),
        }
    }

    /// Trend buckets over a windowed group.
    pub fn trend(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
        buckets: usize,
    ) -> Result<Vec<TrendBucket>, StoreError> {
        match self {
            Repo::Single(s) => s.trend(benchmark, threads, window, buckets),
            Repo::Sharded(s) => s.trend(benchmark, threads, window, buckets),
        }
    }

    /// Every distinct (benchmark, threads) group with its run count.
    pub fn groups(&self) -> BTreeMap<(String, u32), u64> {
        match self {
            Repo::Single(s) => s.groups(),
            Repo::Sharded(s) => s.groups(),
        }
    }

    /// Whole-repository shape/health summary.
    pub fn stats(&self) -> StoreStats {
        match self {
            Repo::Single(s) => s.stats(),
            Repo::Sharded(s) => s.stats(),
        }
    }

    /// Per-shard summaries, in shard order (one entry for a single
    /// store) — the data behind the daemon's per-shard gauges.
    pub fn per_shard_stats(&self) -> Vec<StoreStats> {
        match self {
            Repo::Single(s) => vec![s.stats()],
            Repo::Sharded(s) => s.per_shard_stats(),
        }
    }

    /// Fold closed segments into the aggregate cache(s).
    pub fn compact(&mut self) -> Result<u64, StoreError> {
        match self {
            Repo::Single(s) => s.compact(),
            Repo::Sharded(s) => s.compact(),
        }
    }

    /// Garbage-collect runs the retention policy rejects.
    pub fn gc(&mut self, policy: &RetentionPolicy) -> Result<GcReport, StoreError> {
        match self {
            Repo::Single(s) => s.gc(policy),
            Repo::Sharded(s) => s.gc(policy),
        }
    }

    /// One page of the replication stream (ascending run-id order).
    pub fn export_frames(&self, after: u64, max: usize) -> Result<ExportBatch, StoreError> {
        match self {
            Repo::Single(s) => s.export_frames(after, max),
            Repo::Sharded(s) => s.export_frames(after, max),
        }
    }

    /// Apply one replicated frame exactly-once (None = already applied).
    pub fn apply_frame(&mut self, frame: &[u8]) -> Result<Option<IngestReceipt>, StoreError> {
        match self {
            Repo::Single(s) => s.apply_frame(frame),
            Repo::Sharded(s) => s.apply_frame(frame),
        }
    }

    /// Highest run id indexed (the replication cursor).
    pub fn max_run_id(&self) -> u64 {
        match self {
            Repo::Single(s) => s.max_run_id(),
            Repo::Sharded(s) => s.max_run_id(),
        }
    }
}
