//! `profstore` — a durable repository of measurement runs.
//!
//! The paper's workflow ends at one CUBE file per run; this crate is the
//! next layer: many runs, retained durably, aggregated across each other,
//! and queryable online. The design is a classic append-only log:
//!
//! * [`codec`] — a compact length-prefixed binary encoding of a
//!   [`taskprof::Profile`] plus its [`RunMeta`], varint-packed, with a
//!   version byte and a CRC-32 per record.
//! * [`segment`] — segment files (`seg-NNNNNN.log`): a magic header
//!   followed by framed records. Only the newest segment is ever written;
//!   older ("closed") segments are immutable.
//! * [`ProfileStore`] — the repository: an in-memory index keyed by
//!   (run id, benchmark, thread count, timestamp), crash-safe recovery
//!   that truncates a torn tail record on open, size-based segment
//!   rotation, and compaction that folds closed segments into
//!   per-benchmark cross-run aggregates.
//! * [`merge`] — a streaming k-way merge over per-segment cursors, so
//!   aggregation visits runs one at a time in (timestamp, run id) order
//!   and never materializes every profile at once.
//! * [`agg`] — the cross-run statistics themselves: min/max/mean/sum of
//!   the paper's per-construct metrics over runs (reusing `cube::agg`
//!   for the structural tree merge), plus the regression check a serving
//!   daemon runs against a freshly ingested profile.
//! * [`io`] — the injectable I/O seam: every file operation goes through
//!   a [`StoreIo`] handle ([`RealIo`] in production, a zero-cost
//!   passthrough), so [`FaultIo`] can deterministically inject short
//!   writes, `ENOSPC`, `EIO`, and crash-at-point torn frames from a
//!   splitmix64-seeded [`FaultPlan`]. The torture tests crash the store
//!   at *every* mutating operation and prove recovery never loses or
//!   duplicates an acknowledged run.
//!
//! Durability contract: a record is either fully on disk (length,
//! payload, CRC all intact) or it is dropped at the next
//! [`ProfileStore::open`]. A crash mid-append therefore loses at most the
//! in-flight record; everything previously acknowledged survives.
//!
//! Single-writer contract: opening a store takes an exclusive advisory
//! lock on the directory (a `LOCK` file, held for the store's lifetime
//! and released by the OS even on crash). A second concurrent open —
//! from this process or another — fails with [`StoreError::Locked`]
//! rather than letting two writers interleave frames on the same active
//! segment.

#![warn(missing_docs)]

pub mod agg;
pub mod codec;
pub mod crc;
pub mod io;
pub mod merge;
mod repo;
pub mod segment;
mod shard;
mod store;

pub use agg::{BenchAgg, MetricAgg, RegressConfig, Regression, RegressionFinding, RunSummary};
pub use codec::{
    decode_meta, decode_record, encode_record, put_iv, put_str, put_uv, CodecError,
    Reader as PayloadReader, RunMeta, CODEC_VERSION, MAX_RECORD_BYTES,
};
pub use io::{
    is_enospc, FaultHandle, FaultIo, FaultKind, FaultMode, FaultPlan, RealIo, StoreFile, StoreIo,
};
pub use merge::KWayMerge;
pub use repo::Repo;
pub use segment::{SegmentReader, SegmentWriter, RECORD_HEADER_BYTES, SEGMENT_MAGIC};
pub use shard::ShardedStore;
pub use store::{
    ExportBatch, GcReport, IndexEntry, IngestReceipt, ProfileStore, RetentionPolicy, RunWindow,
    StoreConfig, StoreError, StoreStats, TrendBucket,
};
