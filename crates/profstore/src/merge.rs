//! Streaming k-way merge.
//!
//! Compaction and cross-run aggregation must visit every stored run in
//! global (timestamp, run id) order without materializing all of them:
//! each segment yields its records lazily in file order (which is ingest
//! order, but timestamps may interleave arbitrarily across segments), and
//! this merge repeatedly takes the source whose *next* item has the
//! smallest key. Memory held: one decoded item per source, never the
//! whole store.

use std::iter::Peekable;

/// K-way merge of several already-available iterators by a caller-chosen
/// `(u64, u64)` sort key.
pub struct KWayMerge<T, I: Iterator<Item = T>, F: Fn(&T) -> (u64, u64)> {
    sources: Vec<Peekable<I>>,
    key: F,
}

impl<T, I: Iterator<Item = T>, F: Fn(&T) -> (u64, u64)> KWayMerge<T, I, F> {
    /// Build a merge over `sources`, ordered ascending by `key`.
    pub fn new(sources: Vec<I>, key: F) -> Self {
        Self {
            sources: sources.into_iter().map(Iterator::peekable).collect(),
            key,
        }
    }
}

impl<T, I: Iterator<Item = T>, F: Fn(&T) -> (u64, u64)> Iterator for KWayMerge<T, I, F> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let mut best: Option<(usize, (u64, u64))> = None;
        for (i, src) in self.sources.iter_mut().enumerate() {
            if let Some(item) = src.peek() {
                let k = (self.key)(item);
                if best.map(|(_, bk)| k < bk).unwrap_or(true) {
                    best = Some((i, k));
                }
            }
        }
        let (i, _) = best?;
        self.sources[i].next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_in_key_order() {
        let a = vec![(1u64, "a1"), (4, "a4"), (9, "a9")];
        let b = vec![(2u64, "b2"), (3, "b3")];
        let c = vec![(0u64, "c0"), (9, "c9")];
        let merged: Vec<&str> = KWayMerge::new(
            vec![a.into_iter(), b.into_iter(), c.into_iter()],
            |item| (item.0, 0),
        )
        .map(|(_, tag)| tag)
        .collect();
        assert_eq!(merged, ["c0", "a1", "b2", "b3", "a4", "a9", "c9"]);
    }

    #[test]
    fn equal_keys_favor_earlier_sources() {
        let a = vec![(5u64, "first")];
        let b = vec![(5u64, "second")];
        let merged: Vec<&str> =
            KWayMerge::new(vec![a.into_iter(), b.into_iter()], |item| (item.0, 0))
                .map(|(_, tag)| tag)
                .collect();
        assert_eq!(merged, ["first", "second"]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let merged: Vec<u64> =
            KWayMerge::new(Vec::<std::vec::IntoIter<u64>>::new(), |&v| (v, 0)).collect();
        assert!(merged.is_empty());
        let merged: Vec<u64> = KWayMerge::new(
            vec![Vec::new().into_iter(), vec![7u64].into_iter()],
            |&v| (v, 0),
        )
        .collect();
        assert_eq!(merged, [7]);
    }
}
