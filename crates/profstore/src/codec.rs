//! Compact binary encoding of one repository record.
//!
//! A record is `RunMeta` + `Profile`, serialized with LEB128 varints and
//! length-prefixed UTF-8 strings, prefixed by a single version byte. The
//! segment layer (not this module) frames the payload with a length word
//! and a CRC-32. Region and parameter names are stored by name (+kind)
//! and re-interned on decode, exactly like the text store, so records
//! written by one process are readable by any other.
//!
//! The `Stats` no-samples minimum keeps the text-format convention: the
//! in-memory `u64::MAX` sentinel is encoded as 0 and restored on decode
//! (which also keeps the varint short).

use crate::crc::crc32;
use pomp::{registry, RegionKind};
use taskprof::{NodeKind, Profile, SnapNode, Stats, ThreadSnapshot};

/// Current payload format version (the first payload byte).
pub const CODEC_VERSION: u8 = 1;

/// Hard ceiling on a single record payload; lengths beyond this are
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 256 << 20;

/// Identity and provenance of one stored run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Store-assigned, strictly increasing run identifier.
    pub run_id: u64,
    /// Benchmark / workload name (e.g. the session name or BOTS code).
    pub benchmark: String,
    /// Team thread count the run was measured with.
    pub threads: u32,
    /// Caller-supplied wall-clock timestamp, nanoseconds. Orders the
    /// streaming merge; deterministic sweeps may pin it for stable logs.
    pub timestamp_ns: u64,
}

/// A record could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the structure was complete.
    Truncated,
    /// The leading version byte is not one this build understands.
    BadVersion(u8),
    /// A structural element was out of range or malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record payload truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            CodecError::Malformed(what) => write!(f, "malformed record: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Append a LEB128-encoded unsigned varint.
///
/// Public so sibling layers (the wire protocol in `profserve`) can share
/// one integer encoding with the record codec instead of inventing a
/// second one.
pub fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string (varint length, then bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append a ZigZag-encoded signed varint.
pub fn put_iv(out: &mut Vec<u8>, v: i64) {
    // ZigZag so small negative parameter values stay short.
    put_uv(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Bounds-checked cursor over an encoded payload. Every read returns a
/// typed [`CodecError`] instead of panicking, so arbitrary bytes are safe
/// to feed in. Shared with the `profserve` wire protocol.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Read one raw byte.
    pub fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 unsigned varint (see [`put_uv`]).
    pub fn uv(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::Malformed("varint overflow"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::Malformed("varint too long"));
            }
        }
    }

    /// Read a ZigZag signed varint (see [`put_iv`]).
    pub fn iv(&mut self) -> Result<i64, CodecError> {
        let z = self.uv()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a length-prefixed UTF-8 string (see [`put_str`]).
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.uv()? as usize;
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(CodecError::Truncated);
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + len])
            .map_err(|_| CodecError::Malformed("non-utf8 string"))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read exactly `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if len > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }
}

fn kind_to_u8(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Function => 0,
        RegionKind::Parallel => 1,
        RegionKind::Task => 2,
        RegionKind::TaskCreate => 3,
        RegionKind::Taskwait => 4,
        RegionKind::ImplicitBarrier => 5,
        RegionKind::ExplicitBarrier => 6,
        RegionKind::Single => 7,
        RegionKind::Workshare => 8,
        RegionKind::Critical => 9,
        RegionKind::User => 10,
    }
}

fn kind_from_u8(tag: u8) -> Option<RegionKind> {
    Some(match tag {
        0 => RegionKind::Function,
        1 => RegionKind::Parallel,
        2 => RegionKind::Task,
        3 => RegionKind::TaskCreate,
        4 => RegionKind::Taskwait,
        5 => RegionKind::ImplicitBarrier,
        6 => RegionKind::ExplicitBarrier,
        7 => RegionKind::Single,
        8 => RegionKind::Workshare,
        9 => RegionKind::Critical,
        10 => RegionKind::User,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Tree encode / decode
// ---------------------------------------------------------------------

const TAG_REGION: u8 = 0;
const TAG_STUB: u8 = 1;
const TAG_PARAM: u8 = 2;
const TAG_TRUNCATED: u8 = 3;

fn put_stats(out: &mut Vec<u8>, s: &Stats) {
    put_uv(out, s.visits);
    put_uv(out, s.sum_ns);
    put_uv(out, s.min().unwrap_or(0));
    put_uv(out, s.max_ns);
    put_uv(out, s.samples);
    put_uv(out, s.aborted);
}

fn read_stats(r: &mut Reader<'_>) -> Result<Stats, CodecError> {
    let mut s = Stats::new();
    s.visits = r.uv()?;
    s.sum_ns = r.uv()?;
    s.min_ns = r.uv()?;
    s.max_ns = r.uv()?;
    s.samples = r.uv()?;
    s.aborted = r.uv()?;
    if s.samples == 0 {
        s.min_ns = u64::MAX;
    }
    Ok(s)
}

fn put_node(out: &mut Vec<u8>, node: &SnapNode) {
    let reg = registry();
    match node.kind {
        NodeKind::Region(id) => {
            out.push(TAG_REGION);
            let info = reg.info(id);
            out.push(kind_to_u8(info.kind));
            put_str(out, &info.name);
        }
        NodeKind::Stub(id) => {
            out.push(TAG_STUB);
            put_str(out, &reg.name(id));
        }
        NodeKind::Param(p, v) => {
            out.push(TAG_PARAM);
            put_str(out, &reg.param_name(p));
            put_iv(out, v);
        }
        NodeKind::Truncated => out.push(TAG_TRUNCATED),
    }
    put_stats(out, &node.stats);
    put_uv(out, node.children.len() as u64);
    for c in &node.children {
        put_node(out, c);
    }
}

fn read_node(r: &mut Reader<'_>, depth: usize) -> Result<SnapNode, CodecError> {
    if depth > 4096 {
        return Err(CodecError::Malformed("tree deeper than 4096"));
    }
    let reg = registry();
    let kind = match r.byte()? {
        TAG_REGION => {
            let k = kind_from_u8(r.byte()?).ok_or(CodecError::Malformed("bad region kind"))?;
            let name = r.str()?;
            NodeKind::Region(reg.register(&name, k, "loaded", 0))
        }
        TAG_STUB => NodeKind::Stub(reg.register(&r.str()?, RegionKind::Task, "loaded", 0)),
        TAG_PARAM => {
            let name = r.str()?;
            let v = r.iv()?;
            NodeKind::Param(reg.register_param(&name), v)
        }
        TAG_TRUNCATED => NodeKind::Truncated,
        _ => return Err(CodecError::Malformed("unknown node tag")),
    };
    let stats = read_stats(r)?;
    let nchildren = r.uv()? as usize;
    if nchildren > r.buf.len() - r.pos {
        // Each child costs at least one byte; anything larger is garbage.
        return Err(CodecError::Truncated);
    }
    let mut children = Vec::with_capacity(nchildren);
    for _ in 0..nchildren {
        children.push(read_node(r, depth + 1)?);
    }
    Ok(SnapNode {
        kind,
        stats,
        children,
    })
}

// ---------------------------------------------------------------------
// Record encode / decode
// ---------------------------------------------------------------------

/// Encode one `(meta, profile)` record payload (version byte included,
/// framing excluded). The CRC-32 of the returned bytes is what the
/// segment layer stores alongside.
pub fn encode_record(meta: &RunMeta, profile: &Profile) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.push(CODEC_VERSION);
    put_uv(&mut out, meta.run_id);
    put_str(&mut out, &meta.benchmark);
    put_uv(&mut out, u64::from(meta.threads));
    put_uv(&mut out, meta.timestamp_ns);
    put_uv(&mut out, profile.threads.len() as u64);
    for t in &profile.threads {
        put_uv(&mut out, t.tid as u64);
        put_uv(&mut out, t.max_live_trees as u64);
        put_uv(&mut out, t.arena_capacity as u64);
        put_uv(&mut out, t.shed_instances);
        put_uv(&mut out, t.diagnostics.len() as u64);
        for d in &t.diagnostics {
            put_str(&mut out, d);
        }
        put_node(&mut out, &t.main);
        put_uv(&mut out, t.task_trees.len() as u64);
        for tree in &t.task_trees {
            put_node(&mut out, tree);
        }
    }
    out
}

/// Decode only the [`RunMeta`] header of a record payload — what index
/// rebuilding needs, without materializing the profile.
pub fn decode_meta(payload: &[u8]) -> Result<RunMeta, CodecError> {
    let mut r = Reader::new(payload);
    match r.byte()? {
        CODEC_VERSION => {}
        v => return Err(CodecError::BadVersion(v)),
    }
    Ok(RunMeta {
        run_id: r.uv()?,
        benchmark: r.str()?,
        threads: u32::try_from(r.uv()?).map_err(|_| CodecError::Malformed("threads overflow"))?,
        timestamp_ns: r.uv()?,
    })
}

/// Decode one record payload produced by [`encode_record`].
pub fn decode_record(payload: &[u8]) -> Result<(RunMeta, Profile), CodecError> {
    let mut r = Reader::new(payload);
    match r.byte()? {
        CODEC_VERSION => {}
        v => return Err(CodecError::BadVersion(v)),
    }
    let meta = RunMeta {
        run_id: r.uv()?,
        benchmark: r.str()?,
        threads: u32::try_from(r.uv()?).map_err(|_| CodecError::Malformed("threads overflow"))?,
        timestamp_ns: r.uv()?,
    };
    let nthreads = r.uv()? as usize;
    if nthreads > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let tid = r.uv()? as usize;
        let max_live_trees = r.uv()? as usize;
        let arena_capacity = r.uv()? as usize;
        let shed_instances = r.uv()?;
        let ndiag = r.uv()? as usize;
        if ndiag > payload.len() {
            return Err(CodecError::Truncated);
        }
        let mut diagnostics = Vec::with_capacity(ndiag);
        for _ in 0..ndiag {
            diagnostics.push(r.str()?);
        }
        let main = read_node(&mut r, 0)?;
        let ntrees = r.uv()? as usize;
        if ntrees > payload.len() {
            return Err(CodecError::Truncated);
        }
        let mut task_trees = Vec::with_capacity(ntrees);
        for _ in 0..ntrees {
            task_trees.push(read_node(&mut r, 0)?);
        }
        let parallel_region = match main.kind {
            NodeKind::Region(id) => id,
            _ => pomp::RegionId(0),
        };
        threads.push(ThreadSnapshot {
            tid,
            parallel_region,
            main,
            task_trees,
            max_live_trees,
            arena_capacity,
            shed_instances,
            diagnostics,
        });
    }
    if !r.done() {
        return Err(CodecError::Malformed("trailing bytes after profile"));
    }
    Ok((meta, Profile { threads }))
}

/// CRC-32 of a payload, re-exported here so callers frame records without
/// reaching into the `crc` module.
pub fn payload_crc(payload: &[u8]) -> u32 {
    crc32(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn sample_profile(tag: &str) -> Profile {
        let reg = registry();
        let par = reg.register(&format!("{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("{tag}-task"), RegionKind::Task, "t", 0);
        let depth = reg.register_param(&format!("{tag}-depth"));
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        for k in 0..3 {
            let id = ids.alloc();
            team.apply(0, Event::TaskBegin { region: task, id })
                .apply(0, Event::ParamBegin { param: depth, value: k - 1 })
                .advance(10 + k as u64)
                .apply(0, Event::ParamEnd { param: depth })
                .apply(0, Event::TaskEnd { region: task, id });
        }
        team.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample_profile("codec-rt");
        let meta = RunMeta {
            run_id: 7,
            benchmark: "fib".into(),
            threads: 2,
            timestamp_ns: 123_456_789,
        };
        let payload = encode_record(&meta, &p);
        let (m2, q) = decode_record(&payload).expect("decode");
        assert_eq!(meta, m2);
        assert_eq!(p.threads.len(), q.threads.len());
        for (a, b) in p.threads.iter().zip(&q.threads) {
            assert_eq!(a.tid, b.tid);
            assert_eq!(a.main, b.main);
            assert_eq!(a.task_trees, b.task_trees);
            assert_eq!(a.max_live_trees, b.max_live_trees);
            assert_eq!(a.arena_capacity, b.arena_capacity);
            assert_eq!(a.shed_instances, b.shed_instances);
            assert_eq!(a.diagnostics, b.diagnostics);
        }
        // Deterministic: same input, same bytes.
        assert_eq!(payload, encode_record(&meta, &q));
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let p = sample_profile("codec-size");
        let meta = RunMeta {
            run_id: 1,
            benchmark: "fib".into(),
            threads: 2,
            timestamp_ns: 0,
        };
        let bin = encode_record(&meta, &p).len();
        let text = cube::write_profile(&p).len();
        assert!(bin < text, "binary {bin} >= text {text}");
    }

    #[test]
    fn no_samples_sentinel_round_trips() {
        let mut p = sample_profile("codec-min");
        let mut stats = Stats::new();
        stats.add_visit();
        p.threads[0].main.children.push(SnapNode {
            kind: NodeKind::Truncated,
            stats,
            children: vec![],
        });
        let meta = RunMeta {
            run_id: 1,
            benchmark: "b".into(),
            threads: 2,
            timestamp_ns: 0,
        };
        let payload = encode_record(&meta, &p);
        let (_, q) = decode_record(&payload).expect("decode");
        let s = &q.threads[0].main.children.last().unwrap().stats;
        assert_eq!(s.min(), None);
        assert_eq!(s.min_ns, u64::MAX);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let p = sample_profile("codec-trunc");
        let meta = RunMeta {
            run_id: 3,
            benchmark: "nqueens".into(),
            threads: 2,
            timestamp_ns: 42,
        };
        let payload = encode_record(&meta, &p);
        for cut in 0..payload.len() {
            assert!(
                decode_record(&payload[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn bad_version_and_garbage_are_rejected() {
        let p = sample_profile("codec-bad");
        let meta = RunMeta {
            run_id: 3,
            benchmark: "x".into(),
            threads: 1,
            timestamp_ns: 0,
        };
        let mut payload = encode_record(&meta, &p);
        payload[0] = 99;
        assert!(matches!(
            decode_record(&payload),
            Err(CodecError::BadVersion(99))
        ));
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[CODEC_VERSION, 0xFF]).is_err());
    }
}
