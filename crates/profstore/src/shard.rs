//! The sharded repository: N independent [`ProfileStore`]s under one
//! root, one global run-id space, queries fanned back in with the
//! streaming [`KWayMerge`].
//!
//! Layout:
//!
//! ```text
//! root/
//!   SHARDS        # decimal shard count, fixed at creation
//!   shard-000/    # a full ProfileStore (segments + LOCK)
//!   shard-001/
//!   ...
//! ```
//!
//! Routing is a pure function of the run's identity: a non-empty
//! benchmark name hashes (FNV-1a) to one shard, so every run of a
//! (benchmark, threads) group lives together and group queries touch a
//! single shard; runs with no benchmark name fall back to hashing the
//! run id, spreading them evenly. The shard count is recorded in the
//! `SHARDS` file at creation and must match on every later open —
//! changing it would silently strand runs in shards the router no
//! longer selects ([`StoreError::ShardMismatch`]).
//!
//! Concurrency: run ids come from one atomic counter; each shard sits
//! behind its own mutex (and its own on-disk advisory `LOCK`), so
//! ingest, compaction, and GC on different shards proceed in parallel —
//! the single-owner starvation the detrimental-pattern literature warns
//! about is bounded to one shard, not the whole repository.

use crate::agg::BenchAgg;
use crate::codec::{decode_meta, RunMeta};
use crate::io::{RealIo, StoreIo};
use crate::merge::KWayMerge;
use crate::segment::RECORD_HEADER_BYTES;
use crate::store::{
    ExportBatch, GcReport, IndexEntry, IngestReceipt, ProfileStore, RetentionPolicy, RunWindow,
    StoreConfig, StoreError, StoreStats, TrendBucket,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use taskprof::Profile;

/// Name of the shard-count metadata file at the repository root.
const SHARDS_FILE: &str = "SHARDS";

/// FNV-1a 64-bit — stable across processes and platforms, which is what
/// routing needs (a rehash would orphan every stored run).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A repository of N independent single-writer stores with one global
/// run-id space. See the module docs for layout and routing rules.
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<Mutex<ProfileStore>>,
    next_run_id: AtomicU64,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedStore {
    /// Open (creating if needed) a sharded repository with default
    /// per-shard configuration.
    pub fn open(dir: &Path, shards: u32) -> Result<Self, StoreError> {
        Self::open_with(dir, shards, StoreConfig::default())
    }

    /// Open with explicit per-shard configuration.
    pub fn open_with(dir: &Path, shards: u32, config: StoreConfig) -> Result<Self, StoreError> {
        Self::open_with_io(dir, shards, config, RealIo::handle())
    }

    /// Open through an explicit [`StoreIo`] — the fault-injection seam.
    /// The `SHARDS` count file is written once, tmp + rename, through
    /// the same seam; a mismatch against an existing file is refused.
    pub fn open_with_io(
        dir: &Path,
        shards: u32,
        config: StoreConfig,
        io: Arc<dyn StoreIo>,
    ) -> Result<Self, StoreError> {
        let shards = shards.max(1);
        io.create_dir_all(dir)?;
        let meta_path = dir.join(SHARDS_FILE);
        let on_disk = match io.read_all(&meta_path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).trim().parse::<u32>().ok(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let count = match on_disk {
            Some(n) if n == shards => n,
            Some(n) => {
                return Err(StoreError::ShardMismatch {
                    dir: dir.to_path_buf(),
                    on_disk: n,
                    requested: shards,
                })
            }
            None => {
                // First open: record the count durably before any shard
                // exists, tmp + rename so a crash never leaves a torn
                // count that would mis-route every future run.
                let tmp = dir.join("SHARDS.tmp");
                match io.remove_file(&tmp) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                let mut file = io.create_new(&tmp)?;
                file.write_all(format!("{shards}\n").as_bytes())?;
                file.flush()?;
                file.sync_all()?;
                drop(file);
                io.rename(&tmp, &meta_path)?;
                shards
            }
        };
        let mut stores = Vec::with_capacity(count as usize);
        let mut next_run_id = 1u64;
        for k in 0..count {
            let store =
                ProfileStore::open_with_io(&dir.join(shard_dir_name(k)), config, Arc::clone(&io))?;
            next_run_id = next_run_id.max(store.next_run_id());
            stores.push(Mutex::new(store));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            shards: stores,
            next_run_id: AtomicU64::new(next_run_id),
        })
    }

    /// The repository root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (fixed at creation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a run with this identity routes to. Total and stable:
    /// a pure function of (benchmark, run id, shard count), identical
    /// across reopens and processes.
    pub fn route(benchmark: &str, run_id: u64, shards: usize) -> usize {
        let hash = if benchmark.is_empty() {
            fnv1a(&run_id.to_le_bytes())
        } else {
            fnv1a(benchmark.as_bytes())
        };
        (hash % shards.max(1) as u64) as usize
    }

    fn shard(&self, k: usize) -> MutexGuard<'_, ProfileStore> {
        self.shards[k].lock().expect("shard lock")
    }

    /// Append one run; takes `&self` — the id counter is atomic and
    /// only the routed shard locks, so distinct benchmarks ingest in
    /// parallel.
    pub fn ingest(
        &self,
        benchmark: &str,
        threads: u32,
        timestamp_ns: u64,
        profile: &Profile,
    ) -> Result<IngestReceipt, StoreError> {
        let run_id = self.next_run_id.fetch_add(1, Ordering::SeqCst);
        let k = Self::route(benchmark, run_id, self.shards.len());
        self.shard(k)
            .ingest_with_id(run_id, benchmark, threads, timestamp_ns, profile)
    }

    /// The id the next ingest will assign.
    pub fn next_run_id(&self) -> u64 {
        self.next_run_id.load(Ordering::SeqCst)
    }

    /// Highest run id indexed across all shards (the replication
    /// cursor; see [`ProfileStore::max_run_id`]).
    pub fn max_run_id(&self) -> u64 {
        (0..self.shards.len())
            .map(|k| self.shard(k).max_run_id())
            .max()
            .unwrap_or(0)
    }

    /// Runs stored across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|k| self.shard(k).len()).sum()
    }

    /// True when no shard stores a run.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load one run by id (routed when the id's shard is unknown: every
    /// shard is probed, cheapest first by index search).
    pub fn load(&self, run_id: u64) -> Result<(RunMeta, Profile), StoreError> {
        for k in 0..self.shards.len() {
            match self.shard(k).load(run_id) {
                Err(StoreError::NotFound(_)) => continue,
                other => return other,
            }
        }
        Err(StoreError::NotFound(run_id))
    }

    /// Every distinct (benchmark, threads) group with its run count,
    /// summed across shards.
    pub fn groups(&self) -> BTreeMap<(String, u32), u64> {
        let mut out = BTreeMap::new();
        for k in 0..self.shards.len() {
            for (key, runs) in self.shard(k).groups() {
                *out.entry(key).or_insert(0) += runs;
            }
        }
        out
    }

    /// Aggregated shape/health summary (`compacted_through` reports the
    /// minimum over shards — the conservative "everything at least this
    /// far" view).
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        let mut compacted = u64::MAX;
        for s in self.per_shard_stats() {
            out.segments += s.segments;
            out.runs += s.runs;
            out.bytes += s.bytes;
            out.recovered_tail_bytes += s.recovered_tail_bytes;
            compacted = compacted.min(s.compacted_through);
        }
        out.compacted_through = if compacted == u64::MAX { 0 } else { compacted };
        out
    }

    /// Each shard's own summary, in shard order (the per-shard gauges).
    pub fn per_shard_stats(&self) -> Vec<StoreStats> {
        (0..self.shards.len())
            .map(|k| self.shard(k).stats())
            .collect()
    }

    /// Fold closed segments into every shard's aggregate cache; returns
    /// the total newly folded runs.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut folded = 0;
        for k in 0..self.shards.len() {
            folded += self.shard(k).compact()?;
        }
        Ok(folded)
    }

    /// Run the retention sweep on every shard. Groups are shard-local,
    /// so per-group `keep_last` semantics are global for any run with a
    /// benchmark name (the group lives wholly in one shard).
    pub fn gc(&self, policy: &RetentionPolicy) -> Result<GcReport, StoreError> {
        let mut report = GcReport::default();
        for k in 0..self.shards.len() {
            report.absorb(self.shard(k).gc(policy)?);
        }
        Ok(report)
    }

    /// Windowed entries of one group in *global* ingest order (run id),
    /// tagged with their shard. The window's `last` tail applies after
    /// the cross-shard sort, matching the single-store semantics.
    fn window_entries(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
    ) -> Vec<(usize, IndexEntry)> {
        let mut all: Vec<(usize, IndexEntry)> = Vec::new();
        for k in 0..self.shards.len() {
            let store = self.shard(k);
            for e in store.index() {
                if e.benchmark == benchmark
                    && e.threads == threads
                    && window.since_ns.is_none_or(|s| e.timestamp_ns >= s)
                {
                    all.push((k, e.clone()));
                }
            }
        }
        all.sort_by_key(|(_, e)| e.run_id);
        if let Some(last) = window.last {
            let keep = last.min(all.len() as u64) as usize;
            all.drain(..all.len() - keep);
        }
        all
    }

    /// Stream shard-tagged entries in (timestamp, run id) order through
    /// the k-way merge — one per-shard cursor each, one decoded profile
    /// at a time, exactly the single-store streaming discipline.
    fn stream_entries(
        &self,
        entries: Vec<(usize, IndexEntry)>,
        mut f: impl FnMut(&RunMeta, &Profile),
    ) -> Result<(), StoreError> {
        let mut per_shard: BTreeMap<usize, Vec<(usize, IndexEntry)>> = BTreeMap::new();
        for item in entries {
            per_shard.entry(item.0).or_default().push(item);
        }
        let sources: Vec<std::vec::IntoIter<(usize, IndexEntry)>> = per_shard
            .into_values()
            .map(|mut v| {
                v.sort_by_key(|(_, e)| (e.timestamp_ns, e.run_id));
                v.into_iter()
            })
            .collect();
        let merged = KWayMerge::new(sources, |(_, e)| (e.timestamp_ns, e.run_id));
        for (k, entry) in merged {
            let (meta, profile) = self.shard(k).load(entry.run_id)?;
            f(&meta, &profile);
        }
        Ok(())
    }

    /// Cross-run aggregate of a windowed group. A named benchmark lives
    /// wholly in its routed shard, so the query delegates there (and
    /// benefits from that shard's compaction cache); the empty-name
    /// group is spread by run-id hash and takes the k-way fan-in.
    pub fn aggregate_window(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
    ) -> Result<BenchAgg, StoreError> {
        if !benchmark.is_empty() {
            let k = Self::route(benchmark, 0, self.shards.len());
            return self.shard(k).aggregate_window(benchmark, threads, window);
        }
        let entries = self.window_entries(benchmark, threads, window);
        let mut agg = BenchAgg::default();
        self.stream_entries(entries, |_, profile| agg.fold(profile))?;
        Ok(agg)
    }

    /// Trend buckets over a windowed group — same delegation rule as
    /// [`ShardedStore::aggregate_window`].
    pub fn trend(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
        buckets: usize,
    ) -> Result<Vec<TrendBucket>, StoreError> {
        if !benchmark.is_empty() {
            let k = Self::route(benchmark, 0, self.shards.len());
            return self.shard(k).trend(benchmark, threads, window, buckets);
        }
        let entries = self.window_entries(benchmark, threads, window);
        if entries.is_empty() || buckets == 0 {
            return Ok(Vec::new());
        }
        let buckets = buckets.min(entries.len());
        let base = entries.len() / buckets;
        let extra = entries.len() % buckets;
        let mut out = Vec::with_capacity(buckets);
        let mut start = 0;
        for i in 0..buckets {
            let len = base + usize::from(i < extra);
            let span = entries[start..start + len].to_vec();
            start += len;
            let mut bucket = TrendBucket {
                min_ns: u64::MAX,
                first_timestamp_ns: span.first().map(|(_, e)| e.timestamp_ns).unwrap_or(0),
                last_timestamp_ns: span.last().map(|(_, e)| e.timestamp_ns).unwrap_or(0),
                ..TrendBucket::default()
            };
            self.stream_entries(span, |_, profile| {
                let total = crate::agg::RunSummary::from_profile(profile).total_ns;
                bucket.runs += 1;
                bucket.sum_ns += total;
                bucket.min_ns = bucket.min_ns.min(total);
                bucket.max_ns = bucket.max_ns.max(total);
            })?;
            if bucket.runs == 0 {
                bucket.min_ns = 0;
            }
            out.push(bucket);
        }
        Ok(out)
    }

    /// One page of the replication stream in global ascending run-id
    /// order: per-shard pages (each already ascending) interleaved by
    /// the k-way merge, truncated to `max`.
    pub fn export_frames(&self, after: u64, max: usize) -> Result<ExportBatch, StoreError> {
        let mut pages: Vec<std::vec::IntoIter<(u64, Vec<u8>)>> = Vec::new();
        let mut all_done = true;
        for k in 0..self.shards.len() {
            let batch = self.shard(k).export_frames(after, max)?;
            all_done &= batch.done;
            let mut page = Vec::with_capacity(batch.frames.len());
            for frame in batch.frames {
                let payload = &frame[4..frame.len() - 4];
                let meta = decode_meta(payload).map_err(|e| StoreError::BadFrame {
                    detail: format!("undecodable exported record: {e}"),
                })?;
                page.push((meta.run_id, frame));
            }
            pages.push(page.into_iter());
        }
        let merged: Vec<(u64, Vec<u8>)> = KWayMerge::new(pages, |(id, _)| (*id, 0)).collect();
        let done = all_done && merged.len() <= max;
        let mut batch = ExportBatch {
            frames: Vec::new(),
            watermark: after,
            done,
        };
        for (id, frame) in merged.into_iter().take(max) {
            batch.watermark = id;
            batch.frames.push(frame);
        }
        Ok(batch)
    }

    /// Apply one replicated frame, routing it to the shard its identity
    /// selects. Exactly-once across the whole repository: a frame at or
    /// below the global [`ShardedStore::max_run_id`] is skipped.
    pub fn apply_frame(&self, frame: &[u8]) -> Result<Option<IngestReceipt>, StoreError> {
        let header = RECORD_HEADER_BYTES as usize;
        if frame.len() < header {
            return Err(StoreError::BadFrame {
                detail: format!("{} bytes is shorter than the frame header", frame.len()),
            });
        }
        let meta = decode_meta(&frame[4..frame.len() - 4]).map_err(|e| StoreError::BadFrame {
            detail: format!("undecodable record: {e}"),
        })?;
        if meta.run_id <= self.max_run_id() {
            return Ok(None);
        }
        let k = Self::route(&meta.benchmark, meta.run_id, self.shards.len());
        let receipt = self.shard(k).apply_frame(frame)?;
        self.next_run_id
            .fetch_max(meta.run_id + 1, Ordering::SeqCst);
        Ok(receipt)
    }

    /// Sum of torn-tail bytes recovered by the last open, over shards.
    pub fn recovered_tail_bytes(&self) -> u64 {
        (0..self.shards.len())
            .map(|k| self.shard(k).recovered_tail_bytes())
            .sum()
    }
}

fn shard_dir_name(k: u32) -> String {
    format!("shard-{k:03}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind, TaskIdAllocator};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profstore-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn profile(tag: &str, task_ns: u64) -> Profile {
        let reg = registry();
        let par = reg.register(&format!("{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(task_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        team.finish()
    }

    #[test]
    fn routing_is_total_and_ids_are_globally_unique() {
        let dir = tmpdir("route");
        let store = ShardedStore::open(&dir, 4).expect("open");
        let p = profile("shard-route", 10);
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..20u64 {
            let bench = format!("bench-{}", i % 5);
            let r = store.ingest(&bench, 2, i, &p).expect("ingest");
            assert!(ids.insert(r.run_id), "duplicate id {}", r.run_id);
        }
        assert_eq!(store.len(), 20);
        // Reopen sees everything and resumes past the highest id.
        let next = store.next_run_id();
        drop(store);
        let store = ShardedStore::open(&dir, 4).expect("reopen");
        assert_eq!(store.len(), 20);
        assert!(store.next_run_id() >= next - 1);
        let r = store.ingest("bench-0", 2, 99, &p).expect("ingest");
        assert!(ids.insert(r.run_id), "reopen reused id {}", r.run_id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_is_fixed_at_creation() {
        let dir = tmpdir("fixed");
        let store = ShardedStore::open(&dir, 3).expect("open");
        drop(store);
        match ShardedStore::open(&dir, 5) {
            Err(StoreError::ShardMismatch {
                on_disk, requested, ..
            }) => {
                assert_eq!(on_disk, 3);
                assert_eq!(requested, 5);
            }
            other => panic!("expected ShardMismatch, got {other:?}"),
        }
        ShardedStore::open(&dir, 3).expect("matching count reopens");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fan_in_matches_single_store_aggregation() {
        let dir = tmpdir("fanin");
        let single_dir = tmpdir("fanin-single");
        let sharded = ShardedStore::open(&dir, 4).expect("open sharded");
        let mut single = ProfileStore::open(&single_dir).expect("open single");
        for i in 0..12u64 {
            let p = profile("shard-fanin", 100 + i);
            sharded
                .ingest("fib", 2, 10 + i, &p)
                .expect("sharded ingest");
            single.ingest("fib", 2, 10 + i, &p).expect("single ingest");
        }
        let a = sharded
            .aggregate_window("fib", 2, &RunWindow::default())
            .expect("sharded agg");
        let b = single
            .aggregate_window("fib", 2, &RunWindow::default())
            .expect("single agg");
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.merged_main, b.merged_main);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&single_dir);
    }

    #[test]
    fn export_apply_replicates_byte_identically() {
        let leader_dir = tmpdir("exp-leader");
        let follower_dir = tmpdir("exp-follower");
        let leader = ShardedStore::open(&leader_dir, 3).expect("leader");
        let follower = ShardedStore::open(&follower_dir, 2).expect("follower");
        for i in 0..9u64 {
            let p = profile("shard-exp", 50 + i);
            leader
                .ingest(&format!("bench-{}", i % 3), 2, i, &p)
                .expect("ingest");
        }
        let mut cursor = follower.max_run_id();
        loop {
            let batch = leader.export_frames(cursor, 4).expect("export");
            for frame in &batch.frames {
                follower.apply_frame(frame).expect("apply");
            }
            cursor = batch.watermark;
            if batch.done {
                break;
            }
        }
        assert_eq!(follower.len(), leader.len());
        assert_eq!(follower.max_run_id(), leader.max_run_id());
        // Re-applying the whole stream is a no-op (exactly-once).
        let batch = leader.export_frames(0, 100).expect("re-export");
        for frame in &batch.frames {
            assert!(follower.apply_frame(frame).expect("re-apply").is_none());
        }
        assert_eq!(follower.len(), leader.len());
        // Every run round-trips byte-identically.
        for (_, e) in leader.window_entries("bench-0", 2, &RunWindow::default()) {
            let (lm, lp) = leader.load(e.run_id).expect("leader load");
            let (fm, fp) = follower.load(e.run_id).expect("follower load");
            assert_eq!(lm.benchmark, fm.benchmark);
            assert_eq!(lm.timestamp_ns, fm.timestamp_ns);
            assert_eq!(lp.threads[0].main, fp.threads[0].main);
        }
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn gc_respects_cutoff_across_shards() {
        let dir = tmpdir("gc");
        let store = ShardedStore::open_with(
            &dir,
            3,
            StoreConfig {
                segment_max_bytes: 400,
                sync_writes: false,
            },
        )
        .expect("open");
        for i in 0..12u64 {
            let p = profile("shard-gc", 10);
            store
                .ingest(&format!("bench-{}", i % 3), 2, 100 + i, &p)
                .expect("ingest");
        }
        let report = store
            .gc(&RetentionPolicy {
                keep_last: None,
                min_timestamp_ns: Some(106),
            })
            .expect("gc");
        assert_eq!(report.dropped_runs, 6);
        assert_eq!(store.len(), 6);
        for k in 0..3 {
            for e in store.shard(k).index() {
                assert!(e.timestamp_ns >= 106, "run newer than cutoff removed");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
