//! The injectable I/O seam (`StoreIo`) and its deterministic
//! fault-injection implementation (`FaultIo`).
//!
//! Every file operation the repository performs — segment creation,
//! frame appends, truncation, scans, positioned reads — goes through a
//! [`StoreIo`] handle. Production uses [`RealIo`], a plain passthrough to
//! `std::fs` (one virtual call per *file operation*, never per byte — the
//! repository's I/O is already microsecond-scale, so the seam is free in
//! practice). Tests swap in [`FaultIo`], which threads a splitmix64-seeded
//! [`FaultPlan`] through the same operations to deterministically inject:
//!
//! * **short writes** — a write persists only a seeded prefix of its
//!   bytes before failing (how a real `ENOSPC` or a crash mid-`write`
//!   manifests on disk);
//! * **`ENOSPC` / `EIO`** — a single operation fails with the matching
//!   `std::io::Error`, everything else proceeds;
//! * **crash-at-point** — mutating operation number *k* tears (seeded
//!   prefix persisted), and every later mutating operation fails, which
//!   models the process dying at exactly that point. Reopening the
//!   directory with [`RealIo`] then exercises the real recovery path
//!   against the exact bytes a crash would have left behind.
//!
//! Only *mutating* operations (`create_new`, `open_rw`, `write_all`,
//! `set_len`, `sync_*`) count as injection points: a crash during a read
//! changes nothing on disk, so such points would be no-ops by
//! construction. The plan is pure state + splitmix64, so a torture run is
//! byte-reproducible from its seed.

use simsched_free_splitmix::SplitMix64;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// `profstore` must stay dependency-light (it sits under the daemon), so
/// it carries its own splitmix64 rather than pulling in `simsched`. Same
/// constants, same sequence — a plan seed produces identical injections
/// whether replayed here or reasoned about from the scheduler crate.
mod simsched_free_splitmix {
    /// Minimal splitmix64 (see `simsched::SplitMix64` for the canonical
    /// documented copy).
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Generator seeded with `seed`.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// An open, writable store file behind the seam.
pub trait StoreFile: Send + Sync {
    /// Write the whole buffer (or fail, possibly after a short write).
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Flush userspace buffers to the OS.
    fn flush(&mut self) -> std::io::Result<()>;
    /// `fdatasync`.
    fn sync_data(&mut self) -> std::io::Result<()>;
    /// `fsync`.
    fn sync_all(&mut self) -> std::io::Result<()>;
    /// Truncate (or extend) to `len` bytes.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
    /// Position the write cursor at absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> std::io::Result<()>;
}

/// The repository's view of a filesystem. One implementor per world:
/// [`RealIo`] (production) and [`FaultIo`] (deterministic fault
/// injection).
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Create a fresh file for writing; fails if it exists.
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>>;
    /// Open an existing file for read+write (the recovery path).
    fn open_rw(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>>;
    /// Read a whole file.
    fn read_all(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Read up to `len` bytes at `offset` (short at EOF).
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>>;
    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> std::io::Result<u64>;
    /// File names (not paths) inside a directory.
    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;
    /// Atomically rename `from` over `to` (the GC rewrite commit point).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Unlink a file (reclaiming a fully-dead segment).
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
}

// ---------------------------------------------------------------------
// Production passthrough
// ---------------------------------------------------------------------

/// The production implementation: a zero-overhead passthrough to
/// `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// A shareable handle (what [`crate::ProfileStore::open`] uses).
    pub fn handle() -> Arc<dyn StoreIo> {
        Arc::new(RealIo)
    }
}

struct RealFile(File);

impl StoreFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.0.write_all(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&mut self) -> std::io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> std::io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl StoreIo for RealIo {
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_rw(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn read_all(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut out = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match file.read(&mut out[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        out.truncate(filled);
        Ok(out)
    }

    fn file_len(&self, path: &Path) -> std::io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        Ok(std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/// Which error a planned fault raises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` — the disk is full.
    Enospc,
    /// `EIO` — the device failed.
    Eio,
}

impl FaultKind {
    fn to_error(self) -> std::io::Error {
        match self {
            // Raw OS codes so the error round-trips `raw_os_error()` the
            // same way a real kernel failure would (Linux values).
            FaultKind::Enospc => std::io::Error::from_raw_os_error(28),
            FaultKind::Eio => std::io::Error::from_raw_os_error(5),
        }
    }
}

/// True when an I/O error is (real or injected) `ENOSPC`.
pub fn is_enospc(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.kind() == std::io::ErrorKind::StorageFull
}

/// What a [`FaultIo`] does with the stream of mutating operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Inject nothing; just count operations (for discovering how many
    /// injection points a workload has).
    Observe,
    /// Mutating operation number `point` (0-based) fails with `kind`;
    /// a write persists a seeded prefix first (short write). Every other
    /// operation succeeds.
    FailOp {
        /// 0-based mutating-operation index to fail.
        point: u64,
        /// The error to raise.
        kind: FaultKind,
    },
    /// Mutating operation number `point` tears (a write persists a
    /// seeded prefix, other mutations do nothing) and *every* mutating
    /// operation from then on fails: the process "died" at that point.
    CrashAt {
        /// 0-based mutating-operation index the crash lands on.
        point: u64,
    },
}

/// A deterministic fault plan: a seed plus a mode. The seed only decides
/// *how much* of a torn write survives; *where* faults land is the
/// explicit `point`, so a torture loop can visit every point in order.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for the short-write prefix choice.
    pub seed: u64,
    /// The injection mode.
    pub mode: FaultMode,
}

impl FaultPlan {
    /// Count operations, inject nothing.
    pub fn observe() -> Self {
        Self {
            seed: 0,
            mode: FaultMode::Observe,
        }
    }

    /// Crash at mutating operation `point`, tearing prefixes by `seed`.
    pub fn crash_at(seed: u64, point: u64) -> Self {
        Self {
            seed,
            mode: FaultMode::CrashAt { point },
        }
    }

    /// Fail exactly mutating operation `point` with `kind`.
    pub fn fail_at(seed: u64, point: u64, kind: FaultKind) -> Self {
        Self {
            seed,
            mode: FaultMode::FailOp { point, kind },
        }
    }
}

#[derive(Debug)]
struct FaultState {
    plan: Mutex<FaultPlan>,
    ops: AtomicU64,
    crashed: AtomicBool,
    /// Armed error: every mutating op fails with it until disarmed.
    armed: Mutex<Option<FaultKind>>,
}

/// Shared control handle for a [`FaultIo`]: observe the operation count,
/// re-plan between phases, or arm a standing error (e.g. "the disk is
/// full from now on") mid-run.
#[derive(Clone, Debug)]
pub struct FaultHandle {
    state: Arc<FaultState>,
}

impl FaultHandle {
    /// Mutating operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// True once a planned crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Replace the plan (op counter keeps running).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.state.plan.lock().expect("fault plan lock") = plan;
    }

    /// From now on every mutating operation fails with `kind` (writes
    /// still tear a seeded prefix first). Models a persistently full or
    /// broken disk.
    pub fn arm(&self, kind: FaultKind) {
        *self.state.armed.lock().expect("fault arm lock") = Some(kind);
    }

    /// Stop injecting the standing error (the disk "recovered").
    pub fn disarm(&self) {
        *self.state.armed.lock().expect("fault arm lock") = None;
    }
}

/// What the state machine decided for one mutating operation.
enum Verdict {
    Proceed,
    /// Tear: persist `prefix` bytes of a write (0 for non-writes), then
    /// fail with the error.
    Tear(usize, std::io::Error),
}

impl FaultState {
    /// Deterministic prefix length for the torn write at `op`.
    fn torn_prefix(&self, seed: u64, op: u64, buf_len: usize) -> usize {
        let mut rng = SplitMix64::new(seed ^ op.wrapping_mul(0x9E37_79B9));
        (rng.next_u64() % (buf_len as u64 + 1)) as usize
    }

    /// Account one mutating operation of `buf_len` payload bytes and
    /// decide its fate.
    fn mutate(&self, buf_len: usize) -> Verdict {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Verdict::Tear(
                0,
                std::io::Error::other("simulated crash: process already dead"),
            );
        }
        if let Some(kind) = *self.armed.lock().expect("fault arm lock") {
            let plan = *self.plan.lock().expect("fault plan lock");
            return Verdict::Tear(self.torn_prefix(plan.seed, op, buf_len), kind.to_error());
        }
        let plan = *self.plan.lock().expect("fault plan lock");
        match plan.mode {
            FaultMode::Observe => Verdict::Proceed,
            FaultMode::FailOp { point, kind } if op == point => {
                Verdict::Tear(self.torn_prefix(plan.seed, op, buf_len), kind.to_error())
            }
            FaultMode::FailOp { .. } => Verdict::Proceed,
            FaultMode::CrashAt { point } if op >= point => {
                self.crashed.store(true, Ordering::SeqCst);
                let prefix = if op == point {
                    self.torn_prefix(plan.seed, op, buf_len)
                } else {
                    0
                };
                Verdict::Tear(prefix, std::io::Error::other("simulated crash"))
            }
            FaultMode::CrashAt { .. } => Verdict::Proceed,
        }
    }
}

/// A [`StoreIo`] that forwards to the real filesystem but injects the
/// faults its [`FaultPlan`] dictates. Create one with [`FaultIo::with_plan`],
/// keep the [`FaultHandle`] to steer it.
#[derive(Debug)]
pub struct FaultIo {
    state: Arc<FaultState>,
}

impl FaultIo {
    /// A fault-injecting I/O handle plus its control handle.
    pub fn with_plan(plan: FaultPlan) -> (Arc<dyn StoreIo>, FaultHandle) {
        let state = Arc::new(FaultState {
            plan: Mutex::new(plan),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            armed: Mutex::new(None),
        });
        let handle = FaultHandle {
            state: Arc::clone(&state),
        };
        (Arc::new(FaultIo { state }), handle)
    }
}

struct FaultFile {
    inner: File,
    state: Arc<FaultState>,
}

impl FaultFile {
    fn gate(&mut self, buf: Option<&[u8]>) -> std::io::Result<()> {
        match self.state.mutate(buf.map_or(0, <[u8]>::len)) {
            Verdict::Proceed => {
                if let Some(buf) = buf {
                    self.inner.write_all(buf)?;
                }
                Ok(())
            }
            Verdict::Tear(prefix, err) => {
                if let Some(buf) = buf {
                    // The torn part really lands on disk: recovery later
                    // sees exactly what a crashed writer left behind.
                    let _ = self.inner.write_all(&buf[..prefix]);
                    let _ = self.inner.flush();
                }
                Err(err)
            }
        }
    }
}

impl StoreFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.gate(Some(buf))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Flush is a userspace no-op for `File`; not an injection point.
        self.inner.flush()
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        self.gate(None)?;
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> std::io::Result<()> {
        self.gate(None)?;
        self.inner.sync_all()
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.gate(None)?;
        self.inner.set_len(len)
    }

    fn seek_to(&mut self, pos: u64) -> std::io::Result<()> {
        // Pure cursor motion: nothing durable changes, not a point.
        self.inner.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl StoreIo for FaultIo {
    fn create_new(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>> {
        match self.state.mutate(0) {
            Verdict::Proceed => {}
            Verdict::Tear(_, err) => return Err(err),
        }
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(FaultFile {
            inner: file,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_rw(&self, path: &Path) -> std::io::Result<Box<dyn StoreFile>> {
        match self.state.mutate(0) {
            Verdict::Proceed => {}
            Verdict::Tear(_, err) => return Err(err),
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(FaultFile {
            inner: file,
            state: Arc::clone(&self.state),
        }))
    }

    fn read_all(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        RealIo.read_all(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        RealIo.read_range(path, offset, len)
    }

    fn file_len(&self, path: &Path) -> std::io::Result<u64> {
        RealIo.file_len(path)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        RealIo.list_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        // Directory creation is idempotent setup, not a torture point.
        RealIo.create_dir_all(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        // A crash before rename(2) returns leaves the old name intact:
        // the fault models that by failing without touching either path.
        match self.state.mutate(0) {
            Verdict::Proceed => {}
            Verdict::Tear(_, err) => return Err(err),
        }
        RealIo.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        // Same model: a crash before unlink(2) leaves the file behind.
        match self.state.mutate(0) {
            Verdict::Proceed => {}
            Verdict::Tear(_, err) => return Err(err),
        }
        RealIo.remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profstore-io-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("f.bin")
    }

    #[test]
    fn real_io_round_trips() {
        let path = tmpfile("real");
        let io = RealIo;
        let mut f = io.create_new(&path).expect("create");
        f.write_all(b"hello world").expect("write");
        f.flush().expect("flush");
        drop(f);
        assert_eq!(io.read_all(&path).expect("read"), b"hello world");
        assert_eq!(io.read_range(&path, 6, 5).expect("range"), b"world");
        assert_eq!(io.read_range(&path, 6, 64).expect("short"), b"world");
        assert_eq!(io.file_len(&path).expect("len"), 11);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn crash_point_tears_deterministically() {
        let run = |seed| {
            let path = tmpfile(&format!("crash-{seed}"));
            // Point 1 is the second mutating op: the first write succeeds,
            // the second tears.
            let (io, handle) = FaultIo::with_plan(FaultPlan::crash_at(seed, 1));
            let mut f = io.create_new(&path).expect("create is op 0... no wait");
            // create_new consumed op 0, so the first write is op 1: torn.
            let err = f.write_all(b"0123456789").expect_err("torn write");
            assert!(err.to_string().contains("simulated crash"));
            assert!(handle.crashed());
            // Everything after the crash fails without touching disk.
            assert!(f.write_all(b"more").is_err());
            assert!(f.set_len(0).is_err());
            drop(f);
            let bytes = RealIo.read_all(&path).expect("read");
            assert!(bytes.len() < 10, "torn prefix, got {} bytes", bytes.len());
            let out = bytes.clone();
            let _ = std::fs::remove_dir_all(path.parent().unwrap());
            out
        };
        // Same seed, same torn bytes; different seed may differ.
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn fail_op_is_single_shot_and_typed() {
        let path = tmpfile("enospc");
        let (io, handle) = FaultIo::with_plan(FaultPlan::fail_at(3, 1, FaultKind::Enospc));
        let mut f = io.create_new(&path).expect("create (op 0)");
        let err = f.write_all(b"doomed").expect_err("op 1 fails");
        assert!(is_enospc(&err), "{err}");
        assert!(!handle.crashed());
        // Single shot: the next op proceeds.
        f.set_len(0).expect("op 2 proceeds");
        f.seek_to(0).expect("seek is not gated");
        f.write_all(b"fine").expect("op 3 proceeds");
        drop(f);
        assert_eq!(RealIo.read_all(&path).expect("read"), b"fine");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn armed_error_persists_until_disarmed() {
        let path = tmpfile("armed");
        let (io, handle) = FaultIo::with_plan(FaultPlan::observe());
        let mut f = io.create_new(&path).expect("create");
        f.write_all(b"before").expect("write");
        handle.arm(FaultKind::Eio);
        assert!(f.write_all(b"x").is_err());
        assert!(f.write_all(b"y").is_err());
        handle.disarm();
        f.set_len(6).expect("recovers");
        assert!(handle.ops() >= 4);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
