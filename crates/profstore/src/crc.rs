//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Vendored-only policy: no external crc crate, so the tables are
//! computed once at first use. The reflected algorithm matches zlib's
//! `crc32()`, pinned by the known test vector for `"123456789"`.
//!
//! The hot loop is slicing-by-8: eight table lookups fold eight input
//! bytes per iteration, which matters because every store append and
//! every TPF1 wire frame is checksummed on both ends — byte-at-a-time
//! CRC was a measurable slice of batched ingest.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            t[0][i as usize] = c;
        }
        // t[k][i] = crc of byte i followed by k zero bytes: lets the
        // main loop process 8 source bytes with 8 independent lookups.
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC-32 of `data` (zlib-compatible).
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(ch[4..8].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The straightforward reflected byte-at-a-time reference.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let t = tables();
        let mut c = !0u32;
        for &b in data {
            c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    #[test]
    fn known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_remainder_length() {
        // Lengths 0..64 cover every chunks_exact remainder; the pattern
        // avoids periodicity that could mask a wrong table index.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(167) ^ (i >> 3)) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "divergence at len {len}"
            );
        }
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"taskprof profile record");
        let mut data = b"taskprof profile record".to_vec();
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
