//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Vendored-only policy: no external crc crate, so the 256-entry table is
//! computed once at first use. The reflected algorithm matches zlib's
//! `crc32()`, pinned by the known test vector for `"123456789"`.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (zlib-compatible).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"taskprof profile record");
        let mut data = b"taskprof profile record".to_vec();
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
