//! The profile repository: segments + index + recovery + compaction.

use crate::agg::BenchAgg;
use crate::codec::{decode_meta, decode_record, encode_record, CodecError, RunMeta};
use crate::io::{RealIo, StoreIo};
use crate::merge::KWayMerge;
use crate::segment::{SegmentReader, SegmentWriter, RECORD_HEADER_BYTES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use taskprof::Profile;

/// Repository tunables.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Rotate the active segment once it would exceed this many bytes
    /// (the segment a record lands in may exceed it by that one record).
    pub segment_max_bytes: u64,
    /// `fsync` after every append (durable against power loss, slower).
    /// Off, the store still flushes each full frame to the OS, which is
    /// durable against process crashes — the recovery tests' scenario.
    pub sync_writes: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 4 << 20,
            sync_writes: false,
        }
    }
}

/// Anything the repository can fail with.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A fully-framed record failed to decode — real corruption (CRC
    /// passed, structure didn't), never a torn tail.
    Codec {
        /// Segment file name.
        segment: String,
        /// Frame offset within the segment.
        offset: u64,
        /// The decoder's complaint.
        source: CodecError,
    },
    /// A *closed* (non-final) segment has a bad tail; appends only ever
    /// went to the final segment, so this is damage, not a crash artifact.
    Corrupt {
        /// Segment file name.
        segment: String,
        /// What the scan found.
        detail: String,
    },
    /// No run with the requested id.
    NotFound(u64),
    /// Another `ProfileStore` (in this process or another) holds the
    /// directory's writer lock. The log is strictly single-writer: two
    /// independent writers on the same active segment would interleave
    /// frames at overlapping offsets and assign duplicate run ids.
    Locked {
        /// The contended repository directory.
        dir: PathBuf,
    },
    /// A sharded repository was opened with a shard count that differs
    /// from the one recorded on disk. Routing is a function of the
    /// count, so honoring the request would strand runs in shards the
    /// router no longer selects.
    ShardMismatch {
        /// The sharded repository root.
        dir: PathBuf,
        /// Shard count recorded in the `SHARDS` file.
        on_disk: u32,
        /// Shard count the open requested.
        requested: u32,
    },
    /// A replication frame failed its CRC or framing check before apply.
    BadFrame {
        /// What was wrong with the frame.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Codec {
                segment,
                offset,
                source,
            } => write!(f, "corrupt record in {segment} at offset {offset}: {source}"),
            StoreError::Corrupt { segment, detail } => {
                write!(f, "closed segment {segment} is corrupt: {detail}")
            }
            StoreError::NotFound(id) => write!(f, "run {id} not found"),
            StoreError::Locked { dir } => write!(
                f,
                "store directory {} is locked by another writer (close the other store or daemon first)",
                dir.display()
            ),
            StoreError::ShardMismatch {
                dir,
                on_disk,
                requested,
            } => write!(
                f,
                "sharded store {} holds {on_disk} shard(s) but {requested} were requested \
                 (the shard count is fixed at creation)",
                dir.display()
            ),
            StoreError::BadFrame { detail } => {
                write!(f, "replication frame rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One stored run, as the in-memory index sees it.
#[derive(Clone, Debug)]
pub struct IndexEntry {
    /// Store-assigned run id.
    pub run_id: u64,
    /// Benchmark name.
    pub benchmark: String,
    /// Thread count of the run.
    pub threads: u32,
    /// Caller-supplied timestamp.
    pub timestamp_ns: u64,
    /// Segment number the record lives in.
    pub segment: u64,
    /// Frame offset within that segment.
    pub offset: u64,
    /// Framed size on disk (payload + length + CRC words).
    pub bytes: u64,
}

/// Acknowledgement of one ingest.
#[derive(Clone, Copy, Debug)]
pub struct IngestReceipt {
    /// The id the store assigned.
    pub run_id: u64,
    /// Bytes appended (full frame).
    pub bytes: u64,
    /// Segment the record landed in.
    pub segment: u64,
}

/// Repository health/shape summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files on disk.
    pub segments: u64,
    /// Runs indexed.
    pub runs: u64,
    /// Total framed bytes across live records.
    pub bytes: u64,
    /// Bytes of torn tail truncated by the last [`ProfileStore::open`].
    pub recovered_tail_bytes: u64,
    /// Highest segment number folded into the compaction cache (0 =
    /// nothing compacted yet).
    pub compacted_through: u64,
}

/// A window over one (benchmark, threads) group's runs. Both members
/// compose: the timestamp filter applies first, then the ingest-order
/// tail. The default (`None`/`None`) keeps everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunWindow {
    /// Keep only the newest N matching runs (ingest-order tail).
    pub last: Option<u64>,
    /// Keep only runs whose caller timestamp is `>= since_ns`.
    pub since_ns: Option<u64>,
}

impl RunWindow {
    /// True when the window filters nothing.
    pub fn is_unbounded(&self) -> bool {
        self.last.is_none() && self.since_ns.is_none()
    }
}

/// One bucket of a [`ProfileStore::trend`] sweep: a span of consecutive
/// runs (ingest order) reduced to their run-total statistics — the
/// sparkline shape of a benchmark over time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrendBucket {
    /// Runs folded into this bucket.
    pub runs: u64,
    /// Sum of run totals (root inclusive nanoseconds).
    pub sum_ns: u64,
    /// Smallest run total in the bucket.
    pub min_ns: u64,
    /// Largest run total in the bucket.
    pub max_ns: u64,
    /// Caller timestamp of the bucket's first run.
    pub first_timestamp_ns: u64,
    /// Caller timestamp of the bucket's last run.
    pub last_timestamp_ns: u64,
}

impl TrendBucket {
    /// Mean run total over the bucket (0 while empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.runs).unwrap_or(0)
    }
}

/// One `EXPORT` page: raw CRC-framed record frames in ascending run-id
/// order, plus the cursor the follower acknowledges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExportBatch {
    /// Raw frames (`len:u32le | payload | crc32:u32le`), byte-identical
    /// to the leader's on-disk framing.
    pub frames: Vec<Vec<u8>>,
    /// Highest run id included (equal to the requested cursor when the
    /// batch is empty). The follower's next request resumes after it.
    pub watermark: u64,
    /// True when no runs beyond this batch remain.
    pub done: bool,
}

/// What the retention sweep keeps. Filters compose by union of their
/// drop sets: a run is garbage-collected when *any* configured filter
/// rejects it. The default keeps everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep only the newest N runs (ingest order) of each
    /// (benchmark, threads) group.
    pub keep_last: Option<u64>,
    /// Drop runs whose caller timestamp is older than this cutoff.
    /// Runs at or after the cutoff are never removed by this filter.
    pub min_timestamp_ns: Option<u64>,
}

impl RetentionPolicy {
    /// True when the policy filters nothing.
    pub fn is_noop(&self) -> bool {
        self.keep_last.is_none() && self.min_timestamp_ns.is_none()
    }
}

/// What one [`ProfileStore::gc`] sweep reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Runs removed from the index (and from disk).
    pub dropped_runs: u64,
    /// Disk bytes reclaimed (removed files plus rewrite shrinkage).
    pub reclaimed_bytes: u64,
    /// Closed segments rewritten in place (live frames carried over).
    pub rewritten_segments: u64,
    /// Closed segments unlinked outright (no live frames).
    pub removed_segments: u64,
}

impl GcReport {
    pub(crate) fn absorb(&mut self, other: GcReport) {
        self.dropped_runs += other.dropped_runs;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.rewritten_segments += other.rewritten_segments;
        self.removed_segments += other.removed_segments;
    }
}

/// Name of the advisory lock file guarding the directory against a
/// second concurrent writer.
const LOCK_FILE: &str = "LOCK";

fn segment_name(n: u64) -> String {
    format!("seg-{n:06}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// The durable multi-run repository. See the crate docs for the on-disk
/// layout and the durability contract.
pub struct ProfileStore {
    dir: PathBuf,
    config: StoreConfig,
    io: Arc<dyn StoreIo>,
    writer: SegmentWriter,
    active_segment: u64,
    index: Vec<IndexEntry>,
    next_run_id: u64,
    recovered_tail_bytes: u64,
    agg_cache: BTreeMap<(String, u32), BenchAgg>,
    compacted_through: u64,
    /// Held for the store's lifetime; the OS releases the advisory lock
    /// when the file closes, so a crash never leaves the directory stale.
    _lock: std::fs::File,
}

impl std::fmt::Debug for ProfileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileStore")
            .field("dir", &self.dir)
            .field("runs", &self.index.len())
            .field("active_segment", &self.active_segment)
            .field("compacted_through", &self.compacted_through)
            .finish_non_exhaustive()
    }
}

impl ProfileStore {
    /// Open (creating if needed) the repository at `dir` with default
    /// configuration.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// Open with explicit configuration. Recovery happens here: the final
    /// segment's torn tail (if any) is truncated; damage anywhere else is
    /// reported as an error rather than silently dropped.
    ///
    /// The open takes an exclusive advisory lock on a `LOCK` file in the
    /// directory and holds it for the store's lifetime; a second open of
    /// the same directory — from this process or another — fails with
    /// [`StoreError::Locked`] instead of corrupting the active segment.
    pub fn open_with(dir: &Path, config: StoreConfig) -> Result<Self, StoreError> {
        Self::open_with_io(dir, config, RealIo::handle())
    }

    /// Open with an explicit [`StoreIo`] implementation — the seam the
    /// fault-injection tests use ([`crate::FaultIo`]); production goes
    /// through [`ProfileStore::open_with`], which passes the passthrough
    /// [`RealIo`]. The advisory `LOCK` file stays on real `std::fs`
    /// either way: it is liveness metadata, not durable state, and a
    /// simulated crash must still release it the way a real process death
    /// would.
    pub fn open_with_io(
        dir: &Path,
        config: StoreConfig,
        io: Arc<dyn StoreIo>,
    ) -> Result<Self, StoreError> {
        io.create_dir_all(dir)?;
        let lock = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(LOCK_FILE))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked {
                    dir: dir.to_path_buf(),
                })
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(StoreError::Io(e)),
        }
        let names = io.list_dir(dir)?;
        for name in &names {
            if let Some(stem) = name.strip_suffix(".tmp") {
                if parse_segment_name(stem).is_some() {
                    // A GC rewrite died before its atomic rename. The
                    // half-written replacement is inert (recovery only
                    // reads `seg-*.log`) — reclaim the space.
                    let _ = io.remove_file(&dir.join(name));
                }
            }
        }
        let mut numbers: Vec<u64> = names
            .iter()
            .filter_map(|name| parse_segment_name(name))
            .collect();
        numbers.sort_unstable();

        let mut index = Vec::new();
        let mut next_run_id = 1;
        let mut recovered_tail_bytes = 0;
        for (i, &n) in numbers.iter().enumerate() {
            let is_last = i + 1 == numbers.len();
            let path = dir.join(segment_name(n));
            let scan = SegmentReader::scan(&*io, &path)?;
            if let Some(defect) = &scan.tail_defect {
                if !is_last {
                    return Err(StoreError::Corrupt {
                        segment: segment_name(n),
                        detail: defect.to_string(),
                    });
                }
                let file_len = io.file_len(&path)?;
                recovered_tail_bytes = file_len.saturating_sub(scan.valid_len);
            }
            for rec in &scan.records {
                let meta = decode_meta(&rec.payload).map_err(|source| StoreError::Codec {
                    segment: segment_name(n),
                    offset: rec.offset,
                    source,
                })?;
                next_run_id = next_run_id.max(meta.run_id + 1);
                index.push(IndexEntry {
                    run_id: meta.run_id,
                    benchmark: meta.benchmark,
                    threads: meta.threads,
                    timestamp_ns: meta.timestamp_ns,
                    segment: n,
                    offset: rec.offset,
                    bytes: rec.payload.len() as u64 + RECORD_HEADER_BYTES,
                });
            }
        }

        // A torn tail is one in-flight record whose id was already handed
        // out in an ingest receipt. Skip it so the id is never recycled:
        // external references to the lost run must not alias a new one.
        if recovered_tail_bytes > 0 {
            next_run_id += 1;
        }

        let (writer, active_segment) = match numbers.last() {
            Some(&last) => {
                let path = dir.join(segment_name(last));
                let scan = SegmentReader::scan(&*io, &path)?;
                (
                    SegmentWriter::recover(&*io, &path, scan.valid_len, config.sync_writes)?,
                    last,
                )
            }
            None => (
                SegmentWriter::create(&*io, &dir.join(segment_name(1)), config.sync_writes)?,
                1,
            ),
        };

        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            io,
            writer,
            active_segment,
            index,
            next_run_id,
            recovered_tail_bytes,
            agg_cache: BTreeMap::new(),
            compacted_through: 0,
            _lock: lock,
        })
    }

    /// The repository directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one run; assigns and returns the next run id.
    pub fn ingest(
        &mut self,
        benchmark: &str,
        threads: u32,
        timestamp_ns: u64,
        profile: &Profile,
    ) -> Result<IngestReceipt, StoreError> {
        self.ingest_with_id(self.next_run_id, benchmark, threads, timestamp_ns, profile)
    }

    /// Append one run under a caller-chosen id — the sharded store's
    /// path, where ids are allocated globally so shards never collide.
    /// Bumps the local id counter past `run_id` so a later plain
    /// [`ProfileStore::ingest`] cannot reuse it.
    pub fn ingest_with_id(
        &mut self,
        run_id: u64,
        benchmark: &str,
        threads: u32,
        timestamp_ns: u64,
        profile: &Profile,
    ) -> Result<IngestReceipt, StoreError> {
        let meta = RunMeta {
            run_id,
            benchmark: benchmark.to_string(),
            threads,
            timestamp_ns,
        };
        let payload = encode_record(&meta, profile);
        self.append_payload(&meta, &payload)
    }

    /// Append an already-encoded payload under `meta`'s identity,
    /// rotating the active segment as needed.
    fn append_payload(
        &mut self,
        meta: &RunMeta,
        payload: &[u8],
    ) -> Result<IngestReceipt, StoreError> {
        let frame_bytes = payload.len() as u64 + RECORD_HEADER_BYTES;
        if !self.writer.is_empty()
            && self.writer.len() + frame_bytes > self.config.segment_max_bytes
        {
            self.rotate()?;
        }
        let offset = self.writer.append(payload)?;
        self.next_run_id = self.next_run_id.max(meta.run_id + 1);
        self.index.push(IndexEntry {
            run_id: meta.run_id,
            benchmark: meta.benchmark.clone(),
            threads: meta.threads,
            timestamp_ns: meta.timestamp_ns,
            segment: self.active_segment,
            offset,
            bytes: frame_bytes,
        });
        Ok(IngestReceipt {
            run_id: meta.run_id,
            bytes: frame_bytes,
            segment: self.active_segment,
        })
    }

    /// The id the next [`ProfileStore::ingest`] will assign.
    pub fn next_run_id(&self) -> u64 {
        self.next_run_id
    }

    /// Highest run id currently indexed (0 when empty). This — not
    /// [`ProfileStore::next_run_id`] — is a follower's replication
    /// cursor: recovery from a torn tail bumps `next_run_id` past an id
    /// that never durably landed, and a cursor derived from it would
    /// silently skip the legitimate re-send of that frame.
    pub fn max_run_id(&self) -> u64 {
        self.index.iter().map(|e| e.run_id).max().unwrap_or(0)
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        let next = self.active_segment + 1;
        self.writer = SegmentWriter::create(
            &*self.io,
            &self.dir.join(segment_name(next)),
            self.config.sync_writes,
        )?;
        self.active_segment = next;
        Ok(())
    }

    /// The in-memory index, in ingest order.
    pub fn index(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no run is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Load one run by id.
    pub fn load(&self, run_id: u64) -> Result<(RunMeta, Profile), StoreError> {
        let entry = self
            .index
            .iter()
            .find(|e| e.run_id == run_id)
            .ok_or(StoreError::NotFound(run_id))?;
        self.load_entry(entry)
    }

    fn load_entry(&self, entry: &IndexEntry) -> Result<(RunMeta, Profile), StoreError> {
        let path = self.dir.join(segment_name(entry.segment));
        let payload = SegmentReader::read_at(&*self.io, &path, entry.offset)?.ok_or_else(|| {
            StoreError::Corrupt {
                segment: segment_name(entry.segment),
                detail: format!("indexed record at offset {} unreadable", entry.offset),
            }
        })?;
        decode_record(&payload).map_err(|source| StoreError::Codec {
            segment: segment_name(entry.segment),
            offset: entry.offset,
            source,
        })
    }

    /// Index entries of one (benchmark, threads) group, in ingest order.
    pub fn runs_for(&self, benchmark: &str, threads: u32) -> Vec<&IndexEntry> {
        self.index
            .iter()
            .filter(|e| e.benchmark == benchmark && e.threads == threads)
            .collect()
    }

    /// Every distinct (benchmark, threads) group with its run count.
    pub fn groups(&self) -> BTreeMap<(String, u32), u64> {
        let mut out = BTreeMap::new();
        for e in &self.index {
            *out.entry((e.benchmark.clone(), e.threads)).or_insert(0) += 1;
        }
        out
    }

    /// Stream every run of a set of entries in (timestamp, run id) order,
    /// one decoded profile at a time, applying `f` to each. This is the
    /// k-way path: entries are grouped per segment, each group sorted by
    /// key, and [`KWayMerge`] interleaves the groups; only one profile is
    /// ever decoded at once.
    fn stream_entries(
        &self,
        entries: &[&IndexEntry],
        mut f: impl FnMut(&RunMeta, &Profile),
    ) -> Result<(), StoreError> {
        let mut per_segment: BTreeMap<u64, Vec<&IndexEntry>> = BTreeMap::new();
        for e in entries {
            per_segment.entry(e.segment).or_default().push(e);
        }
        let sources: Vec<std::vec::IntoIter<&IndexEntry>> = per_segment
            .into_values()
            .map(|mut v| {
                v.sort_by_key(|e| (e.timestamp_ns, e.run_id));
                v.into_iter()
            })
            .collect();
        let merged = KWayMerge::new(sources, |e| (e.timestamp_ns, e.run_id));
        for entry in merged {
            let (meta, profile) = self.load_entry(entry)?;
            f(&meta, &profile);
        }
        Ok(())
    }

    /// Fold every record of every *closed* segment (all but the active
    /// one) into the per-benchmark aggregate cache. Returns how many runs
    /// were newly folded. Queries after this only decode the active
    /// segment's tail on demand.
    ///
    /// All-or-nothing: on a mid-stream I/O or decode error nothing is
    /// committed — the folding happens in a scratch copy of the cache, so
    /// a retry (the daemon's background compactor retries every interval)
    /// never folds the same run twice.
    pub fn compact(&mut self) -> Result<u64, StoreError> {
        let upto = self.active_segment.saturating_sub(1);
        if upto <= self.compacted_through {
            return Ok(0);
        }
        let entries: Vec<&IndexEntry> = self
            .index
            .iter()
            .filter(|e| e.segment > self.compacted_through && e.segment <= upto)
            .collect();
        let mut cache = self.agg_cache.clone();
        let folded = entries.len() as u64;
        self.stream_entries(&entries, |meta, profile| {
            cache
                .entry((meta.benchmark.clone(), meta.threads))
                .or_default()
                .fold(profile);
        })?;
        self.agg_cache = cache;
        self.compacted_through = upto;
        Ok(folded)
    }

    /// Cross-run aggregate of one (benchmark, threads) group: the
    /// compacted cache plus a streaming fold of any runs not yet
    /// compacted (the active segment, and closed segments if
    /// [`ProfileStore::compact`] has not run).
    pub fn aggregate(&self, benchmark: &str, threads: u32) -> Result<BenchAgg, StoreError> {
        let mut agg = self
            .agg_cache
            .get(&(benchmark.to_string(), threads))
            .cloned()
            .unwrap_or_default();
        let tail: Vec<&IndexEntry> = self
            .index
            .iter()
            .filter(|e| {
                e.segment > self.compacted_through
                    && e.benchmark == benchmark
                    && e.threads == threads
            })
            .collect();
        self.stream_entries(&tail, |_, profile| agg.fold(profile))?;
        Ok(agg)
    }

    /// Index entries of one group after applying `window`: the
    /// timestamp filter first, then the ingest-order tail of
    /// [`RunWindow::last`] runs. Ingest order, like
    /// [`ProfileStore::runs_for`].
    pub fn runs_in_window(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
    ) -> Vec<&IndexEntry> {
        let mut entries: Vec<&IndexEntry> = self
            .index
            .iter()
            .filter(|e| {
                e.benchmark == benchmark
                    && e.threads == threads
                    && window.since_ns.is_none_or(|s| e.timestamp_ns >= s)
            })
            .collect();
        if let Some(last) = window.last {
            let keep = last.min(entries.len() as u64) as usize;
            entries.drain(..entries.len() - keep);
        }
        entries
    }

    /// Cross-run aggregate of a windowed subset of one group. The
    /// compaction cache holds whole-history aggregates and cannot serve
    /// a window, so a bounded window always stream-folds the matching
    /// entries from disk; an unbounded one takes the cached
    /// [`ProfileStore::aggregate`] path.
    pub fn aggregate_window(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
    ) -> Result<BenchAgg, StoreError> {
        if window.is_unbounded() {
            return self.aggregate(benchmark, threads);
        }
        let entries = self.runs_in_window(benchmark, threads, window);
        let mut agg = BenchAgg::default();
        self.stream_entries(&entries, |_, profile| agg.fold(profile))?;
        Ok(agg)
    }

    /// Reduce a windowed group to at most `buckets` consecutive
    /// ingest-order spans of run-total statistics — the data behind a
    /// sparkline. Earlier buckets absorb the remainder when the run
    /// count does not divide evenly, so the newest bucket is never
    /// artificially small. Streams one decoded profile at a time.
    pub fn trend(
        &self,
        benchmark: &str,
        threads: u32,
        window: &RunWindow,
        buckets: usize,
    ) -> Result<Vec<TrendBucket>, StoreError> {
        let entries = self.runs_in_window(benchmark, threads, window);
        if entries.is_empty() || buckets == 0 {
            return Ok(Vec::new());
        }
        let buckets = buckets.min(entries.len());
        let base = entries.len() / buckets;
        let extra = entries.len() % buckets;
        // Bucket boundaries in ingest order; bucket i gets base runs,
        // the first `extra` buckets one more.
        let mut bounds = Vec::with_capacity(buckets);
        let mut start = 0;
        for i in 0..buckets {
            let len = base + usize::from(i < extra);
            bounds.push((start, start + len));
            start += len;
        }
        let mut out = vec![TrendBucket::default(); buckets];
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            let span = &entries[lo..hi];
            let bucket = &mut out[i];
            bucket.min_ns = u64::MAX;
            bucket.first_timestamp_ns = span.first().map(|e| e.timestamp_ns).unwrap_or(0);
            bucket.last_timestamp_ns = span.last().map(|e| e.timestamp_ns).unwrap_or(0);
            self.stream_entries(span, |_, profile| {
                let total = crate::agg::RunSummary::from_profile(profile).total_ns;
                bucket.runs += 1;
                bucket.sum_ns += total;
                bucket.min_ns = bucket.min_ns.min(total);
                bucket.max_ns = bucket.max_ns.max(total);
            })?;
            if bucket.runs == 0 {
                bucket.min_ns = 0;
            }
        }
        Ok(out)
    }

    /// Shape/health summary.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            segments: {
                let mut segs: Vec<u64> = self.index.iter().map(|e| e.segment).collect();
                segs.push(self.active_segment);
                segs.sort_unstable();
                segs.dedup();
                segs.len() as u64
            },
            runs: self.index.len() as u64,
            bytes: self.index.iter().map(|e| e.bytes).sum(),
            recovered_tail_bytes: self.recovered_tail_bytes,
            compacted_through: self.compacted_through,
        }
    }

    /// Bytes the last `open` truncated as a torn tail (0 for a clean
    /// open) — surfaced so operators can tell a crash happened.
    pub fn recovered_tail_bytes(&self) -> u64 {
        self.recovered_tail_bytes
    }

    /// One page of the replication stream: up to `max` raw CRC frames
    /// for runs with `run_id > after`, in ascending run-id order. The
    /// frames are byte-identical to the leader's on-disk framing, so a
    /// follower's [`ProfileStore::apply_frame`] re-verifies the same
    /// CRC the leader wrote.
    pub fn export_frames(&self, after: u64, max: usize) -> Result<ExportBatch, StoreError> {
        let mut entries: Vec<&IndexEntry> =
            self.index.iter().filter(|e| e.run_id > after).collect();
        entries.sort_by_key(|e| e.run_id);
        let done = entries.len() <= max;
        entries.truncate(max);
        let mut batch = ExportBatch {
            frames: Vec::with_capacity(entries.len()),
            watermark: after,
            done,
        };
        for entry in entries {
            let path = self.dir.join(segment_name(entry.segment));
            let payload =
                SegmentReader::read_at(&*self.io, &path, entry.offset)?.ok_or_else(|| {
                    StoreError::Corrupt {
                        segment: segment_name(entry.segment),
                        detail: format!("indexed record at offset {} unreadable", entry.offset),
                    }
                })?;
            let mut frame = Vec::with_capacity(payload.len() + RECORD_HEADER_BYTES as usize);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
            batch.frames.push(frame);
            batch.watermark = entry.run_id;
        }
        Ok(batch)
    }

    /// Apply one replicated frame, keeping the leader's run id.
    /// Exactly-once by construction: a frame whose id is already
    /// indexed — or at or below the highest indexed id, which an
    /// in-order stream implies was applied before a crash — is skipped
    /// with `Ok(None)`. The frame's CRC and structure are verified
    /// before anything touches disk.
    pub fn apply_frame(&mut self, frame: &[u8]) -> Result<Option<IngestReceipt>, StoreError> {
        let header = RECORD_HEADER_BYTES as usize;
        if frame.len() < header {
            return Err(StoreError::BadFrame {
                detail: format!("{} bytes is shorter than the frame header", frame.len()),
            });
        }
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        if frame.len() != len + header {
            return Err(StoreError::BadFrame {
                detail: format!(
                    "length word says {len} payload bytes but the frame carries {}",
                    frame.len().saturating_sub(header)
                ),
            });
        }
        let payload = &frame[4..4 + len];
        let stored_crc = u32::from_le_bytes(frame[4 + len..].try_into().expect("4 bytes"));
        if crate::crc::crc32(payload) != stored_crc {
            return Err(StoreError::BadFrame {
                detail: "crc mismatch".to_string(),
            });
        }
        let meta = decode_meta(payload).map_err(|e| StoreError::BadFrame {
            detail: format!("undecodable record: {e}"),
        })?;
        if meta.run_id <= self.max_run_id() {
            return Ok(None);
        }
        self.append_payload(&meta, payload).map(Some)
    }

    /// Garbage-collect runs the retention `policy` rejects, reclaiming
    /// their disk space. Fully-dead closed segments are unlinked; mixed
    /// segments are rewritten (live frames copied into a fresh file that
    /// atomically replaces the original via `rename`, the PR 6 VFS seam
    /// gating both steps). The active segment is rotated out first when
    /// it holds dead runs, so the live writer never races a rewrite.
    ///
    /// Crash-safe: a rewrite builds `seg-N.log.tmp`, which recovery
    /// ignores and the next open deletes; the index only switches to the
    /// new offsets after the rename commits. A crash at any point leaves
    /// either the old or the new file — never a mix.
    pub fn gc(&mut self, policy: &RetentionPolicy) -> Result<GcReport, StoreError> {
        if policy.is_noop() {
            return Ok(GcReport::default());
        }
        let mut dead: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        if let Some(cutoff) = policy.min_timestamp_ns {
            dead.extend(
                self.index
                    .iter()
                    .filter(|e| e.timestamp_ns < cutoff)
                    .map(|e| e.run_id),
            );
        }
        if let Some(keep) = policy.keep_last {
            let mut groups: BTreeMap<(&str, u32), Vec<u64>> = BTreeMap::new();
            for e in &self.index {
                groups
                    .entry((e.benchmark.as_str(), e.threads))
                    .or_default()
                    .push(e.run_id);
            }
            for ids in groups.values() {
                if ids.len() as u64 > keep {
                    dead.extend(&ids[..ids.len() - keep as usize]);
                }
            }
        }
        if dead.is_empty() {
            return Ok(GcReport::default());
        }
        if self
            .index
            .iter()
            .any(|e| e.segment == self.active_segment && dead.contains(&e.run_id))
        {
            self.rotate()?;
        }
        let segments: std::collections::BTreeSet<u64> = self
            .index
            .iter()
            .filter(|e| dead.contains(&e.run_id))
            .map(|e| e.segment)
            .collect();
        let mut report = GcReport::default();
        for seg in segments {
            let path = self.dir.join(segment_name(seg));
            // Indices of this segment's live entries, in offset order
            // (index order within a segment is append order).
            let live: Vec<usize> = self
                .index
                .iter()
                .enumerate()
                .filter(|(_, e)| e.segment == seg && !dead.contains(&e.run_id))
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                let old_len = self.io.file_len(&path)?;
                self.io.remove_file(&path)?;
                report.removed_segments += 1;
                report.reclaimed_bytes += old_len;
            } else {
                let tmp = self.dir.join(format!("{}.tmp", segment_name(seg)));
                match self.io.remove_file(&tmp) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                // Sync the rewrite regardless of the store's append
                // policy: the rename commit must never point at frames
                // still sitting in a volatile cache.
                let mut writer = SegmentWriter::create(&*self.io, &tmp, true)?;
                let mut new_offsets = Vec::with_capacity(live.len());
                for &i in &live {
                    let entry = &self.index[i];
                    let payload = SegmentReader::read_at(&*self.io, &path, entry.offset)?
                        .ok_or_else(|| StoreError::Corrupt {
                            segment: segment_name(seg),
                            detail: format!("indexed record at offset {} unreadable", entry.offset),
                        })?;
                    new_offsets.push(writer.append(&payload)?);
                }
                let old_len = self.io.file_len(&path)?;
                let new_len = writer.len();
                drop(writer);
                self.io.rename(&tmp, &path)?;
                for (&i, &offset) in live.iter().zip(&new_offsets) {
                    self.index[i].offset = offset;
                }
                report.rewritten_segments += 1;
                report.reclaimed_bytes += old_len.saturating_sub(new_len);
            }
            let before = self.index.len();
            self.index
                .retain(|e| e.segment != seg || !dead.contains(&e.run_id));
            report.dropped_runs += (before - self.index.len()) as u64;
        }
        // The aggregate cache may have folded now-dropped runs; rebuild
        // it from scratch on the next compaction pass.
        self.agg_cache.clear();
        self.compacted_through = 0;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind, TaskIdAllocator};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profstore-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn profile(tag: &str, task_ns: u64) -> Profile {
        let reg = registry();
        let par = reg.register(&format!("{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(task_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        team.finish()
    }

    #[test]
    fn ingest_load_round_trip_and_reopen() {
        let dir = tmpdir("rt");
        let p = profile("store-rt", 50);
        let (id1, id2);
        {
            let mut store = ProfileStore::open(&dir).expect("open");
            id1 = store.ingest("fib", 2, 100, &p).expect("ingest").run_id;
            id2 = store.ingest("fib", 2, 200, &p).expect("ingest").run_id;
            assert_eq!(store.len(), 2);
            assert_ne!(id1, id2);
        }
        let store = ProfileStore::open(&dir).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.recovered_tail_bytes(), 0);
        let (meta, q) = store.load(id2).expect("load");
        assert_eq!(meta.benchmark, "fib");
        assert_eq!(meta.threads, 2);
        assert_eq!(meta.timestamp_ns, 200);
        assert_eq!(q.threads[0].main, p.threads[0].main);
        assert!(matches!(store.load(999), Err(StoreError::NotFound(999))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_runs_across_segments() {
        let dir = tmpdir("rot");
        let config = StoreConfig {
            segment_max_bytes: 256,
            sync_writes: false,
        };
        let mut store = ProfileStore::open_with(&dir, config).expect("open");
        let p = profile("store-rot", 10);
        for i in 0..10 {
            store.ingest("fib", 2, i, &p).expect("ingest");
        }
        let stats = store.stats();
        assert_eq!(stats.runs, 10);
        assert!(stats.segments > 1, "expected rotation, got {stats:?}");
        // Reopen sees all runs across all segments.
        drop(store);
        let store = ProfileStore::open_with(&dir, config).expect("reopen");
        assert_eq!(store.len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let dir = tmpdir("torn");
        let p = profile("store-torn", 10);
        {
            let mut store = ProfileStore::open(&dir).expect("open");
            for i in 0..3 {
                store.ingest("fib", 2, i, &p).expect("ingest");
            }
        }
        // Cut the active segment mid-record.
        let seg = dir.join(segment_name(1));
        let data = std::fs::read(&seg).expect("read");
        std::fs::write(&seg, &data[..data.len() - 3]).expect("write");
        let mut store = ProfileStore::open(&dir).expect("recovering open");
        assert_eq!(store.len(), 2, "only the torn record is lost");
        assert!(store.recovered_tail_bytes() > 0);
        // The log accepts appends again and ids do not collide.
        let r = store.ingest("fib", 2, 99, &p).expect("ingest");
        assert!(
            store
                .index()
                .iter()
                .filter(|e| e.run_id == r.run_id)
                .count()
                == 1
        );
        drop(store);
        let store = ProfileStore::open(&dir).expect("clean reopen");
        assert_eq!(store.len(), 3);
        assert_eq!(store.recovered_tail_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_matches_direct_aggregation() {
        let dir = tmpdir("compact");
        let config = StoreConfig {
            segment_max_bytes: 300,
            sync_writes: false,
        };
        let mut store = ProfileStore::open_with(&dir, config).expect("open");
        for i in 0..8 {
            store
                .ingest("fib", 2, i, &profile("store-cmp", 100 + i))
                .expect("ingest");
        }
        let direct = store.aggregate("fib", 2).expect("aggregate");
        let folded = store.compact().expect("compact");
        assert!(folded > 0, "multi-segment store should compact something");
        let cached = store.aggregate("fib", 2).expect("aggregate");
        assert_eq!(direct.runs, cached.runs);
        assert_eq!(direct.total_ns, cached.total_ns);
        assert_eq!(direct.regions, cached.regions);
        assert_eq!(direct.merged_main, cached.merged_main);
        assert_eq!(store.compact().expect("idempotent"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_on_the_same_directory_is_refused() {
        let dir = tmpdir("lock");
        let store = ProfileStore::open(&dir).expect("first open");
        match ProfileStore::open(&dir) {
            Err(StoreError::Locked { dir: d }) => assert_eq!(d, dir),
            other => panic!("expected Locked, got {other:?}"),
        }
        // Dropping the holder releases the lock.
        drop(store);
        ProfileStore::open(&dir).expect("reopen after release");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_compaction_commits_nothing_so_retries_never_double_fold() {
        let dir = tmpdir("compact-retry");
        let config = StoreConfig {
            segment_max_bytes: 1, // one record per segment
            sync_writes: false,
        };
        let mut store = ProfileStore::open_with(&dir, config).expect("open");
        for i in 0..8 {
            store
                .ingest("fib", 2, i, &profile("store-retry", 100 + i))
                .expect("ingest");
        }
        let direct = store.aggregate("fib", 2).expect("aggregate");
        // Hide the *last* closed segment: the stream folds earlier runs
        // before erroring on it, which must not leak into the cache.
        let hidden = dir.join(segment_name(7));
        let aside = dir.join("seg-000007.hidden");
        std::fs::rename(&hidden, &aside).expect("hide segment");
        assert!(store.compact().is_err(), "compaction must fail");
        std::fs::rename(&aside, &hidden).expect("restore segment");
        // The retry folds every closed run exactly once.
        assert_eq!(store.compact().expect("retry"), 7);
        let cached = store.aggregate("fib", 2).expect("aggregate");
        assert_eq!(direct.runs, cached.runs);
        assert_eq!(direct.total_ns, cached.total_ns);
        assert_eq!(direct.merged_main, cached.merged_main);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_magic_in_final_segment_recovers_and_keeps_new_appends() {
        let dir = tmpdir("badmagic");
        let p = profile("store-magic", 25);
        {
            let mut store = ProfileStore::open(&dir).expect("open");
            store.ingest("fib", 2, 1, &p).expect("ingest");
        }
        // Destroy the magic header of the (only, final) segment.
        let seg = dir.join(segment_name(1));
        let mut data = std::fs::read(&seg).expect("read");
        data[0] ^= 0xFF;
        std::fs::write(&seg, &data).expect("write");
        // Recovery treats the whole segment as a lost tail, but must leave
        // behind a well-formed segment: records appended afterwards have
        // to survive the next open instead of vanishing behind the bad
        // header.
        let mut store = ProfileStore::open(&dir).expect("recovering open");
        assert_eq!(store.len(), 0);
        assert!(store.recovered_tail_bytes() > 0);
        let r = store.ingest("fib", 2, 2, &p).expect("post-recovery ingest");
        drop(store);
        let store = ProfileStore::open(&dir).expect("clean reopen");
        assert_eq!(store.recovered_tail_bytes(), 0, "no residual damage");
        assert_eq!(store.len(), 1, "post-recovery append survives reopen");
        store.load(r.run_id).expect("post-recovery run loads");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn windowed_aggregation_sees_only_the_window() {
        let dir = tmpdir("window");
        let config = StoreConfig {
            segment_max_bytes: 300, // force rotation so the agg cache engages
            sync_writes: false,
        };
        let mut store = ProfileStore::open_with(&dir, config).expect("open");
        // Old epoch: 5 slow runs at timestamps 100..104; new epoch: 3
        // fast runs at 1000..1002.
        for i in 0..5u64 {
            store
                .ingest("fib", 2, 100 + i, &profile("store-win", 1_000))
                .expect("ingest");
        }
        for i in 0..3u64 {
            store
                .ingest("fib", 2, 1_000 + i, &profile("store-win", 100))
                .expect("ingest");
        }
        store.compact().expect("compact");

        let full = store
            .aggregate_window("fib", 2, &RunWindow::default())
            .expect("full");
        assert_eq!(full.runs, 8, "unbounded window aggregates everything");

        let last3 = RunWindow {
            last: Some(3),
            since_ns: None,
        };
        let agg = store.aggregate_window("fib", 2, &last3).expect("last 3");
        assert_eq!(agg.runs, 3);
        assert!(
            agg.total_ns.max < full.total_ns.max,
            "window must exclude the slow old runs"
        );

        let since = RunWindow {
            last: None,
            since_ns: Some(1_000),
        };
        assert_eq!(store.runs_in_window("fib", 2, &since).len(), 3);
        // Composition: timestamp filter first, then the tail.
        let both = RunWindow {
            last: Some(2),
            since_ns: Some(1_000),
        };
        let entries = store.runs_in_window("fib", 2, &both);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].timestamp_ns, 1_001);
        // Oversized `last` clamps; other groups stay invisible.
        let big = RunWindow {
            last: Some(99),
            since_ns: None,
        };
        assert_eq!(store.runs_in_window("fib", 2, &big).len(), 8);
        assert!(store.runs_in_window("fib", 8, &big).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_buckets_follow_ingest_order() {
        let dir = tmpdir("trend");
        let mut store = ProfileStore::open(&dir).expect("open");
        // Run totals step up over time: 100, 200, ..., 700.
        for i in 0..7u64 {
            store
                .ingest("fib", 2, 10 + i, &profile("store-trend", 100 * (i + 1)))
                .expect("ingest");
        }
        let buckets = store
            .trend("fib", 2, &RunWindow::default(), 3)
            .expect("trend");
        // 7 runs over 3 buckets: 3 + 2 + 2.
        assert_eq!(buckets.len(), 3);
        assert_eq!(
            buckets.iter().map(|b| b.runs).collect::<Vec<_>>(),
            [3, 2, 2]
        );
        assert_eq!(buckets.iter().map(|b| b.runs).sum::<u64>(), 7);
        assert!(
            buckets[0].mean_ns() < buckets[1].mean_ns()
                && buckets[1].mean_ns() < buckets[2].mean_ns(),
            "rising totals must rise across buckets: {buckets:?}"
        );
        assert!(buckets[0].min_ns <= buckets[0].max_ns);
        assert_eq!(buckets[0].first_timestamp_ns, 10);
        assert_eq!(buckets[2].last_timestamp_ns, 16);
        // More buckets than runs degrades to one run per bucket.
        let fine = store
            .trend("fib", 2, &RunWindow::default(), 100)
            .expect("trend");
        assert_eq!(fine.len(), 7);
        assert!(fine.iter().all(|b| b.runs == 1));
        // Empty group / zero buckets are empty, not an error.
        assert!(store
            .trend("nope", 2, &RunWindow::default(), 3)
            .expect("trend")
            .is_empty());
        assert!(store
            .trend("fib", 2, &RunWindow::default(), 0)
            .expect("trend")
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn dir_file_bytes(dir: &Path) -> u64 {
        std::fs::read_dir(dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    #[test]
    fn gc_reclaims_disk_after_deleting_heavy_workload() {
        let dir = tmpdir("gc-disk");
        let config = StoreConfig {
            segment_max_bytes: 400, // several segments
            sync_writes: false,
        };
        let mut store = ProfileStore::open_with(&dir, config).expect("open");
        for i in 0..20u64 {
            store
                .ingest("fib", 2, 100 + i, &profile("store-gc", 50 + i))
                .expect("ingest");
        }
        store.compact().expect("compact");
        let before = dir_file_bytes(&dir);
        let report = store
            .gc(&RetentionPolicy {
                keep_last: Some(3),
                min_timestamp_ns: None,
            })
            .expect("gc");
        assert_eq!(report.dropped_runs, 17);
        assert!(report.reclaimed_bytes > 0, "{report:?}");
        assert!(
            report.removed_segments + report.rewritten_segments > 0,
            "{report:?}"
        );
        let after = dir_file_bytes(&dir);
        assert!(
            after < before,
            "directory must shrink: {before} -> {after} ({report:?})"
        );
        // The survivors are the newest 3 and still load + aggregate.
        assert_eq!(store.len(), 3);
        let timestamps: Vec<u64> = store.index().iter().map(|e| e.timestamp_ns).collect();
        assert_eq!(timestamps, [117, 118, 119]);
        let agg = store.aggregate("fib", 2).expect("aggregate");
        assert_eq!(agg.runs, 3);
        for e in store.index().to_vec() {
            store.load(e.run_id).expect("survivor loads");
        }
        // Reopen agrees byte-for-byte with the in-process view.
        drop(store);
        let store = ProfileStore::open_with(&dir, config).expect("reopen");
        assert_eq!(store.len(), 3);
        assert_eq!(store.recovered_tail_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_cutoff_never_removes_newer_runs_and_is_idempotent() {
        let dir = tmpdir("gc-cut");
        let mut store = ProfileStore::open(&dir).expect("open");
        for i in 0..10u64 {
            store
                .ingest("fib", 2, 100 + i, &profile("store-cut", 10))
                .expect("ingest");
        }
        let policy = RetentionPolicy {
            keep_last: None,
            min_timestamp_ns: Some(105),
        };
        let report = store.gc(&policy).expect("gc");
        assert_eq!(report.dropped_runs, 5);
        assert!(store.index().iter().all(|e| e.timestamp_ns >= 105));
        // Idempotent: nothing newer than the cutoff is ever touched.
        let report = store.gc(&policy).expect("gc again");
        assert_eq!(report, GcReport::default());
        assert_eq!(store.len(), 5);
        // A no-op policy is free.
        let report = store.gc(&RetentionPolicy::default()).expect("noop");
        assert_eq!(report, GcReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_apply_round_trips_single_stores() {
        let leader_dir = tmpdir("exp-l");
        let follower_dir = tmpdir("exp-f");
        let mut leader = ProfileStore::open(&leader_dir).expect("leader");
        let mut follower = ProfileStore::open(&follower_dir).expect("follower");
        let mut acked = Vec::new();
        for i in 0..7u64 {
            let r = leader
                .ingest("fib", 2, 10 + i, &profile("store-exp", 20 + i))
                .expect("ingest");
            acked.push(r.run_id);
        }
        let mut cursor = follower.max_run_id();
        loop {
            let batch = leader.export_frames(cursor, 3).expect("export");
            assert!(batch.frames.len() <= 3);
            for frame in &batch.frames {
                follower.apply_frame(frame).expect("apply");
            }
            cursor = batch.watermark;
            if batch.done {
                break;
            }
        }
        assert_eq!(follower.len(), leader.len());
        for &id in &acked {
            let (lm, lp) = leader.load(id).expect("leader load");
            let (fm, fp) = follower.load(id).expect("follower load");
            assert_eq!(lm.timestamp_ns, fm.timestamp_ns);
            assert_eq!(lp.threads[0].main, fp.threads[0].main);
        }
        // Replay from zero: every frame is skipped, nothing duplicates.
        let batch = leader.export_frames(0, 100).expect("export all");
        for frame in &batch.frames {
            assert!(follower.apply_frame(frame).expect("re-apply").is_none());
        }
        assert_eq!(follower.len(), leader.len());
        // A garbage frame is refused with a typed error.
        assert!(matches!(
            follower.apply_frame(b"not a frame"),
            Err(StoreError::BadFrame { .. })
        ));
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn groups_are_keyed_by_benchmark_and_threads() {
        let dir = tmpdir("groups");
        let mut store = ProfileStore::open(&dir).expect("open");
        let p = profile("store-grp", 10);
        store.ingest("fib", 2, 1, &p).expect("ingest");
        store.ingest("fib", 4, 2, &p).expect("ingest");
        store.ingest("nqueens", 2, 3, &p).expect("ingest");
        store.ingest("fib", 2, 4, &p).expect("ingest");
        let groups = store.groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&("fib".to_string(), 2)], 2);
        assert_eq!(store.runs_for("fib", 2).len(), 2);
        assert_eq!(store.runs_for("fib", 8).len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
