//! Cross-run aggregation and regression checking.
//!
//! `cube::agg` merges the threads of *one* run; this module folds *many
//! runs* of the same benchmark into one aggregate: per-construct
//! min/max/mean/sum over runs (the paper's per-node statistics, lifted
//! one level up), plus a structurally merged call tree reusing
//! [`cube::merge_nodes`]. The fold is strictly one-run-at-a-time so the
//! store's streaming merge never holds more than one decoded profile.

use cube::{merge_nodes, AggProfile};
use pomp::registry;
use std::collections::BTreeMap;
use taskprof::{NodeKind, Profile, SnapNode};

/// min/max/mean/sum of one metric over runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricAgg {
    /// Number of runs folded in.
    pub count: u64,
    /// Sum over runs.
    pub sum: u64,
    /// Minimum over runs (`u64::MAX` while empty).
    pub min: u64,
    /// Maximum over runs.
    pub max: u64,
}

/// Same as [`MetricAgg::new`]: the empty-minimum sentinel is `u64::MAX`,
/// so a derived all-zero default would corrupt the first `min` fold.
impl Default for MetricAgg {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricAgg {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Fold one run's value.
    pub fn fold(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean over folded runs (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum as an `Option` (None while empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }
}

/// One run reduced to the per-construct totals the cross-run statistics
/// are built from: inclusive nanoseconds summed per region name over the
/// thread-merged trees (task trees included, parameter nodes skipped).
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Root (parallel region) inclusive time, summed over threads.
    pub total_ns: u64,
    /// Per-construct inclusive nanoseconds, keyed by display name
    /// (stub nodes get a ` (stub)` suffix to stay distinct).
    pub regions: BTreeMap<String, u64>,
}

fn node_key(kind: NodeKind) -> Option<String> {
    let reg = registry();
    match kind {
        NodeKind::Region(id) => Some(reg.name(id)),
        NodeKind::Stub(id) => Some(format!("{} (stub)", reg.name(id))),
        NodeKind::Param(..) | NodeKind::Truncated => None,
    }
}

fn accumulate(tree: &SnapNode, into: &mut BTreeMap<String, u64>) {
    tree.walk(&mut |_, node| {
        if let Some(key) = node_key(node.kind) {
            *into.entry(key).or_insert(0) += node.stats.sum_ns;
        }
    });
}

impl RunSummary {
    /// Reduce one profile.
    pub fn from_profile(p: &Profile) -> Self {
        let agg = AggProfile::from_profile(p);
        let mut regions = BTreeMap::new();
        accumulate(&agg.main, &mut regions);
        for tree in &agg.task_trees {
            accumulate(tree, &mut regions);
        }
        Self {
            total_ns: agg.main.stats.sum_ns,
            regions,
        }
    }
}

/// Cross-run aggregate of one (benchmark, thread count) group.
#[derive(Clone, Debug, Default)]
pub struct BenchAgg {
    /// Runs folded in.
    pub runs: u64,
    /// Run total (root inclusive) over runs.
    pub total_ns: MetricAgg,
    /// Per-construct inclusive time over runs, keyed like
    /// [`RunSummary::regions`].
    pub regions: BTreeMap<String, MetricAgg>,
    /// Structural merge of every run's thread-merged main tree (absent
    /// until the first run; left at the first run's shape if later runs
    /// disagree on the root construct).
    pub merged_main: Option<SnapNode>,
    /// Structural merges of the per-construct task trees.
    pub merged_tasks: Vec<SnapNode>,
    /// Runs whose root construct did not match [`BenchAgg::merged_main`]
    /// and were therefore excluded from the tree merge (their scalar
    /// statistics still count).
    pub tree_mismatches: u64,
}

impl BenchAgg {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one run.
    pub fn fold(&mut self, profile: &Profile) {
        let summary = RunSummary::from_profile(profile);
        self.fold_summary_and_trees(&summary, profile);
    }

    fn fold_summary_and_trees(&mut self, summary: &RunSummary, profile: &Profile) {
        self.runs += 1;
        self.total_ns.fold(summary.total_ns);
        for (key, ns) in &summary.regions {
            self.regions.entry(key.clone()).or_default().fold(*ns);
        }
        let agg = AggProfile::from_profile(profile);
        match &mut self.merged_main {
            None => {
                self.merged_main = Some(agg.main.clone());
                self.merged_tasks = agg.task_trees.clone();
            }
            Some(main) if main.kind == agg.main.kind => {
                *main = merge_nodes(&[&*main, &agg.main]);
                for tree in &agg.task_trees {
                    match self.merged_tasks.iter_mut().find(|t| t.kind == tree.kind) {
                        Some(existing) => *existing = merge_nodes(&[&*existing, tree]),
                        None => self.merged_tasks.push(tree.clone()),
                    }
                }
            }
            Some(_) => self.tree_mismatches += 1,
        }
    }

    /// The `n` largest constructs by summed inclusive time over runs.
    pub fn top_regions(&self, n: usize) -> Vec<(&str, &MetricAgg)> {
        let mut rows: Vec<(&str, &MetricAgg)> =
            self.regions.iter().map(|(k, v)| (k.as_str(), v)).collect();
        // Sort by sum descending; the BTreeMap key breaks ties, keeping
        // the ordering byte-stable across identical sweeps.
        rows.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then_with(|| a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }

    /// Check a new run against this aggregate.
    pub fn check_regression(&self, new_run: &RunSummary, config: &RegressConfig) -> Regression {
        let mut findings = Vec::new();
        if self.runs >= config.min_runs {
            let mut consider = |region: &str, new_ns: u64, agg: &MetricAgg| {
                let mean = agg.mean();
                let grew_by = new_ns as f64 - mean;
                if mean > 0.0
                    && grew_by > config.min_delta_ns as f64
                    && new_ns as f64 > mean * (1.0 + config.threshold)
                {
                    findings.push(RegressionFinding {
                        region: region.to_string(),
                        new_ns,
                        mean_ns: mean,
                        ratio: new_ns as f64 / mean,
                    });
                }
            };
            consider("(total)", new_run.total_ns, &self.total_ns);
            for (region, agg) in &self.regions {
                if let Some(new_ns) = new_run.regions.get(region) {
                    consider(region, *new_ns, agg);
                }
            }
        }
        Regression {
            baseline_runs: self.runs,
            threshold: config.threshold,
            regressed: !findings.is_empty(),
            findings,
        }
    }
}

/// Tunables for [`BenchAgg::check_regression`].
#[derive(Clone, Copy, Debug)]
pub struct RegressConfig {
    /// Relative growth over the stored mean that counts as a regression
    /// (0.2 = 20% slower).
    pub threshold: f64,
    /// Minimum stored runs before any verdict; below this the check
    /// always passes (not enough baseline).
    pub min_runs: u64,
    /// Absolute floor: growth below this many nanoseconds never flags,
    /// regardless of ratio (suppresses noise on near-zero constructs).
    pub min_delta_ns: u64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        Self {
            threshold: 0.2,
            min_runs: 1,
            min_delta_ns: 0,
        }
    }
}

/// One construct that regressed.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionFinding {
    /// Construct display name (`(total)` for the whole-run time).
    pub region: String,
    /// The new run's inclusive nanoseconds.
    pub new_ns: u64,
    /// Mean over the stored baseline runs.
    pub mean_ns: f64,
    /// `new_ns / mean_ns`.
    pub ratio: f64,
}

/// Verdict of a regression check.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Runs in the stored baseline.
    pub baseline_runs: u64,
    /// The relative threshold the check ran with.
    pub threshold: f64,
    /// True when at least one construct regressed.
    pub regressed: bool,
    /// The regressed constructs, in deterministic (`(total)` first, then
    /// name) order.
    pub findings: Vec<RegressionFinding>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn profile(tag: &str, task_ns: u64) -> Profile {
        let reg = registry();
        let par = reg.register(&format!("{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(task_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        team.finish()
    }

    #[test]
    fn metric_agg_folds() {
        let mut m = MetricAgg::new();
        assert_eq!(m.min(), None);
        m.fold(10);
        m.fold(30);
        m.fold(20);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 60);
        assert_eq!(m.min(), Some(10));
        assert_eq!(m.max, 30);
        assert!((m.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bench_agg_accumulates_runs() {
        let mut agg = BenchAgg::new();
        agg.fold(&profile("agg-a", 100));
        agg.fold(&profile("agg-a", 300));
        assert_eq!(agg.runs, 2);
        let task = agg.regions.get("agg-a-task").expect("task tracked");
        assert_eq!(task.count, 2);
        assert_eq!(task.min(), Some(100));
        assert_eq!(task.max, 300);
        // total_ns is built through Default: its empty-min sentinel must
        // be u64::MAX, or the first fold would pin min at 0.
        assert!(agg.total_ns.min().expect("folded") > 0);
        assert_eq!(agg.total_ns.min(), Some(agg.total_ns.min));
        assert_eq!(agg.tree_mismatches, 0);
        let main = agg.merged_main.as_ref().expect("merged tree");
        assert_eq!(main.stats.visits, 2);
        let top = agg.top_regions(10);
        assert!(!top.is_empty());
        assert!(top[0].1.sum >= top.last().unwrap().1.sum);
    }

    #[test]
    fn regression_flags_growth_beyond_threshold() {
        let mut agg = BenchAgg::new();
        for _ in 0..5 {
            agg.fold(&profile("agg-r", 100));
        }
        let ok = RunSummary::from_profile(&profile("agg-r", 110));
        let bad = RunSummary::from_profile(&profile("agg-r", 200));
        let config = RegressConfig {
            threshold: 0.5,
            min_runs: 3,
            min_delta_ns: 0,
        };
        let verdict = agg.check_regression(&ok, &config);
        assert!(!verdict.regressed, "{verdict:?}");
        let verdict = agg.check_regression(&bad, &config);
        assert!(verdict.regressed);
        assert!(verdict.findings.iter().any(|f| f.region == "agg-r-task"));
        let f = verdict.findings.iter().find(|f| f.region == "agg-r-task").unwrap();
        assert!((f.ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn regression_needs_a_baseline() {
        let mut agg = BenchAgg::new();
        agg.fold(&profile("agg-b", 100));
        let huge = RunSummary::from_profile(&profile("agg-b", 10_000));
        let config = RegressConfig {
            min_runs: 3,
            ..RegressConfig::default()
        };
        assert!(!agg.check_regression(&huge, &config).regressed);
    }
}
