//! Plain-data report types and detrimental-pattern detection.

use crate::dag::{TaskDag, SPAWN_REGION};
use pomp::{registry, RegionId, RegionKind};
use std::collections::HashMap;

/// One region's share of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionRow {
    /// The region.
    pub region: RegionId,
    /// Its registered name (`"<spawn>"` for carved creation overhead with
    /// no known creation region).
    pub name: String,
    /// Total time attributed to the region across all threads.
    pub work_ns: u64,
    /// Time the region contributes along one critical path (0 if the
    /// region is entirely off the critical path — speeding it up cannot
    /// shorten the span).
    pub span_ns: u64,
}

/// The answer to "if `region` were `speedup`× faster, what would the
/// runtime be?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WhatIfPrediction {
    /// Region hypothetically sped up.
    pub region: RegionId,
    /// The hypothetical speedup factor K (≥ 1).
    pub speedup: u64,
    /// Makespan of the unmodified run (schedule-aware longest path).
    pub baseline_makespan_ns: u64,
    /// Predicted makespan with every `region` fragment K× faster, on the
    /// *same* schedule — the number a deterministic replay reproduces
    /// exactly.
    pub predicted_makespan_ns: u64,
    /// Predicted logical span — the bound no schedule could beat.
    pub predicted_span_ns: u64,
}

impl WhatIfPrediction {
    /// Baseline / predicted makespan: the whole-program speedup bought by
    /// the regional speedup (Amdahl-style, but DAG-exact).
    pub fn program_speedup(&self) -> f64 {
        if self.predicted_makespan_ns == 0 {
            1.0
        } else {
            self.baseline_makespan_ns as f64 / self.predicted_makespan_ns as f64
        }
    }
}

/// A scheduling pathology detected from the DAG shape.
#[derive(Clone, Debug, PartialEq)]
pub enum DetrimentalFlag {
    /// One thread produces nearly all tasks and creation sits on the
    /// critical path: consumers starve behind a serial producer
    /// (the "single-creator" pattern of the detrimental-pattern study).
    SingleCreatorStarvation {
        /// Share of all task creations performed by the busiest creator.
        creator_share: f64,
        /// Share of the critical path spent inside creation regions.
        create_span_share: f64,
    },
    /// Most deferred tasks executed away from their creator: the team is
    /// paying migration cost for nearly every task.
    StealStorm {
        /// Deferred tasks first executed on a non-creator thread.
        steals: u64,
        /// Explicit task instances in the run.
        tasks: u64,
        /// `steals / tasks`.
        steal_ratio: f64,
    },
}

impl std::fmt::Display for DetrimentalFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetrimentalFlag::SingleCreatorStarvation {
                creator_share,
                create_span_share,
            } => write!(
                f,
                "single-creator starvation: one thread performs {:.0}% of task creations and creation occupies {:.0}% of the critical path",
                creator_share * 100.0,
                create_span_share * 100.0
            ),
            DetrimentalFlag::StealStorm {
                steals,
                tasks,
                steal_ratio,
            } => write!(
                f,
                "steal storm: {steals} of {tasks} tasks ({:.0}%) first ran away from their creator",
                steal_ratio * 100.0
            ),
        }
    }
}

/// Minimum tasks before a steal ratio is meaningful.
const STEAL_STORM_MIN_TASKS: u64 = 16;
/// Steal ratio at which migration dominates.
const STEAL_STORM_RATIO: f64 = 0.5;
/// Creator concentration that counts as "single creator".
const SINGLE_CREATOR_SHARE: f64 = 0.85;
/// Critical-path share of creation that makes the serial producer the
/// bottleneck.
const SINGLE_CREATOR_SPAN_SHARE: f64 = 0.25;

/// The full critical-path analysis of one run: the work/span numbers,
/// a per-region breakdown, and detrimental-pattern flags.
#[derive(Clone, Debug, PartialEq)]
pub struct CritPathReport {
    /// Total time across all threads.
    pub work_ns: u64,
    /// Logical critical path.
    pub span_ns: u64,
    /// Schedule-aware longest path (modeled runtime of the observed
    /// schedule).
    pub makespan_ns: u64,
    /// Work / span: the speedup ceiling.
    pub parallelism: f64,
    /// Team size observed.
    pub threads: usize,
    /// Explicit task instances.
    pub tasks: u64,
    /// Task fragments (instances + resumptions after suspension).
    pub fragments: u64,
    /// Deferred tasks first executed away from their creator.
    pub steals: u64,
    /// Work performed by each thread (utilization = entry / makespan).
    pub thread_work_ns: Vec<u64>,
    /// Per-region work and critical-path share, largest work first.
    pub regions: Vec<RegionRow>,
    /// Detected scheduling pathologies (empty when the run looks healthy).
    pub flags: Vec<DetrimentalFlag>,
}

fn region_name(r: RegionId) -> String {
    if r == SPAWN_REGION {
        "<spawn>".to_string()
    } else {
        registry().name(r)
    }
}

fn is_create_region(r: RegionId) -> bool {
    r == SPAWN_REGION || registry().kind(r) == RegionKind::TaskCreate
}

impl TaskDag {
    /// Produce the plain-data [`CritPathReport`] for this DAG.
    pub fn report(&self) -> CritPathReport {
        let work_ns = self.work_ns();
        let span_ns = self.span_ns();
        let span_rows: HashMap<RegionId, u64> = self.span_by_region().into_iter().collect();
        let regions: Vec<RegionRow> = self
            .work_by_region()
            .into_iter()
            .map(|(region, work)| RegionRow {
                region,
                name: region_name(region),
                work_ns: work,
                span_ns: span_rows.get(&region).copied().unwrap_or(0),
            })
            .collect();

        let mut flags = Vec::new();
        let tasks = self.tasks();
        let steals = self.steals();
        if tasks >= STEAL_STORM_MIN_TASKS {
            let ratio = steals as f64 / tasks as f64;
            if ratio >= STEAL_STORM_RATIO {
                flags.push(DetrimentalFlag::StealStorm {
                    steals,
                    tasks,
                    steal_ratio: ratio,
                });
            }
        }
        let creates: u64 = self.creates_by_thread().values().sum();
        let top = self.creates_by_thread().values().copied().max().unwrap_or(0);
        if creates >= STEAL_STORM_MIN_TASKS && self.threads() > 1 && span_ns > 0 {
            let creator_share = top as f64 / creates as f64;
            let create_span: u64 = regions
                .iter()
                .filter(|r| is_create_region(r.region))
                .map(|r| r.span_ns)
                .sum();
            let create_span_share = create_span as f64 / span_ns as f64;
            if creator_share >= SINGLE_CREATOR_SHARE
                && create_span_share >= SINGLE_CREATOR_SPAN_SHARE
            {
                flags.push(DetrimentalFlag::SingleCreatorStarvation {
                    creator_share,
                    create_span_share,
                });
            }
        }

        CritPathReport {
            work_ns,
            span_ns,
            makespan_ns: self.makespan_ns(),
            parallelism: self.parallelism(),
            threads: self.threads(),
            tasks,
            fragments: self.fragments(),
            steals,
            thread_work_ns: self.work_by_thread(),
            regions,
            flags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagOptions;
    use pomp::{RegionKind, TaskIdAllocator};
    use taskprof::Event;

    fn region(name: &str, kind: RegionKind) -> RegionId {
        registry().register(name, kind, file!(), line!())
    }

    /// Thread 0 creates `n` tasks back-to-back (10ns each inside the
    /// create frame); thread 1 runs them all inside the barrier (1ns each).
    fn single_creator_streams(n: u64) -> (Vec<(usize, Vec<Event>)>, RegionId) {
        let par = region("rep-par", RegionKind::Parallel);
        let task = region("rep-task", RegionKind::Task);
        let create = region("rep-create", RegionKind::TaskCreate);
        let bar = region("rep-bar", RegionKind::ImplicitBarrier);
        let ids = TaskIdAllocator::new();
        let all: Vec<_> = (0..n).map(|_| ids.alloc()).collect();
        let mut s0 = Vec::new();
        for &id in &all {
            s0.push(Event::CreateBegin {
                create,
                task_region: task,
                id,
            });
            s0.push(Event::Advance(10));
            s0.push(Event::CreateEnd { create, id });
        }
        s0.push(Event::Enter(bar));
        s0.push(Event::Exit(bar));
        let mut s1 = vec![Event::Enter(bar)];
        for &id in &all {
            s1.push(Event::TaskBegin { region: task, id });
            s1.push(Event::Advance(1));
            s1.push(Event::TaskEnd { region: task, id });
        }
        s1.push(Event::Exit(bar));
        (vec![(0, s0), (1, s1)], par)
    }

    #[test]
    fn single_creator_storm_is_flagged() {
        let (streams, par) = single_creator_streams(32);
        let dag = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        let report = dag.report();
        assert_eq!(report.tasks, 32);
        assert_eq!(report.steals, 32, "every task ran away from thread 0");
        assert!(
            report
                .flags
                .iter()
                .any(|f| matches!(f, DetrimentalFlag::StealStorm { steal_ratio, .. } if *steal_ratio >= 0.99)),
            "flags: {:?}",
            report.flags
        );
        assert!(
            report
                .flags
                .iter()
                .any(|f| matches!(f, DetrimentalFlag::SingleCreatorStarvation { creator_share, .. } if *creator_share >= 0.99)),
            "flags: {:?}",
            report.flags
        );
        // The creation chain dominates the span: 32 creates × 10ns.
        assert!(report.span_ns >= 320);
        assert!(report.parallelism >= 1.0);
        assert!(report.span_ns <= report.work_ns);
    }

    #[test]
    fn healthy_run_has_no_flags() {
        let (streams, par) = single_creator_streams(4); // below min-task floor
        let dag = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        assert!(dag.report().flags.is_empty());
    }

    #[test]
    fn region_rows_sorted_by_work_and_named() {
        let (streams, par) = single_creator_streams(32);
        let dag = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        let report = dag.report();
        assert!(!report.regions.is_empty());
        assert!(report.regions.windows(2).all(|w| w[0].work_ns >= w[1].work_ns));
        assert_eq!(report.regions[0].name, "rep-create");
        assert_eq!(report.regions[0].work_ns, 320);
        assert!(report.regions[0].span_ns > 0, "creation is on the span");
    }

    #[test]
    fn flag_display_is_human_readable() {
        let f = DetrimentalFlag::StealStorm {
            steals: 30,
            tasks: 32,
            steal_ratio: 30.0 / 32.0,
        };
        assert!(f.to_string().contains("steal storm"));
        let f = DetrimentalFlag::SingleCreatorStarvation {
            creator_share: 1.0,
            create_span_share: 0.5,
        };
        assert!(f.to_string().contains("single-creator"));
    }
}
