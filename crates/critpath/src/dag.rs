//! Construction and solving of the fragment DAG.
//!
//! # The model
//!
//! The unit of the DAG is the *fragment interval*: a maximal stretch of
//! virtual time during which one thread executes one task inside one
//! innermost region frame. Every profiler hook event becomes a weight-0
//! anchor vertex; the time that elapsed since the previous event on that
//! thread becomes a weighted interval vertex between the two anchors,
//! attributed to the innermost open `Region` frame of the task that was
//! current (parameter scopes are transparent). Work and per-region work
//! are sums over interval weights.
//!
//! Two edge sets order the vertices:
//!
//! * **logical edges** — per-task program order, task-creation edges
//!   (`task_create_end` → the child's `task_begin`), taskwait joins
//!   (each outstanding child's end → the waiter's `taskwait` exit),
//!   inline joins for undeferred children (child end → the creator's
//!   next vertex), and barrier synchronization (every thread's last
//!   pre-exit vertex → every thread's barrier exit, which under the
//!   serialized simulation captures both arrival and task-drain order).
//!   The longest weighted path over these is the **span**.
//! * **schedule edges** — additionally chain consecutive vertices of the
//!   same thread, pinning every fragment to the thread that actually ran
//!   it. The longest path over logical + schedule edges is the
//!   **makespan**: the modeled runtime of the observed schedule, and the
//!   quantity the what-if engine predicts exactly under replay.
//!
//! # Undeferred creation carving
//!
//! The simulation scheduler charges its per-creation cost for an
//! *undeferred* task into the creator's currently open frame (there is no
//! `task_create` frame on that path). When [`DagOptions::undeferred_spawn_cost`]
//! is supplied, the builder carves that cost out of the interval
//! preceding the child's `task_begin` and attributes it to the
//! construct's creation region instead — so scaling a *work* region never
//! scales creation overhead, matching what a replay with scaled work
//! actually does.

use pomp::{registry, RegionId, RegionKind, TaskId, TaskRef};
use std::collections::HashMap;
use taskprof::Event;

/// Sentinel region for carved creation overhead whose construct has no
/// known creation region (no deferred instance was ever observed).
pub const SPAWN_REGION: RegionId = RegionId(u32::MAX);

/// Options for [`TaskDag::from_streams`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DagOptions {
    /// Virtual cost charged per *undeferred* task creation into the
    /// creator's open frame (the simulation scheduler's spawn cost). When
    /// known, the builder carves it into a creation-attributed vertex of
    /// its own (see the module docs); when `None` (e.g. real-clock
    /// streams) no carving happens and what-if answers for regions
    /// containing undeferred creations are estimates.
    pub undeferred_spawn_cost: Option<u64>,
}

/// A stream could not be interpreted as a well-formed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An `exit`/`parameter_end` did not match the innermost open frame.
    UnbalancedFrame {
        /// Thread whose stream was malformed.
        thread: usize,
        /// What was being closed.
        detail: String,
    },
    /// A task was referenced (joined / create-resolved) but its
    /// counterpart event never appeared in any stream.
    MissingTask {
        /// The unresolved instance id.
        id: TaskId,
        /// Which resolution failed.
        what: &'static str,
    },
    /// The assembled graph has a cycle — the streams cannot describe one
    /// causally consistent execution.
    Cycle,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnbalancedFrame { thread, detail } => {
                write!(f, "thread {thread}: unbalanced frame ({detail})")
            }
            DagError::MissingTask { id, what } => {
                write!(f, "task {}: missing {what}", id.get())
            }
            DagError::Cycle => write!(f, "event streams describe a cyclic dependency graph"),
        }
    }
}

impl std::error::Error for DagError {}

/// Which task a vertex belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum TaskKey {
    /// The implicit task of thread `tid`.
    Implicit(usize),
    /// An explicit task instance.
    Explicit(TaskId),
}

#[derive(Clone, Copy, Debug)]
enum Frame {
    Region(RegionId),
    Param,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    weight: u64,
    attr: RegionId,
    thread: usize,
}

/// The assembled fragment DAG of one parallel region's run.
#[derive(Debug)]
pub struct TaskDag {
    nodes: Vec<Node>,
    /// Logical predecessors (program order, create, join, barrier).
    preds: Vec<Vec<u32>>,
    /// Additional schedule predecessors (thread order).
    sched_preds: Vec<Vec<u32>>,
    /// Topological order of the full (logical + schedule) graph — also a
    /// valid order for the logical subgraph.
    topo: Vec<u32>,
    threads: usize,
    tasks: u64,
    steals: u64,
    fragments: u64,
    /// Tasks created per creator, for starvation detection.
    creates_by: HashMap<usize, u64>,
}

/// One thread's exit from a barrier occurrence: the vertex preceding
/// the exit (if the thread did anything before it) and the exit vertex.
type BarrierExit = (Option<u32>, u32);

struct Builder {
    nodes: Vec<Node>,
    preds: Vec<Vec<u32>>,
    sched_preds: Vec<Vec<u32>>,
    frames: HashMap<TaskKey, Vec<Frame>>,
    /// Last vertex of each task's program-order chain.
    task_last: HashMap<TaskKey, u32>,
    /// Join edges waiting to attach to a task's *next* vertex (inline
    /// joins of undeferred children).
    pending_join: HashMap<TaskKey, Vec<u32>>,
    /// Children created by each task and not yet joined at a taskwait.
    children_unjoined: HashMap<TaskKey, Vec<TaskId>>,
    /// `task_create_end` vertex per deferred task.
    create_vertex: HashMap<TaskId, u32>,
    creator_thread: HashMap<TaskId, usize>,
    end_vertex: HashMap<TaskId, u32>,
    /// Undeferred child → creator (for the inline join).
    inline_parent: HashMap<TaskId, TaskKey>,
    /// Task construct region → its creation region (learned from
    /// `task_create_begin` events in the pre-pass).
    create_region_of: HashMap<RegionId, RegionId>,
    /// Tasks announced by a `task_create_begin` (deferred path).
    deferred: std::collections::HashSet<TaskId>,
    /// Unresolved cross-thread edges: (child id, target vertex).
    create_edges: Vec<(TaskId, u32)>,
    join_edges: Vec<(TaskId, u32)>,
    /// Barrier exits grouped by (barrier region, occurrence).
    barrier_exits: HashMap<(RegionId, usize), Vec<BarrierExit>>,
    barrier_count: HashMap<(usize, RegionId), usize>,
    tasks: u64,
    resumes: u64,
    creates_by: HashMap<usize, u64>,
}

impl Builder {
    fn node(&mut self, weight: u64, attr: RegionId, thread: usize) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            weight,
            attr,
            thread,
        });
        self.preds.push(Vec::new());
        self.sched_preds.push(Vec::new());
        id
    }

    fn logical_edge(&mut self, from: u32, to: u32) {
        self.preds[to as usize].push(from);
    }

    fn sched_edge(&mut self, from: u32, to: u32) {
        self.sched_preds[to as usize].push(from);
    }

    /// Attach `v` to `task`'s program-order chain (and drain any inline
    /// joins waiting for the task's next vertex).
    fn link_task(&mut self, task: TaskKey, v: u32) {
        if let Some(&last) = self.task_last.get(&task) {
            self.logical_edge(last, v);
        }
        if let Some(waiting) = self.pending_join.remove(&task) {
            for w in waiting {
                self.logical_edge(w, v);
            }
        }
        self.task_last.insert(task, v);
    }

    fn attribution(&self, task: TaskKey) -> RegionId {
        let stack = self.frames.get(&task).expect("task has a frame stack");
        stack
            .iter()
            .rev()
            .find_map(|f| match f {
                Frame::Region(r) => Some(*r),
                Frame::Param => None,
            })
            .expect("frame stack always has a base region")
    }
}

/// Per-thread walking state.
struct ThreadWalk {
    tid: usize,
    pending: u64,
    prev: Option<u32>,
}

impl ThreadWalk {
    /// Emit the accumulated interval (if any) before an event, optionally
    /// carving `carve` ns off its tail into a creation-attributed vertex.
    /// Returns the carved vertex for use as a creation-edge source.
    fn emit_interval(&mut self, b: &mut Builder, current: TaskKey, carve: Option<(u64, RegionId)>) -> Option<u32> {
        let (carve_ns, carve_attr) = match carve {
            Some((ns, attr)) => (ns.min(self.pending), attr),
            None => (0, SPAWN_REGION),
        };
        let work = self.pending - carve_ns;
        let mut carved = None;
        if work > 0 {
            let attr = b.attribution(current);
            let v = b.node(work, attr, self.tid);
            if let Some(p) = self.prev {
                b.sched_edge(p, v);
            }
            b.link_task(current, v);
            self.prev = Some(v);
        }
        if carve_ns > 0 {
            let v = b.node(carve_ns, carve_attr, self.tid);
            if let Some(p) = self.prev {
                b.sched_edge(p, v);
            }
            b.link_task(current, v);
            self.prev = Some(v);
            carved = Some(v);
        }
        self.pending = 0;
        carved
    }

    /// Weight-0 anchor vertex for an event belonging to `task`.
    fn event_vertex(&mut self, b: &mut Builder, task: TaskKey) -> u32 {
        let v = b.node(0, SPAWN_REGION, self.tid);
        if let Some(p) = self.prev {
            b.sched_edge(p, v);
        }
        b.link_task(task, v);
        self.prev = Some(v);
        v
    }
}

impl TaskDag {
    /// Build the DAG from per-thread event streams (the shape produced by
    /// `ProfMonitor::take_edge_streams` and `simsched::EventRecorder`).
    /// `parallel_region` is the region id of the parallel construct the
    /// streams cover (the implicit tasks' base attribution).
    pub fn from_streams(
        streams: &[(usize, Vec<Event>)],
        parallel_region: RegionId,
        opts: &DagOptions,
    ) -> Result<TaskDag, DagError> {
        let mut b = Builder {
            nodes: Vec::new(),
            preds: Vec::new(),
            sched_preds: Vec::new(),
            frames: HashMap::new(),
            task_last: HashMap::new(),
            pending_join: HashMap::new(),
            children_unjoined: HashMap::new(),
            create_vertex: HashMap::new(),
            creator_thread: HashMap::new(),
            end_vertex: HashMap::new(),
            inline_parent: HashMap::new(),
            create_region_of: HashMap::new(),
            deferred: std::collections::HashSet::new(),
            create_edges: Vec::new(),
            join_edges: Vec::new(),
            barrier_exits: HashMap::new(),
            barrier_count: HashMap::new(),
            tasks: 0,
            resumes: 0,
            creates_by: HashMap::new(),
        };

        // Pre-pass: learn which tasks are deferred (announced by a create
        // event) and each construct's creation region, across ALL streams —
        // a stolen task's creation lives in a different stream than its
        // execution.
        for (_, events) in streams {
            for ev in events {
                if let Event::CreateBegin {
                    create,
                    task_region,
                    id,
                } = ev
                {
                    b.deferred.insert(*id);
                    b.create_region_of.insert(*task_region, *create);
                }
            }
        }

        let mut first_thread: HashMap<TaskId, usize> = HashMap::new();
        for (tid, events) in streams {
            let tid = *tid;
            let mut w = ThreadWalk {
                tid,
                pending: 0,
                prev: None,
            };
            let mut current = TaskKey::Implicit(tid);
            b.frames
                .insert(current, vec![Frame::Region(parallel_region)]);
            for ev in events {
                match *ev {
                    Event::Advance(dt) => {
                        w.pending += dt;
                        continue;
                    }
                    Event::Enter(r) => {
                        w.emit_interval(&mut b, current, None);
                        w.event_vertex(&mut b, current);
                        b.frames.get_mut(&current).unwrap().push(Frame::Region(r));
                    }
                    Event::Exit(r) => {
                        w.emit_interval(&mut b, current, None);
                        let pre = w.prev;
                        let v = w.event_vertex(&mut b, current);
                        match b.frames.get_mut(&current).unwrap().pop() {
                            Some(Frame::Region(top)) if top == r => {}
                            other => {
                                return Err(DagError::UnbalancedFrame {
                                    thread: tid,
                                    detail: format!("exit({r:?}) over {other:?}"),
                                })
                            }
                        }
                        match registry().kind(r) {
                            RegionKind::Taskwait => {
                                for c in b.children_unjoined.remove(&current).unwrap_or_default()
                                {
                                    b.join_edges.push((c, v));
                                }
                            }
                            RegionKind::ImplicitBarrier | RegionKind::ExplicitBarrier => {
                                let k = b.barrier_count.entry((tid, r)).or_insert(0);
                                let occurrence = *k;
                                *k += 1;
                                b.barrier_exits
                                    .entry((r, occurrence))
                                    .or_default()
                                    .push((pre, v));
                            }
                            _ => {}
                        }
                    }
                    Event::CreateBegin {
                        create,
                        task_region: _,
                        id,
                    } => {
                        w.emit_interval(&mut b, current, None);
                        w.event_vertex(&mut b, current);
                        b.frames
                            .get_mut(&current)
                            .unwrap()
                            .push(Frame::Region(create));
                        b.children_unjoined.entry(current).or_default().push(id);
                        b.creator_thread.insert(id, tid);
                        *b.creates_by.entry(tid).or_insert(0) += 1;
                    }
                    Event::CreateEnd { create, id } => {
                        w.emit_interval(&mut b, current, None);
                        let v = w.event_vertex(&mut b, current);
                        match b.frames.get_mut(&current).unwrap().pop() {
                            Some(Frame::Region(top)) if top == create => {}
                            other => {
                                return Err(DagError::UnbalancedFrame {
                                    thread: tid,
                                    detail: format!("create_end({create:?}) over {other:?}"),
                                })
                            }
                        }
                        b.create_vertex.insert(id, v);
                    }
                    Event::TaskBegin { region, id } => {
                        let undeferred = !b.deferred.contains(&id);
                        let carved = if undeferred {
                            let carve = opts.undeferred_spawn_cost.map(|c| {
                                let attr = b
                                    .create_region_of
                                    .get(&region)
                                    .copied()
                                    .unwrap_or(SPAWN_REGION);
                                (c, attr)
                            });
                            let parent = current;
                            let carved = w.emit_interval(&mut b, parent, carve);
                            b.inline_parent.insert(id, parent);
                            b.children_unjoined.entry(parent).or_default().push(id);
                            b.creator_thread.insert(id, tid);
                            *b.creates_by.entry(tid).or_insert(0) += 1;
                            carved.or(b.task_last.get(&parent).copied())
                        } else {
                            w.emit_interval(&mut b, current, None);
                            None
                        };
                        let key = TaskKey::Explicit(id);
                        b.frames.insert(key, vec![Frame::Region(region)]);
                        let v = w.event_vertex(&mut b, key);
                        if undeferred {
                            if let Some(src) = carved {
                                b.logical_edge(src, v);
                            }
                        } else {
                            b.create_edges.push((id, v));
                        }
                        first_thread.insert(id, tid);
                        b.tasks += 1;
                        current = key;
                    }
                    Event::TaskEnd { region: _, id } | Event::TaskAbort { region: _, id } => {
                        let key = TaskKey::Explicit(id);
                        w.emit_interval(&mut b, key, None);
                        let v = w.event_vertex(&mut b, key);
                        b.end_vertex.insert(id, v);
                        if let Some(parent) = b.inline_parent.remove(&id) {
                            b.pending_join.entry(parent).or_default().push(v);
                        }
                        b.frames.remove(&key);
                        current = TaskKey::Implicit(tid);
                    }
                    Event::Switch(target) => {
                        w.emit_interval(&mut b, current, None);
                        let key = match target {
                            TaskRef::Implicit => TaskKey::Implicit(tid),
                            TaskRef::Explicit(id) => {
                                b.resumes += 1;
                                TaskKey::Explicit(id)
                            }
                        };
                        w.event_vertex(&mut b, key);
                        current = key;
                    }
                    Event::ParamBegin { .. } => {
                        w.emit_interval(&mut b, current, None);
                        w.event_vertex(&mut b, current);
                        b.frames.get_mut(&current).unwrap().push(Frame::Param);
                    }
                    Event::ParamEnd { param } => {
                        w.emit_interval(&mut b, current, None);
                        w.event_vertex(&mut b, current);
                        match b.frames.get_mut(&current).unwrap().pop() {
                            Some(Frame::Param) => {}
                            other => {
                                return Err(DagError::UnbalancedFrame {
                                    thread: tid,
                                    detail: format!("param_end({param:?}) over {other:?}"),
                                })
                            }
                        }
                    }
                }
            }
            // Trailing time between the last hook and thread end.
            w.emit_interval(&mut b, current, None);
        }

        // Resolve cross-thread creation edges.
        for (id, target) in std::mem::take(&mut b.create_edges) {
            let src = *b
                .create_vertex
                .get(&id)
                .ok_or(DagError::MissingTask { id, what: "creation" })?;
            b.logical_edge(src, target);
        }
        // Resolve taskwait joins.
        for (id, target) in std::mem::take(&mut b.join_edges) {
            let src = *b
                .end_vertex
                .get(&id)
                .ok_or(DagError::MissingTask { id, what: "completion" })?;
            b.logical_edge(src, target);
        }
        // Barrier synchronization: under the serialized simulation the
        // barrier releases only after every thread arrived and every
        // outstanding task completed, and everything a thread did before
        // exiting happened before the release — so every thread's last
        // pre-exit vertex precedes every thread's exit.
        for ((_, _), exits) in std::mem::take(&mut b.barrier_exits) {
            let pres: Vec<u32> = exits.iter().filter_map(|(pre, _)| *pre).collect();
            for &(_, exit) in &exits {
                for &pre in &pres {
                    b.logical_edge(pre, exit);
                }
            }
        }

        // Steal counting: a deferred task whose first fragment ran on a
        // different thread than its creator.
        let steals = first_thread
            .iter()
            .filter(|(id, tid)| b.creator_thread.get(id).is_some_and(|c| c != *tid) && b.deferred.contains(id))
            .count() as u64;

        let fragments = b.tasks + b.resumes;
        let threads = streams.len();
        let mut dag = TaskDag {
            nodes: b.nodes,
            preds: b.preds,
            sched_preds: b.sched_preds,
            topo: Vec::new(),
            threads,
            tasks: b.tasks,
            steals,
            fragments,
            creates_by: b.creates_by,
        };
        dag.topo = dag.toposort()?;
        Ok(dag)
    }

    /// Kahn's algorithm over the full (logical + schedule) graph.
    fn toposort(&self) -> Result<Vec<u32>, DagError> {
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, preds) in self.preds.iter().chain(self.sched_preds.iter()).enumerate() {
            let v = v % n; // chained iterator re-runs indices 0..n twice
            for &p in preds {
                succs[p as usize].push(v as u32);
                indegree[v] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indegree[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &succs[v as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(order)
    }

    /// Longest weighted path (finish times) under the given per-vertex
    /// weights. `with_sched` adds the thread-order edges (makespan);
    /// without them the result is the logical span.
    fn solve(&self, weights: &[u64], with_sched: bool) -> (Vec<u64>, u64) {
        let mut finish = vec![0u64; self.nodes.len()];
        let mut max = 0;
        for &v in &self.topo {
            let vi = v as usize;
            let mut start = 0;
            for &p in &self.preds[vi] {
                start = start.max(finish[p as usize]);
            }
            if with_sched {
                for &p in &self.sched_preds[vi] {
                    start = start.max(finish[p as usize]);
                }
            }
            finish[vi] = start + weights[vi];
            max = max.max(finish[vi]);
        }
        (finish, max)
    }

    fn weights(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.weight).collect()
    }

    fn scaled_weights(&self, region: RegionId, speedup: u64) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| {
                if n.attr == region && n.weight > 0 {
                    n.weight / speedup
                } else {
                    n.weight
                }
            })
            .collect()
    }

    /// Total work: the sum of all interval weights.
    pub fn work_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Logical critical path: the longest chain through program order,
    /// creation, join, and barrier edges — the runtime on infinitely many
    /// processors.
    pub fn span_ns(&self) -> u64 {
        self.solve(&self.weights(), false).1
    }

    /// Schedule-aware makespan: the longest chain when every fragment is
    /// additionally pinned after its thread's previous fragment — the
    /// modeled runtime of the observed schedule.
    pub fn makespan_ns(&self) -> u64 {
        self.solve(&self.weights(), true).1
    }

    /// Work / span: the parallelism ceiling. 1.0 for an empty DAG.
    pub fn parallelism(&self) -> f64 {
        let span = self.span_ns();
        if span == 0 {
            1.0
        } else {
            self.work_ns() as f64 / span as f64
        }
    }

    /// Number of team threads observed.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of explicit task instances.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Deferred tasks whose first fragment ran on a thread other than
    /// their creator's.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Task fragments: instances plus resumptions.
    pub fn fragments(&self) -> u64 {
        self.fragments
    }

    /// Work performed by each thread, indexed by position in the stream
    /// list (utilization = thread work / makespan).
    pub fn work_by_thread(&self) -> Vec<u64> {
        let mut acc = vec![0u64; self.threads];
        for n in &self.nodes {
            if n.weight > 0 && n.thread < acc.len() {
                acc[n.thread] += n.weight;
            }
        }
        acc
    }

    /// Per-region work, largest first.
    pub fn work_by_region(&self) -> Vec<(RegionId, u64)> {
        let mut acc: HashMap<RegionId, u64> = HashMap::new();
        for n in &self.nodes {
            if n.weight > 0 {
                *acc.entry(n.attr).or_insert(0) += n.weight;
            }
        }
        let mut rows: Vec<(RegionId, u64)> = acc.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Per-region time along one logical critical path (ties broken by
    /// topological order, deterministically).
    pub fn span_by_region(&self) -> Vec<(RegionId, u64)> {
        let weights = self.weights();
        let (finish, max) = self.solve(&weights, false);
        let mut acc: HashMap<RegionId, u64> = HashMap::new();
        if max > 0 {
            // Start from the smallest-index sink achieving the span.
            let mut v = (0..self.nodes.len()).find(|&v| finish[v] == max);
            while let Some(vi) = v {
                let n = &self.nodes[vi];
                if n.weight > 0 {
                    *acc.entry(n.attr).or_insert(0) += n.weight;
                }
                let need = finish[vi] - weights[vi];
                v = if need == 0 && self.preds[vi].is_empty() {
                    None
                } else {
                    self.preds[vi]
                        .iter()
                        .map(|&p| p as usize)
                        .find(|&p| finish[p] == need)
                };
                // A vertex whose start is 0 but has predecessors (all with
                // finish 0): still walk into one for determinism.
            }
        }
        let mut rows: Vec<(RegionId, u64)> = acc.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Tasks created per creator thread (for starvation detection).
    pub(crate) fn creates_by_thread(&self) -> &HashMap<usize, u64> {
        &self.creates_by
    }

    /// Answer "if `region` were `speedup`× faster, what would the
    /// runtime be?" by re-solving the DAG with every `region`-attributed
    /// fragment's weight divided by `speedup`.
    ///
    /// `predicted_makespan_ns` is the schedule-aware answer — the number
    /// a deterministic replay with the region actually sped up reproduces
    /// exactly (when every affected fragment weight is divisible by
    /// `speedup`); `predicted_span_ns` is the logical lower bound no
    /// schedule could beat.
    pub fn what_if(&self, region: RegionId, speedup: u64) -> crate::WhatIfPrediction {
        assert!(speedup >= 1, "speedup factor must be >= 1");
        let scaled = self.scaled_weights(region, speedup);
        let (_, makespan) = self.solve(&scaled, true);
        let (_, span) = self.solve(&scaled, false);
        crate::WhatIfPrediction {
            region,
            speedup,
            baseline_makespan_ns: self.makespan_ns(),
            predicted_makespan_ns: makespan,
            predicted_span_ns: span,
        }
    }

    /// Sum of weights currently attributed to `region`.
    pub fn region_work_ns(&self, region: RegionId) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.attr == region)
            .map(|n| n.weight)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};

    fn region(name: &str, kind: RegionKind) -> RegionId {
        registry().register(name, kind, file!(), line!())
    }

    /// Single thread, one deferred task executed at a taskwait:
    ///   implicit: 10ns work, create (40ns), taskwait { task: 25ns }, 5ns.
    fn one_thread_stream() -> (Vec<(usize, Vec<Event>)>, RegionId, RegionId, RegionId) {
        let par = region("dag-par", RegionKind::Parallel);
        let task = region("dag-task", RegionKind::Task);
        let create = region("dag-create", RegionKind::TaskCreate);
        let tw = region("dag-tw", RegionKind::Taskwait);
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let events = vec![
            Event::Advance(10),
            Event::CreateBegin {
                create,
                task_region: task,
                id,
            },
            Event::Advance(40),
            Event::CreateEnd { create, id },
            Event::Enter(tw),
            Event::TaskBegin { region: task, id },
            Event::Advance(25),
            Event::TaskEnd { region: task, id },
            Event::Exit(tw),
            Event::Advance(5),
        ];
        (vec![(0, events)], par, task, create)
    }

    #[test]
    fn single_thread_work_equals_span_equals_makespan() {
        let (streams, par, task, create) = one_thread_stream();
        let dag = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        assert_eq!(dag.work_ns(), 80);
        assert_eq!(dag.span_ns(), 80, "serial chain: span = work");
        assert_eq!(dag.makespan_ns(), 80);
        assert!((dag.parallelism() - 1.0).abs() < 1e-9);
        assert_eq!(dag.tasks(), 1);
        assert_eq!(dag.steals(), 0);
        assert_eq!(dag.region_work_ns(task), 25);
        assert_eq!(dag.region_work_ns(create), 40);
        assert_eq!(dag.region_work_ns(par), 15);
    }

    #[test]
    fn what_if_scales_only_the_target_region() {
        let (streams, par, task, create) = one_thread_stream();
        let dag = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        let p = dag.what_if(task, 5);
        assert_eq!(p.baseline_makespan_ns, 80);
        assert_eq!(p.predicted_makespan_ns, 80 - 25 + 5);
        let p = dag.what_if(create, 2);
        assert_eq!(p.predicted_makespan_ns, 80 - 20);
        let p = dag.what_if(task, 1);
        assert_eq!(p.predicted_makespan_ns, 80, "1x speedup is the identity");
    }

    #[test]
    fn stolen_task_overlaps_in_span_but_not_makespan() {
        // Thread 0 creates a task (40ns) then works 100ns; thread 1 steals
        // it and runs it for 60ns inside its barrier wait.
        let par = region("dag2-par", RegionKind::Parallel);
        let task = region("dag2-task", RegionKind::Task);
        let create = region("dag2-create", RegionKind::TaskCreate);
        let bar = region("dag2-bar", RegionKind::ImplicitBarrier);
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let s0 = vec![
            Event::CreateBegin {
                create,
                task_region: task,
                id,
            },
            Event::Advance(40),
            Event::CreateEnd { create, id },
            Event::Advance(100),
            Event::Enter(bar),
            Event::Exit(bar),
        ];
        let s1 = vec![
            Event::Enter(bar),
            Event::TaskBegin { region: task, id },
            Event::Advance(60),
            Event::TaskEnd { region: task, id },
            Event::Exit(bar),
        ];
        let dag =
            TaskDag::from_streams(&[(0, s0), (1, s1)], par, &DagOptions::default()).unwrap();
        assert_eq!(dag.work_ns(), 200);
        // Span: create(40) → task(60) → barrier vs create(40) → work(100)
        // → barrier: 140.
        assert_eq!(dag.span_ns(), 140);
        assert_eq!(dag.makespan_ns(), 140);
        assert_eq!(dag.steals(), 1);
        assert!(dag.parallelism() > 1.0);
        // Speeding up the task 60/6=10: span becomes the 140 chain still
        // (work chain dominates).
        let p = dag.what_if(task, 6);
        assert_eq!(p.predicted_makespan_ns, 140);
    }

    #[test]
    fn undeferred_carving_attributes_spawn_cost_to_create() {
        // Implicit task works 30, then runs an undeferred child (spawn
        // cost 40 charged into the open frame before task_begin).
        let par = region("dag3-par", RegionKind::Parallel);
        let task = region("dag3-task", RegionKind::Task);
        let create = region("dag3-create", RegionKind::TaskCreate);
        let ids = TaskIdAllocator::new();
        // Learn the construct's create region from a deferred sibling.
        let deferred_id = ids.alloc();
        let inline_id = ids.alloc();
        let bar = region("dag3-bar", RegionKind::ImplicitBarrier);
        let s0 = vec![
            Event::CreateBegin {
                create,
                task_region: task,
                id: deferred_id,
            },
            Event::Advance(40),
            Event::CreateEnd {
                create,
                id: deferred_id,
            },
            Event::Advance(70), // 30 work + 40 undeferred spawn cost
            Event::TaskBegin {
                region: task,
                id: inline_id,
            },
            Event::Advance(25),
            Event::TaskEnd {
                region: task,
                id: inline_id,
            },
            Event::Enter(bar),
            Event::TaskBegin {
                region: task,
                id: deferred_id,
            },
            Event::Advance(25),
            Event::TaskEnd {
                region: task,
                id: deferred_id,
            },
            Event::Exit(bar),
        ];
        let streams = vec![(0, s0)];
        let carved = TaskDag::from_streams(
            &streams,
            par,
            &DagOptions {
                undeferred_spawn_cost: Some(40),
            },
        )
        .unwrap();
        // 40 (deferred create) + 40 (carved undeferred) to the create
        // region; 30 work to the parallel region; 50 to the task region.
        assert_eq!(carved.region_work_ns(create), 80);
        assert_eq!(carved.region_work_ns(par), 30);
        assert_eq!(carved.region_work_ns(task), 50);
        // Without carving, the spawn cost pollutes the parallel region.
        let uncarved = TaskDag::from_streams(&streams, par, &DagOptions::default()).unwrap();
        assert_eq!(uncarved.region_work_ns(create), 40);
        assert_eq!(uncarved.region_work_ns(par), 70);
    }

    #[test]
    fn taskwait_join_orders_children_before_continuation() {
        // Two deferred children run on thread 1 while thread 0 waits; the
        // waiter's post-taskwait work must start after both children.
        let par = region("dag4-par", RegionKind::Parallel);
        let task = region("dag4-task", RegionKind::Task);
        let create = region("dag4-create", RegionKind::TaskCreate);
        let tw = region("dag4-tw", RegionKind::Taskwait);
        let bar = region("dag4-bar", RegionKind::ImplicitBarrier);
        let ids = TaskIdAllocator::new();
        let (a, c) = (ids.alloc(), ids.alloc());
        let s0 = vec![
            Event::CreateBegin {
                create,
                task_region: task,
                id: a,
            },
            Event::Advance(10),
            Event::CreateEnd { create, id: a },
            Event::CreateBegin {
                create,
                task_region: task,
                id: c,
            },
            Event::Advance(10),
            Event::CreateEnd { create, id: c },
            Event::Enter(tw),
            Event::Exit(tw),
            Event::Advance(7),
            Event::Enter(bar),
            Event::Exit(bar),
        ];
        let s1 = vec![
            Event::Enter(bar),
            Event::TaskBegin { region: task, id: a },
            Event::Advance(100),
            Event::TaskEnd { region: task, id: a },
            Event::TaskBegin { region: task, id: c },
            Event::Advance(50),
            Event::TaskEnd { region: task, id: c },
            Event::Exit(bar),
        ];
        let dag =
            TaskDag::from_streams(&[(0, s0), (1, s1)], par, &DagOptions::default()).unwrap();
        // Logical span: create a (10) → a (100) → taskwait exit → 7 = 117
        // (a does not depend on c's creation; c's chain 10+10+50+7 is
        // shorter).
        assert_eq!(dag.span_ns(), 117);
        // Makespan serializes a and c on thread 1: a starts at 10, ends
        // 110; c ends 160; the post-taskwait 7ns waits for both children:
        // 160 + 7 = 167.
        assert_eq!(dag.makespan_ns(), 167);
        assert_eq!(dag.work_ns(), 177);
    }

    #[test]
    fn missing_creation_is_a_typed_error() {
        let par = region("dag5-par", RegionKind::Parallel);
        let task = region("dag5-task", RegionKind::Task);
        let create = region("dag5-create", RegionKind::TaskCreate);
        let ids = TaskIdAllocator::new();
        let (a, ghost) = (ids.alloc(), ids.alloc());
        // `a` is announced but the taskwait joins `ghost`, which never ends.
        let tw = region("dag5-tw", RegionKind::Taskwait);
        let s0 = vec![
            Event::CreateBegin {
                create,
                task_region: task,
                id: a,
            },
            Event::CreateEnd { create, id: a },
            Event::CreateBegin {
                create,
                task_region: task,
                id: ghost,
            },
            Event::CreateEnd { create, id: ghost },
            Event::Enter(tw),
            Event::TaskBegin { region: task, id: a },
            Event::TaskEnd { region: task, id: a },
            Event::Exit(tw),
        ];
        let err = TaskDag::from_streams(&[(0, s0)], par, &DagOptions::default()).unwrap_err();
        assert!(matches!(err, DagError::MissingTask { what: "completion", .. }));
        assert!(err.to_string().contains("missing completion"), "{err}");
    }

    #[test]
    fn unbalanced_exit_is_a_typed_error() {
        let par = region("dag6-par", RegionKind::Parallel);
        let r = region("dag6-r", RegionKind::Function);
        let s0 = vec![Event::Exit(r)];
        let err = TaskDag::from_streams(&[(0, s0)], par, &DagOptions::default()).unwrap_err();
        assert!(matches!(err, DagError::UnbalancedFrame { thread: 0, .. }), "{err:?}");
    }
}
