//! `critpath` — causal critical-path analysis for task profiles.
//!
//! The call-path profiles of the parent crates say *where* time went; this
//! crate answers whether optimizing a region would actually *help*. It
//! consumes the per-thread event streams the profiler already sees (the
//! same [`taskprof::Event`] language the replayer speaks), reconstructs
//! the task creation/join DAG of the run, and computes the three numbers
//! of classic work/span analysis (TASKPROF, arXiv 1705.01522):
//!
//! * **work** — total time spent across all threads,
//! * **span** — the longest dependency chain (creation, taskwait joins,
//!   barriers, per-task program order): the runtime on infinitely many
//!   processors,
//! * **parallelism** = work / span — the speedup ceiling no scheduler can
//!   beat.
//!
//! On top of the DAG sits a **what-if engine**: "if region R were K×
//! faster, what would the runtime be?" is answered by scaling the weight
//! of every R-attributed fragment by 1/K and re-solving the DAG — both
//! the logical span and the *schedule-aware* makespan (the DAG plus
//! thread-order edges pinning each fragment to the thread that actually
//! ran it). Under the deterministic `simsched` virtual clock the
//! schedule-aware prediction is not an estimate: replaying the same seed
//! with the region actually sped up reproduces it exactly, because the
//! simulation scheduler's decisions are purely structural — clock values
//! never feed back into scheduling (see `simsched::whatif`).
//!
//! The entry point is [`TaskDag::from_streams`]; [`TaskDag::report`]
//! produces the plain [`CritPathReport`] (including detrimental-pattern
//! flags: single-creator starvation, steal storms), and
//! [`TaskDag::what_if`] answers speedup queries.

#![warn(missing_docs)]

mod dag;
mod report;

pub use dag::{DagError, DagOptions, TaskDag, SPAWN_REGION};
pub use report::{CritPathReport, DetrimentalFlag, RegionRow, WhatIfPrediction};
