//! Trace-based task analysis — the paper's Section VII proposals.
//!
//! A call-path profile cannot tell whether time at a synchronization
//! point was *management* (the runtime shuffling task queues) or
//! *waiting* (no runnable task). The trace can: the paper suggests
//! measuring "the time between the enter of the last synchronization
//! point and the task switch event" and "the ratio of overall management
//! time to exclusive execution time for tasks". [`analyze`] computes:
//!
//! * per scheduling-point-kind dwell decomposition: total dwell, task
//!   execution inside, time from entering the point to the *first* task
//!   switch (the management indicator), and fragment counts,
//! * per-instance creation-to-start queue latency and fragment counts,
//! * the global management-to-work ratio.

use crate::event::{EventKind, Trace, TraceEvent};
use pomp::{registry, RegionId, RegionKind, TaskId, TaskRef};
use std::collections::HashMap;

/// Dwell decomposition of one scheduling-point kind (aggregated over all
/// intervals of that kind on all threads).
#[derive(Clone, Copy, Debug)]
pub struct SchedulingPointBreakdown {
    /// The scheduling-point kind (taskwait, implicit/explicit barrier,
    /// task creation).
    pub kind: RegionKind,
    /// Number of enter/exit intervals observed.
    pub intervals: u64,
    /// Total time spent inside, ns.
    pub dwell_ns: u64,
    /// Of which: executing task fragments, ns.
    pub task_exec_ns: u64,
    /// Of which: between entering the point and the first task switch
    /// (or the whole dwell if no task ran) — the paper's estimator for
    /// management/wait time before useful work resumes, ns.
    pub pre_switch_ns: u64,
    /// Task fragments started or resumed inside.
    pub fragments: u64,
}

/// Lifecycle data of one task instance.
#[derive(Clone, Copy, Debug)]
pub struct InstanceLatency {
    /// Instance id.
    pub id: TaskId,
    /// Task construct.
    pub region: RegionId,
    /// Creation-completion to execution-start latency (None if the
    /// creation was not in the trace), ns.
    pub queue_ns: Option<u64>,
    /// Begin-to-end wall span (includes suspensions), ns.
    pub span_ns: u64,
    /// Number of execution fragments (1 = never suspended).
    pub fragments: u32,
}

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Per-kind scheduling-point decomposition.
    pub by_kind: Vec<SchedulingPointBreakdown>,
    /// Per-instance lifecycle data, in begin order.
    pub instances: Vec<InstanceLatency>,
    /// Total explicit-task execution time across threads, ns.
    pub total_task_exec_ns: u64,
    /// Total task-creation dwell, ns.
    pub total_creation_ns: u64,
    /// Total non-executing time inside top-level scheduling points, ns.
    pub total_sched_nonexec_ns: u64,
    /// Total task switches (begin/resume events).
    pub switches: u64,
    /// (creation + scheduling-point non-exec) / task execution — the
    /// paper's management-to-work ratio. `f64::INFINITY` with no work.
    pub management_to_work_ratio: f64,
}

struct OpenInterval {
    region: RegionId,
    enter_t: u64,
    task_exec_ns: u64,
    first_switch: Option<u64>,
    fragments: u64,
    top_level: bool,
}

#[derive(Default)]
struct KindAcc {
    intervals: u64,
    dwell_ns: u64,
    task_exec_ns: u64,
    pre_switch_ns: u64,
    fragments: u64,
}

/// Analyze a trace.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let reg = registry();
    let mut by_kind: HashMap<RegionKind, KindAcc> = HashMap::new();
    // Pre-pass: collect creation times globally — a task may be created
    // on a thread the per-thread sweep below visits *after* the one that
    // executed it.
    let created: HashMap<TaskId, u64> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskCreateEnd(_, id) => Some((id, e.t)),
            _ => None,
        })
        .collect();
    let mut begun: HashMap<TaskId, (RegionId, u64, u32)> = HashMap::new();
    let mut instances: Vec<InstanceLatency> = Vec::new();
    let mut total_task_exec = 0u64;
    let mut total_creation = 0u64;
    let mut total_sched_nonexec = 0u64;
    let mut switches = 0u64;

    for tid in 0..trace.nthreads.max(1) {
        let mut open: Vec<OpenInterval> = Vec::new();
        let mut exec_since: Option<u64> = None;
        let mut create_since: Option<u64> = None;

        let mut close_exec = |t: u64, open: &mut Vec<OpenInterval>, exec_since: &mut Option<u64>| {
            if let Some(since) = exec_since.take() {
                let d = t - since;
                total_task_exec += d;
                for iv in open.iter_mut() {
                    iv.task_exec_ns += d;
                }
            }
        };
        let mut mark_switch_in = |t: u64, open: &mut Vec<OpenInterval>| {
            switches += 1;
            for iv in open.iter_mut() {
                iv.first_switch.get_or_insert(t);
                iv.fragments += 1;
            }
        };

        for &TraceEvent { t, kind, .. } in trace.thread(tid) {
            match kind {
                EventKind::Enter(r) => {
                    if reg.kind(r).is_scheduling_point() {
                        open.push(OpenInterval {
                            region: r,
                            enter_t: t,
                            task_exec_ns: 0,
                            first_switch: None,
                            fragments: 0,
                            top_level: open.is_empty(),
                        });
                    }
                }
                EventKind::Exit(r) => {
                    if reg.kind(r).is_scheduling_point() {
                        let iv = open.pop().expect("unbalanced scheduling point");
                        debug_assert_eq!(iv.region, r);
                        // Account a still-running fragment's share so far
                        // (fragment continues past the exit only for
                        // malformed traces; real exits happen outside
                        // execution or after fragment end).
                        let dwell = t - iv.enter_t;
                        let acc = by_kind.entry(reg.kind(r)).or_default();
                        acc.intervals += 1;
                        acc.dwell_ns += dwell;
                        acc.task_exec_ns += iv.task_exec_ns;
                        acc.pre_switch_ns += iv.first_switch.unwrap_or(t) - iv.enter_t;
                        acc.fragments += iv.fragments;
                        if iv.top_level {
                            total_sched_nonexec += dwell.saturating_sub(iv.task_exec_ns);
                        }
                    }
                }
                EventKind::TaskCreateBegin(..) => {
                    create_since = Some(t);
                }
                EventKind::TaskCreateEnd(_, id) => {
                    if let Some(since) = create_since.take() {
                        total_creation += t - since;
                    }
                    let _ = id; // creation times were collected in the pre-pass
                }
                EventKind::TaskBegin(r, id) => {
                    // A running task suspends implicitly when another
                    // begins; execution time on this thread continues.
                    if exec_since.is_none() {
                        exec_since = Some(t);
                    }
                    mark_switch_in(t, &mut open);
                    begun.insert(id, (r, t, 1));
                }
                EventKind::TaskEnd(_, id) => {
                    close_exec(t, &mut open, &mut exec_since);
                    if let Some((region, begin_t, fragments)) = begun.remove(&id) {
                        instances.push(InstanceLatency {
                            id,
                            region,
                            queue_ns: created.get(&id).map(|c| begin_t.saturating_sub(*c)),
                            span_ns: t - begin_t,
                            fragments,
                        });
                    }
                }
                EventKind::TaskSwitch(TaskRef::Explicit(id)) => {
                    if exec_since.is_none() {
                        exec_since = Some(t);
                    }
                    mark_switch_in(t, &mut open);
                    if let Some(e) = begun.get_mut(&id) {
                        e.2 += 1;
                    }
                }
                EventKind::TaskSwitch(TaskRef::Implicit) => {
                    close_exec(t, &mut open, &mut exec_since);
                }
                EventKind::ParamBegin(..) | EventKind::ParamEnd(_) => {}
            }
        }
    }

    let mut by_kind: Vec<SchedulingPointBreakdown> = by_kind
        .into_iter()
        .map(|(kind, a)| SchedulingPointBreakdown {
            kind,
            intervals: a.intervals,
            dwell_ns: a.dwell_ns,
            task_exec_ns: a.task_exec_ns,
            pre_switch_ns: a.pre_switch_ns,
            fragments: a.fragments,
        })
        .collect();
    by_kind.sort_by_key(|b| std::cmp::Reverse(b.dwell_ns));
    instances.sort_by_key(|i| i.id);

    let management = total_creation + total_sched_nonexec;
    let ratio = if total_task_exec == 0 {
        f64::INFINITY
    } else {
        management as f64 / total_task_exec as f64
    };
    TraceAnalysis {
        by_kind,
        instances,
        total_task_exec_ns: total_task_exec,
        total_creation_ns: total_creation,
        total_sched_nonexec_ns: total_sched_nonexec,
        switches,
        management_to_work_ratio: ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::TaskIdAllocator;

    fn regs() -> (RegionId, RegionId, RegionId, RegionId) {
        let reg = registry();
        (
            reg.register("an-par", RegionKind::Parallel, "t", 0),
            reg.register("an-task", RegionKind::Task, "t", 0),
            reg.register("an-create", RegionKind::TaskCreate, "t", 0),
            reg.register("an-bar", RegionKind::ImplicitBarrier, "t", 0),
        )
    }

    #[test]
    fn barrier_breakdown_and_queue_latency() {
        let (_par, task, create, barrier) = regs();
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let ev = |t, kind| TraceEvent { t, tid: 0, kind };
        let trace = Trace {
            events: vec![
                ev(0, EventKind::TaskCreateBegin(create, task, id)),
                ev(3, EventKind::TaskCreateEnd(create, id)),
                ev(10, EventKind::Enter(barrier)),
                ev(14, EventKind::TaskBegin(task, id)), // 4 ns pre-switch
                ev(30, EventKind::TaskEnd(task, id)),   // 16 ns exec
                ev(36, EventKind::Exit(barrier)),       // 26 dwell, 10 non-exec
            ],
            nthreads: 1,
        };
        let a = analyze(&trace);
        assert_eq!(a.total_creation_ns, 3);
        assert_eq!(a.total_task_exec_ns, 16);
        assert_eq!(a.total_sched_nonexec_ns, 10);
        assert_eq!(a.switches, 1);
        let b = a
            .by_kind
            .iter()
            .find(|b| b.kind == RegionKind::ImplicitBarrier)
            .unwrap();
        assert_eq!(b.intervals, 1);
        assert_eq!(b.dwell_ns, 26);
        assert_eq!(b.task_exec_ns, 16);
        assert_eq!(b.pre_switch_ns, 4);
        assert_eq!(b.fragments, 1);
        assert_eq!(a.instances.len(), 1);
        let i = &a.instances[0];
        assert_eq!(i.queue_ns, Some(11)); // created at 3, begun at 14
        assert_eq!(i.span_ns, 16);
        assert_eq!(i.fragments, 1);
        let want = (3 + 10) as f64 / 16.0;
        assert!((a.management_to_work_ratio - want).abs() < 1e-12);
    }

    #[test]
    fn fragments_counted_across_suspension() {
        let (_par, task, _create, barrier) = regs();
        let ids = TaskIdAllocator::new();
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let ev = |t, kind| TraceEvent { t, tid: 0, kind };
        let trace = Trace {
            events: vec![
                ev(0, EventKind::Enter(barrier)),
                ev(2, EventKind::TaskBegin(task, t1)),
                ev(5, EventKind::TaskBegin(task, t2)), // t1 suspends
                ev(9, EventKind::TaskEnd(task, t2)),
                ev(9, EventKind::TaskSwitch(TaskRef::Explicit(t1))),
                ev(12, EventKind::TaskEnd(task, t1)),
                ev(15, EventKind::Exit(barrier)),
            ],
            nthreads: 1,
        };
        let a = analyze(&trace);
        let i1 = a.instances.iter().find(|i| i.id == t1).unwrap();
        assert_eq!(i1.fragments, 2);
        assert_eq!(i1.span_ns, 10);
        let i2 = a.instances.iter().find(|i| i.id == t2).unwrap();
        assert_eq!(i2.fragments, 1);
        // exec: 2..9 continuous (7) + 9..12 (3) = 10.
        assert_eq!(a.total_task_exec_ns, 10);
        assert_eq!(a.switches, 3);
        let b = &a.by_kind[0];
        assert_eq!(b.fragments, 3);
        assert_eq!(b.pre_switch_ns, 2);
    }

    #[test]
    fn empty_trace_yields_infinite_ratio() {
        let a = analyze(&Trace::default());
        assert!(a.management_to_work_ratio.is_infinite());
        assert!(a.instances.is_empty());
    }
}
