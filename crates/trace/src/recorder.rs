//! The trace-recording monitor.

use crate::event::{EventKind, Trace, TraceEvent};
use parking_lot::Mutex;
use pomp::{Clock, Monitor, MonotonicClock, ParamId, RegionId, TaskId, TaskRef, ThreadHooks};
use std::cell::RefCell;
use std::sync::Arc;

struct Inner<C> {
    clock: C,
    collected: Mutex<Vec<Vec<TraceEvent>>>,
    nthreads: Mutex<usize>,
}

/// Records a full task event trace. Attach alongside a profiler with the
/// pair monitor: `let m = (ProfMonitor::new(), TraceMonitor::new());`.
pub struct TraceMonitor<C: Clock = MonotonicClock> {
    inner: Arc<Inner<C>>,
}

impl Default for TraceMonitor<MonotonicClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceMonitor<MonotonicClock> {
    /// Recorder with the monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::new())
    }
}

impl<C: Clock> TraceMonitor<C> {
    /// Recorder over an arbitrary clock.
    pub fn with_clock(clock: C) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                collected: Mutex::new(Vec::new()),
                nthreads: Mutex::new(0),
            }),
        }
    }

    /// Drain the recorded trace (events of all threads, thread-major).
    pub fn take_trace(&self) -> Trace {
        let mut buffers = std::mem::take(&mut *self.inner.collected.lock());
        buffers.sort_by_key(|b| b.first().map_or(0, |e| e.tid));
        Trace {
            events: buffers.into_iter().flatten().collect(),
            nthreads: *self.inner.nthreads.lock(),
        }
    }
}

/// Per-thread trace buffer.
pub struct TraceThread<C: Clock> {
    inner: Arc<Inner<C>>,
    tid: usize,
    buf: RefCell<Vec<TraceEvent>>,
}

impl<C: Clock> TraceThread<C> {
    #[inline]
    fn push(&self, kind: EventKind) {
        let t = self.inner.clock.now();
        self.buf.borrow_mut().push(TraceEvent {
            t,
            tid: self.tid,
            kind,
        });
    }
}

impl<C: Clock + 'static> Monitor for TraceMonitor<C> {
    type Thread = TraceThread<C>;

    fn parallel_fork(&self, _region: RegionId, nthreads: usize) {
        *self.inner.nthreads.lock() = nthreads;
    }

    fn thread_begin(&self, tid: usize, nthreads: usize, _region: RegionId) -> TraceThread<C> {
        *self.inner.nthreads.lock() = nthreads;
        TraceThread {
            inner: self.inner.clone(),
            tid,
            buf: RefCell::new(Vec::with_capacity(1024)),
        }
    }

    fn thread_end(&self, _tid: usize, thread: TraceThread<C>) {
        self.inner.collected.lock().push(thread.buf.into_inner());
    }
}

impl<C: Clock> ThreadHooks for TraceThread<C> {
    #[inline]
    fn enter(&self, region: RegionId) {
        self.push(EventKind::Enter(region));
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        self.push(EventKind::Exit(region));
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        self.push(EventKind::TaskCreateBegin(create_region, task_region, new_task));
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        self.push(EventKind::TaskCreateEnd(create_region, new_task));
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        self.push(EventKind::TaskBegin(task_region, task));
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        self.push(EventKind::TaskEnd(task_region, task));
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        self.push(EventKind::TaskSwitch(resumed));
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        self.push(EventKind::ParamBegin(param, value));
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        self.push(EventKind::ParamEnd(param));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator, VirtualClock};

    #[test]
    fn records_ordered_events_per_thread() {
        let reg = pomp::registry();
        let par = reg.register("rec-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("rec-task", RegionKind::Task, "t", 0);
        let m = TraceMonitor::with_clock(VirtualClock::new());
        let ids = TaskIdAllocator::new();
        let th = m.thread_begin(0, 1, par);
        let id = ids.alloc();
        m.inner.clock.set(3);
        th.task_begin(task, id);
        m.inner.clock.set(9);
        th.task_end(task, id);
        m.thread_end(0, th);
        let trace = m.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].t, 3);
        assert!(matches!(trace.events[0].kind, EventKind::TaskBegin(_, _)));
        assert_eq!(trace.events[1].t, 9);
        assert_eq!(trace.nthreads, 1);
        // Drained.
        assert!(m.take_trace().is_empty());
    }
}
