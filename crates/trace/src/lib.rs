//! `taskprof-trace` — OTF2-style event tracing and trace-based task
//! analysis.
//!
//! The paper's Section VII names trace analysis as the missing piece:
//! profiles cannot distinguish whether time at a synchronization point is
//! *management* overhead or *waiting* for task completion, and suggests
//! that "the time between the enter of the last synchronization point and
//! the task switch event would be of interest", as well as "the ratio of
//! overall management time to exclusive execution time for tasks".
//!
//! This crate implements that future work:
//!
//! * [`TraceMonitor`] records a timestamped per-thread event trace through
//!   the same `pomp` hooks the profiler uses (attach both at once with the
//!   `(A, B)` pair monitor),
//! * [`analysis`] computes the paper's proposed metrics: scheduling-point
//!   dwell decomposition (pre-switch management vs. task execution vs.
//!   residual waiting), creation-to-start queue latencies, fragments per
//!   instance, and the management-to-work ratio.

#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod recorder;
pub mod store;

pub use analysis::{analyze, InstanceLatency, SchedulingPointBreakdown, TraceAnalysis};
pub use event::{EventKind, Trace, TraceEvent};
pub use recorder::TraceMonitor;
pub use store::{read_trace, write_trace, ParseError};
