//! Plain-text trace persistence (the OTF2-archive analogue).
//!
//! Traces can be written to disk right after a run and analyzed offline
//! (or diffed, or replayed into the profiler later). The format is
//! line-oriented: one event per line, region/parameter names stored by
//! name+kind and re-interned on load.

use crate::event::{EventKind, Trace, TraceEvent};
use pomp::{registry, RegionId, RegionKind, TaskId, TaskRef};

/// Format version tag.
const MAGIC: &str = "taskprof-trace v1";

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token; 0 when the whole line (or
    /// the file as such) is at fault.
    pub column: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "trace parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "trace parse error at line {}: {}", self.line, self.message)
        }
    }
}

/// 1-based column of `tok` within `raw` (`tok` must be a sub-slice of
/// `raw`, as produced by `split_whitespace`).
fn col_of(raw: &str, tok: &str) -> usize {
    tok.as_ptr() as usize - raw.as_ptr() as usize + 1
}

impl std::error::Error for ParseError {}

fn kind_tag(kind: RegionKind) -> &'static str {
    match kind {
        RegionKind::Function => "function",
        RegionKind::Parallel => "parallel",
        RegionKind::Task => "task",
        RegionKind::TaskCreate => "create",
        RegionKind::Taskwait => "taskwait",
        RegionKind::ImplicitBarrier => "ibarrier",
        RegionKind::ExplicitBarrier => "barrier",
        RegionKind::Single => "single",
        RegionKind::Workshare => "for",
        RegionKind::Critical => "critical",
        RegionKind::User => "user",
    }
}

fn kind_from_tag(tag: &str) -> Option<RegionKind> {
    Some(match tag {
        "function" => RegionKind::Function,
        "parallel" => RegionKind::Parallel,
        "task" => RegionKind::Task,
        "create" => RegionKind::TaskCreate,
        "taskwait" => RegionKind::Taskwait,
        "ibarrier" => RegionKind::ImplicitBarrier,
        "barrier" => RegionKind::ExplicitBarrier,
        "single" => RegionKind::Single,
        "for" => RegionKind::Workshare,
        "critical" => RegionKind::Critical,
        "user" => RegionKind::User,
        _ => return None,
    })
}

// Region names are percent-escaped so they fit in one whitespace-split
// token.
fn esc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b' ' | b'%' | b'\n' | b'\t' => out.push_str(&format!("%{b:02X}")),
            _ => out.push(b as char),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(v) = s
                .get(i + 1..i + 3)
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
            {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn region_token(r: RegionId) -> String {
    let reg = registry();
    let info = reg.info(r);
    format!("{}:{}", kind_tag(info.kind), esc(&info.name))
}

/// Serialize a trace to text.
pub fn write_trace(trace: &Trace) -> String {
    use std::fmt::Write;
    let reg = registry();
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "threads {}", trace.nthreads);
    for e in &trace.events {
        let body = match e.kind {
            EventKind::Enter(r) => format!("enter {}", region_token(r)),
            EventKind::Exit(r) => format!("exit {}", region_token(r)),
            EventKind::TaskCreateBegin(c, tr, id) => format!(
                "create-begin {} {} {}",
                region_token(c),
                region_token(tr),
                id.get()
            ),
            EventKind::TaskCreateEnd(c, id) => {
                format!("create-end {} {}", region_token(c), id.get())
            }
            EventKind::TaskBegin(r, id) => {
                format!("task-begin {} {}", region_token(r), id.get())
            }
            EventKind::TaskEnd(r, id) => format!("task-end {} {}", region_token(r), id.get()),
            EventKind::TaskSwitch(TaskRef::Implicit) => "switch implicit".to_string(),
            EventKind::TaskSwitch(TaskRef::Explicit(id)) => format!("switch {}", id.get()),
            EventKind::ParamBegin(p, v) => {
                format!("param-begin {} {v}", esc(&reg.param_name(p)))
            }
            EventKind::ParamEnd(p) => format!("param-end {}", esc(&reg.param_name(p))),
        };
        let _ = writeln!(out, "{} {} {}", e.t, e.tid, body);
    }
    out
}

fn parse_region(line: usize, column: usize, tok: &str) -> Result<RegionId, ParseError> {
    let (ktag, name) = tok.split_once(':').ok_or(ParseError {
        line,
        column,
        message: format!("malformed region token '{tok}'"),
    })?;
    let kind = kind_from_tag(ktag).ok_or(ParseError {
        line,
        column,
        message: format!("unknown region kind '{ktag}'"),
    })?;
    Ok(registry().register(&unesc(name), kind, "loaded-trace", 0))
}

fn parse_task(line: usize, column: usize, tok: &str) -> Result<TaskId, ParseError> {
    tok.parse::<u64>()
        .ok()
        .and_then(TaskId::from_raw)
        .ok_or(ParseError {
            line,
            column,
            message: format!("bad task id '{tok}'"),
        })
}

/// Parse a trace from text.
pub fn read_trace(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == MAGIC => {}
        other => {
            return Err(ParseError {
                line: other.map_or(0, |(n, _)| n + 1),
                column: 0,
                message: "bad magic".into(),
            })
        }
    }
    let nthreads = match lines.next() {
        Some((n, l)) => l
            .trim()
            .strip_prefix("threads ")
            .and_then(|v| v.parse().ok())
            .ok_or(ParseError {
                line: n + 1,
                column: 0,
                message: "expected 'threads <n>'".into(),
            })?,
        None => {
            return Err(ParseError {
                line: 2,
                column: 0,
                message: "missing thread count".into(),
            })
        }
    };
    let reg = registry();
    let mut events = Vec::new();
    for (n, raw) in lines {
        let line = n + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = raw.split_whitespace().collect();
        let err = |m: &str| ParseError {
            line,
            column: 0,
            message: m.to_string(),
        };
        let err_at = |tok: &str, m: &str| ParseError {
            line,
            column: col_of(raw, tok),
            message: m.to_string(),
        };
        if toks.len() < 3 {
            return Err(err("truncated event line"));
        }
        let t: u64 = toks[0]
            .parse()
            .map_err(|_| err_at(toks[0], "bad timestamp"))?;
        let tid: usize = toks[1].parse().map_err(|_| err_at(toks[1], "bad tid"))?;
        let col = |tok: &str| col_of(raw, tok);
        let kind = match (toks[2], &toks[3..]) {
            ("enter", [r]) => EventKind::Enter(parse_region(line, col(r), r)?),
            ("exit", [r]) => EventKind::Exit(parse_region(line, col(r), r)?),
            ("create-begin", [c, tr, id]) => EventKind::TaskCreateBegin(
                parse_region(line, col(c), c)?,
                parse_region(line, col(tr), tr)?,
                parse_task(line, col(id), id)?,
            ),
            ("create-end", [c, id]) => EventKind::TaskCreateEnd(
                parse_region(line, col(c), c)?,
                parse_task(line, col(id), id)?,
            ),
            ("task-begin", [r, id]) => EventKind::TaskBegin(
                parse_region(line, col(r), r)?,
                parse_task(line, col(id), id)?,
            ),
            ("task-end", [r, id]) => EventKind::TaskEnd(
                parse_region(line, col(r), r)?,
                parse_task(line, col(id), id)?,
            ),
            ("switch", ["implicit"]) => EventKind::TaskSwitch(TaskRef::Implicit),
            ("switch", [id]) => {
                EventKind::TaskSwitch(TaskRef::Explicit(parse_task(line, col(id), id)?))
            }
            ("param-begin", [p, v]) => EventKind::ParamBegin(
                reg.register_param(&unesc(p)),
                v.parse().map_err(|_| err_at(v, "bad param value"))?,
            ),
            ("param-end", [p]) => EventKind::ParamEnd(reg.register_param(&unesc(p))),
            _ => return Err(err_at(toks[2], "unknown event")),
        };
        events.push(TraceEvent { t, tid, kind });
    }
    Ok(Trace { events, nthreads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::TaskIdAllocator;

    fn sample() -> Trace {
        let reg = registry();
        let task = reg.register("ts store task", RegionKind::Task, "t", 0);
        let create = reg.register("ts!create", RegionKind::TaskCreate, "t", 0);
        let bar = reg.register("ts!bar", RegionKind::ImplicitBarrier, "t", 0);
        let p = reg.register_param("ts depth");
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let ev = |t, tid, kind| TraceEvent { t, tid, kind };
        Trace {
            events: vec![
                ev(0, 0, EventKind::TaskCreateBegin(create, task, id)),
                ev(2, 0, EventKind::TaskCreateEnd(create, id)),
                ev(3, 0, EventKind::Enter(bar)),
                ev(4, 1, EventKind::TaskBegin(task, id)),
                ev(5, 1, EventKind::ParamBegin(p, -3)),
                ev(8, 1, EventKind::ParamEnd(p)),
                ev(9, 1, EventKind::TaskEnd(task, id)),
                ev(9, 1, EventKind::TaskSwitch(TaskRef::Implicit)),
                ev(10, 0, EventKind::Exit(bar)),
            ],
            nthreads: 2,
        }
    }

    #[test]
    fn round_trip_preserves_events() {
        let t = sample();
        let text = write_trace(&t);
        let u = read_trace(&text).expect("parse");
        assert_eq!(u.nthreads, 2);
        assert_eq!(u.len(), t.len());
        for (a, b) in t.events.iter().zip(&u.events) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.tid, b.tid);
            assert_eq!(a.kind, b.kind);
        }
        // Stable: second serialization identical.
        assert_eq!(text, write_trace(&u));
    }

    #[test]
    fn analysis_equal_before_and_after_store() {
        let t = sample();
        let u = read_trace(&write_trace(&t)).unwrap();
        let a = crate::analyze(&t);
        let b = crate::analyze(&u);
        assert_eq!(a.total_task_exec_ns, b.total_task_exec_ns);
        assert_eq!(a.total_creation_ns, b.total_creation_ns);
        assert_eq!(a.instances.len(), b.instances.len());
    }

    #[test]
    fn names_with_spaces_survive() {
        let t = sample();
        let text = write_trace(&t);
        assert!(text.contains("ts%20store%20task"));
        let u = read_trace(&text).unwrap();
        let has_name = u.events.iter().any(|e| {
            matches!(e.kind, EventKind::TaskBegin(r, _)
                if registry().name(r) == "ts store task")
        });
        assert!(has_name);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_trace("").is_err());
        assert!(read_trace("taskprof-trace v1\nthreads nope").is_err());
        assert!(read_trace("taskprof-trace v1\nthreads 1\n5 0 frobnicate x").is_err());
        assert!(read_trace("taskprof-trace v1\nthreads 1\n5 0 enter notakind:x").is_err());
    }

    #[test]
    fn errors_carry_position_context() {
        let e = read_trace("taskprof-trace v1\nthreads 1\n5 0 enter notakind:x").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.column, 11, "column of the offending region token");
        let shown = e.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("column 11"), "{shown}");

        let e = read_trace("taskprof-trace v1\nthreads 1\nbogus 0 enter user:x").unwrap_err();
        assert_eq!((e.line, e.column), (3, 1), "bad timestamp at column 1");

        let e = read_trace("taskprof-trace v1\nthreads 1\n5 0 task-end user:x 0").unwrap_err();
        assert_eq!((e.line, e.column), (3, 21), "task id 0 is invalid");
    }
}
