//! Trace event model.

use pomp::{ParamId, RegionId, TaskId, TaskRef};

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Region entered.
    Enter(RegionId),
    /// Region exited.
    Exit(RegionId),
    /// Deferred task creation began (creation region, construct, id).
    TaskCreateBegin(RegionId, RegionId, TaskId),
    /// Deferred task creation finished.
    TaskCreateEnd(RegionId, TaskId),
    /// Task instance began executing.
    TaskBegin(RegionId, TaskId),
    /// Task instance completed.
    TaskEnd(RegionId, TaskId),
    /// Current task switched (suspend/resume).
    TaskSwitch(TaskRef),
    /// Parameter scope opened.
    ParamBegin(ParamId, i64),
    /// Parameter scope closed.
    ParamEnd(ParamId),
}

/// One timestamped event on one thread.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the trace clock's origin.
    pub t: u64,
    /// Team-local thread id.
    pub tid: usize,
    /// The event.
    pub kind: EventKind,
}

/// A completed trace: all threads' events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events, sorted by thread then time (each thread's stream is
    /// naturally time-ordered).
    pub events: Vec<TraceEvent>,
    /// Team size.
    pub nthreads: usize,
}

impl Trace {
    /// Events of one thread, in time order.
    pub fn thread(&self, tid: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.tid == tid)
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the trace as an OTF2-print-style text listing.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let reg = pomp::registry();
        let mut out = String::new();
        let name = |r: RegionId| reg.name(r);
        for e in &self.events {
            let desc = match e.kind {
                EventKind::Enter(r) => format!("ENTER        {}", name(r)),
                EventKind::Exit(r) => format!("LEAVE        {}", name(r)),
                EventKind::TaskCreateBegin(c, tr, id) => {
                    format!("TASK_CREATE  {} -> {} #{}", name(c), name(tr), id.get())
                }
                EventKind::TaskCreateEnd(c, id) => {
                    format!("TASK_CREATED {} #{}", name(c), id.get())
                }
                EventKind::TaskBegin(r, id) => format!("TASK_BEGIN   {} #{}", name(r), id.get()),
                EventKind::TaskEnd(r, id) => format!("TASK_END     {} #{}", name(r), id.get()),
                EventKind::TaskSwitch(TaskRef::Implicit) => "TASK_SWITCH  implicit".to_string(),
                EventKind::TaskSwitch(TaskRef::Explicit(id)) => {
                    format!("TASK_SWITCH  #{}", id.get())
                }
                EventKind::ParamBegin(p, v) => {
                    format!("PARAM_BEGIN  {} = {v}", reg.param_name(p))
                }
                EventKind::ParamEnd(p) => format!("PARAM_END    {}", reg.param_name(p)),
            };
            let _ = writeln!(out, "[{:>12} ns] thread {:>2}  {desc}", e.t, e.tid);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};

    #[test]
    fn thread_filter_and_text() {
        let reg = pomp::registry();
        let r = reg.register("tr-region", RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let trace = Trace {
            events: vec![
                TraceEvent { t: 1, tid: 0, kind: EventKind::TaskBegin(r, id) },
                TraceEvent { t: 5, tid: 1, kind: EventKind::Enter(r) },
                TraceEvent { t: 9, tid: 0, kind: EventKind::TaskEnd(r, id) },
            ],
            nthreads: 2,
        };
        assert_eq!(trace.thread(0).count(), 2);
        assert_eq!(trace.thread(1).count(), 1);
        assert_eq!(trace.len(), 3);
        let text = trace.to_text();
        assert!(text.contains("TASK_BEGIN   tr-region #1"), "{text}");
        assert!(text.contains("thread  1"), "{text}");
    }
}
