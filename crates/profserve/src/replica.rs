//! The replication pump: leader → follower, resumable, exactly-once.
//!
//! Replication is client-driven: the pump connects to both daemons,
//! probes the follower's cursor (its highest indexed run id, read with
//! an empty `APPLY`), then pages `EXPORT` frames out of the leader and
//! `APPLY`s them into the follower until the leader reports `done`.
//! No replication state lives anywhere but the follower's own store —
//! the cursor is derived from what actually landed on its disk, so a
//! crash or partition at any point resumes correctly:
//!
//! * the pump dies before an `APPLY` is acknowledged → nothing was
//!   acked, the next probe re-reads the same cursor and the page is
//!   re-shipped;
//! * the pump dies after the ack → the follower's cursor has advanced
//!   and the next run starts past the applied page;
//! * a retry re-ships frames the follower already holds → the server
//!   skips them (`run_id <= cursor`), counted in
//!   [`ReplicaReport::frames_skipped`].
//!
//! The leader and follower may shard differently (or not at all):
//! frames carry the full record, and the follower re-routes each run
//! through its own shard map on apply.

use crate::client::{Client, ClientError, ClientTimeouts};
use crate::protocol::WireProtocol;

/// Tunables for one [`replicate`] run.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Frames per `EXPORT` page (the server additionally caps pages).
    pub batch: u64,
    /// Shared secret presented to both daemons in `HELLO`.
    pub auth: Option<String>,
    /// Wire protocol for both connections.
    pub proto: WireProtocol,
    /// Per-connection deadlines.
    pub timeouts: ClientTimeouts,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            batch: 256,
            auth: None,
            proto: WireProtocol::Auto,
            timeouts: ClientTimeouts::default(),
        }
    }
}

/// What one [`replicate`] run moved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaReport {
    /// The follower's cursor before the run.
    pub start_cursor: u64,
    /// The follower's cursor after the run.
    pub end_cursor: u64,
    /// Frames the follower wrote.
    pub frames_applied: u64,
    /// Frames the follower already held (re-shipped after a retry).
    pub frames_skipped: u64,
    /// `EXPORT` pages pulled from the leader.
    pub pages: u64,
}

/// Pump every run the follower is missing from `leader_addr` to
/// `follower_addr`, resuming from the follower's own cursor. Returns
/// once the leader reports no runs beyond the last shipped page;
/// ingests racing the pump are picked up by the next run.
pub fn replicate(
    leader_addr: &str,
    follower_addr: &str,
    config: &ReplicaConfig,
) -> Result<ReplicaReport, ClientError> {
    let auth = config.auth.as_deref();
    let mut leader = Client::connect_proto_auth(leader_addr, config.proto, config.timeouts, auth)?;
    let mut follower =
        Client::connect_proto_auth(follower_addr, config.proto, config.timeouts, auth)?;
    let batch = config.batch.max(1);

    let mut report = ReplicaReport::default();
    // The cursor probe: an empty APPLY answers with the follower's
    // highest indexed run id and writes nothing.
    let mut cursor = follower.replication_cursor()?;
    report.start_cursor = cursor;
    report.end_cursor = cursor;

    loop {
        let page = leader.export_frames(cursor, batch)?;
        report.pages += 1;
        if page.frames.is_empty() {
            // Nothing in this id range. A watermark past the cursor
            // means the range was GC'd on the leader — skip over it;
            // otherwise the follower has caught up.
            if page.done || page.watermark <= cursor {
                break;
            }
            cursor = page.watermark;
            continue;
        }
        let ack = follower.apply_frames(&page.frames)?;
        report.frames_applied += ack.applied;
        report.frames_skipped += ack.skipped;
        report.end_cursor = ack.watermark;
        cursor = page.watermark;
        if page.done {
            break;
        }
    }
    Ok(report)
}
