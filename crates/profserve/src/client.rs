//! A small blocking client for the line-delimited JSON protocol.
//!
//! The client is deliberately thin: it frames requests, reads one
//! response line, and surfaces typed server errors ([`ClientError::Server`])
//! distinctly from transport failures ([`ClientError::Io`]) and protocol
//! violations ([`ClientError::Protocol`]). Higher layers (the CLI, the
//! session exporter) decide what to do about each.

use crate::json::{self, Json};
use crate::protocol::{ErrorKind, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side deadlines. `None` members mean "block forever" (the
/// pre-hardening behavior); [`ClientTimeouts::default`] bounds every
/// phase so a dead or wedged daemon can never hang the caller.
#[derive(Clone, Copy, Debug)]
pub struct ClientTimeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Deadline for reading one response line.
    pub read: Option<Duration>,
    /// Deadline for writing one request line.
    pub write: Option<Duration>,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        Self {
            connect: Some(Duration::from_millis(500)),
            read: Some(Duration::from_secs(5)),
            write: Some(Duration::from_secs(5)),
        }
    }
}

impl ClientTimeouts {
    /// No deadlines anywhere (block forever).
    pub fn unbounded() -> Self {
        Self {
            connect: None,
            read: None,
            write: None,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server's bytes did not follow the protocol.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// The error category from the wire.
        kind: ErrorKind,
        /// The server's explanation.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, message } => {
                write!(f, "server {}: {message}", kind.tag())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Acknowledgement returned by [`Client::ingest`].
#[derive(Clone, Copy, Debug)]
pub struct IngestAck {
    /// Stable run id the server assigned.
    pub run_id: u64,
    /// Encoded record size in bytes.
    pub bytes: u64,
    /// Segment ordinal the record landed in.
    pub segment: u64,
}

/// One connection to a `profserve` daemon. Requests are serialized on
/// the connection; open more clients for concurrency.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7979`) with no deadlines (the
    /// original blocking behavior; prefer [`Client::connect_with`] from
    /// anything that must not hang on a dead daemon).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientTimeouts::unbounded())
    }

    /// Connect with explicit deadlines on every transport phase.
    pub fn connect_with(addr: &str, timeouts: ClientTimeouts) -> Result<Client, ClientError> {
        let stream = match timeouts.connect {
            Some(deadline) => {
                // `connect_timeout` wants a resolved address; try each
                // resolution until one connects within the deadline.
                let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
                let mut last = None;
                let mut stream = None;
                for a in addrs {
                    match TcpStream::connect_timeout(&a, deadline) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("address '{addr}' resolved to nothing"),
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        // The protocol is strict request/response: Nagle would hold each
        // one-line request hostage to the peer's delayed ACK.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request, return the parsed `ok:true` response object.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before response".to_string(),
            ));
        }
        let v = json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error");
                let kind = err
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_tag)
                    .unwrap_or(ErrorKind::Internal);
                let message = err
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string();
                Err(ClientError::Server { kind, message })
            }
            None => Err(ClientError::Protocol("response lacks 'ok'".to_string())),
        }
    }

    /// Upload one profile (text store format).
    pub fn ingest(
        &mut self,
        benchmark: &str,
        threads: u32,
        timestamp_ns: Option<u64>,
        profile_text: &str,
    ) -> Result<IngestAck, ClientError> {
        let v = self.call(&Request::Ingest {
            benchmark: benchmark.to_string(),
            threads,
            timestamp_ns,
            profile_text: profile_text.to_string(),
        })?;
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("ingest ack lacks '{key}'")))
        };
        Ok(IngestAck {
            run_id: field("run_id")?,
            bytes: field("bytes")?,
            segment: field("segment")?,
        })
    }

    /// Top-N regions by summed inclusive time; raw response object.
    pub fn query_top(
        &mut self,
        benchmark: &str,
        threads: u32,
        n: usize,
    ) -> Result<Json, ClientError> {
        self.call(&Request::QueryTop {
            benchmark: benchmark.to_string(),
            threads,
            n,
        })
    }

    /// Cross-run scalar statistics; raw response object.
    pub fn query_stats(&mut self, benchmark: &str, threads: u32) -> Result<Json, ClientError> {
        self.call(&Request::QueryStats {
            benchmark: benchmark.to_string(),
            threads,
        })
    }

    /// Regression check of a candidate profile against the stored
    /// baseline; raw response object (see `regressed` member).
    pub fn query_regress(
        &mut self,
        benchmark: &str,
        threads: u32,
        profile_text: &str,
        threshold: Option<f64>,
    ) -> Result<Json, ClientError> {
        self.call(&Request::QueryRegress {
            benchmark: benchmark.to_string(),
            threads,
            profile_text: profile_text.to_string(),
            threshold,
            min_runs: None,
            min_delta_ns: None,
        })
    }

    /// Server health; raw response object.
    pub fn server_stats(&mut self) -> Result<Json, ClientError> {
        self.call(&Request::Stats)
    }
}
