//! The typed blocking client.
//!
//! One [`Client`] is one connection speaking one negotiated protocol —
//! TPF1 binary frames or JSON lines — behind a protocol-agnostic typed
//! API: requests go in as [`Request`] values (or through the typed
//! convenience methods), results come back as the typed report structs
//! from [`crate::protocol`], and failures are split into transport
//! errors ([`ClientError::Io`]), protocol violations
//! ([`ClientError::Protocol`]), and typed server errors
//! ([`ClientError::Server`]).
//!
//! Protocol selection ([`WireProtocol`]):
//!
//! * `Auto` (the default) — try the TPF1 handshake (magic + `HELLO`);
//!   if the server refuses or the handshake doesn't parse, reconnect
//!   and speak JSON lines. Typed server errors during the handshake
//!   (e.g. `overloaded` shedding) surface as errors, not fallback —
//!   a JSON retry would be shed identically.
//! * `Binary` / `Json` — speak exactly that protocol or fail.
//!
//! The old line-oriented shim surface (`Client::call`, `Client::ingest`)
//! is gone: callers speak the typed [`Request`]/[`Response`] surface or
//! the typed query methods.

use crate::protocol::{
    ErrorKind, IngestReceipt, Notification, ProfilePayload, Record, RegressReport, Request,
    Response, ServerStatsReport, StatsReport, TopReport, TrendReport, WireProtocol,
};
use crate::wire;
use profstore::RunWindow;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side deadlines. `None` members mean "block forever" (the
/// pre-hardening behavior); [`ClientTimeouts::default`] bounds every
/// phase so a dead or wedged daemon can never hang the caller.
#[derive(Clone, Copy, Debug)]
pub struct ClientTimeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Option<Duration>,
    /// Deadline for reading one response (line or frame).
    pub read: Option<Duration>,
    /// Deadline for writing one request.
    pub write: Option<Duration>,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        Self {
            connect: Some(Duration::from_millis(500)),
            read: Some(Duration::from_secs(5)),
            write: Some(Duration::from_secs(5)),
        }
    }
}

impl ClientTimeouts {
    /// No deadlines anywhere (block forever).
    pub fn unbounded() -> Self {
        Self {
            connect: None,
            read: None,
            write: None,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io(std::io::Error),
    /// The server's bytes did not follow the protocol.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// The error category from the wire.
        kind: ErrorKind,
        /// The server's explanation.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, message } => {
                write!(f, "server {}: {message}", kind.tag())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One page of the bulk `EXPORT` stream: raw CRC-framed record frames
/// plus the resume cursor.
#[derive(Clone, Debug)]
pub struct ExportPage {
    /// Raw store frames (`len|payload|crc`), ascending run id.
    pub frames: Vec<Vec<u8>>,
    /// Highest run id covered by this page — pass as `after` to resume.
    pub watermark: u64,
    /// True when no runs exist beyond `watermark` (the follower has
    /// caught up; poll again later for new ingests).
    pub done: bool,
}

/// Acknowledgement of a bulk `APPLY`: how the follower disposed of the
/// shipped frames and where its cursor now stands.
#[derive(Clone, Copy, Debug)]
pub struct ApplyAck {
    /// Frames written (run ids the follower had not yet seen).
    pub applied: u64,
    /// Frames skipped as already present (`run_id <= watermark`) —
    /// the exactly-once guarantee under retries.
    pub skipped: u64,
    /// The follower's replication cursor after the apply (its highest
    /// indexed run id).
    pub watermark: u64,
}

/// Which protocol a connection settled on.
enum ActiveProto {
    Json,
    Binary {
        /// Feature bits both sides agreed on during `HELLO`.
        features: u64,
    },
}

/// How a binary handshake failed.
enum Handshake {
    /// The server (or the wire) refused TPF1; `Auto` may retry as JSON.
    Refused(ClientError),
    /// A real answer that a JSON retry would reproduce (e.g. shedding);
    /// surface it.
    Fatal(ClientError),
}

/// One connection to a `profserve` daemon. Requests are serialized on
/// the connection; open more clients for concurrency.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    proto: ActiveProto,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7979`) with no deadlines (the
    /// original blocking behavior; prefer [`Client::connect_with`] from
    /// anything that must not hang on a dead daemon). Negotiates the
    /// protocol ([`WireProtocol::Auto`]).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Self::connect_with(addr, ClientTimeouts::unbounded())
    }

    /// Connect with explicit deadlines; negotiates the protocol
    /// ([`WireProtocol::Auto`]).
    pub fn connect_with(addr: &str, timeouts: ClientTimeouts) -> Result<Client, ClientError> {
        Self::connect_proto(addr, WireProtocol::Auto, timeouts)
    }

    /// Connect speaking exactly `proto` (`Auto` negotiates: TPF1 first,
    /// JSON lines if the handshake is refused).
    pub fn connect_proto(
        addr: &str,
        proto: WireProtocol,
        timeouts: ClientTimeouts,
    ) -> Result<Client, ClientError> {
        Self::connect_proto_auth(addr, proto, timeouts, None)
    }

    /// Connect and authenticate. When `auth` is `Some`, the shared
    /// secret travels in the `HELLO` — inside the TPF1 handshake on
    /// binary connections, as an explicit `HELLO` line on JSON ones —
    /// so every later request on the connection is authorized. A wrong
    /// secret surfaces as a typed `unauthorized` server error.
    pub fn connect_proto_auth(
        addr: &str,
        proto: WireProtocol,
        timeouts: ClientTimeouts,
        auth: Option<&str>,
    ) -> Result<Client, ClientError> {
        match proto {
            WireProtocol::Json => {
                let stream = Self::connect_stream(addr, timeouts)?;
                let mut client = Self::from_stream(stream, ActiveProto::Json)?;
                if let Some(secret) = auth {
                    client.hello_json(secret)?;
                }
                Ok(client)
            }
            WireProtocol::Binary | WireProtocol::Auto => {
                let stream = Self::connect_stream(addr, timeouts)?;
                match Self::handshake_binary(stream, auth) {
                    Ok(client) => Ok(client),
                    Err(Handshake::Fatal(e)) => Err(e),
                    Err(Handshake::Refused(e)) => {
                        if proto == WireProtocol::Binary {
                            return Err(e);
                        }
                        // Auto: reconnect and speak JSON. The failed
                        // socket is abandoned (the server closes it).
                        let stream = Self::connect_stream(addr, timeouts)?;
                        let mut client = Self::from_stream(stream, ActiveProto::Json)?;
                        if let Some(secret) = auth {
                            client.hello_json(secret)?;
                        }
                        Ok(client)
                    }
                }
            }
        }
    }

    fn connect_stream(addr: &str, timeouts: ClientTimeouts) -> Result<TcpStream, ClientError> {
        let stream = match timeouts.connect {
            Some(deadline) => {
                // `connect_timeout` wants a resolved address; try each
                // resolution until one connects within the deadline.
                let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
                let mut last = None;
                let mut stream = None;
                for a in addrs {
                    match TcpStream::connect_timeout(&a, deadline) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("address '{addr}' resolved to nothing"),
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        // The protocol is strict request/response: Nagle would hold each
        // small request hostage to the peer's delayed ACK.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        Ok(stream)
    }

    fn from_stream(stream: TcpStream, proto: ActiveProto) -> Result<Client, ClientError> {
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            proto,
        })
    }

    /// Authenticate a JSON connection: send a `HELLO` line carrying the
    /// shared secret and expect the hello acknowledgement back. A wrong
    /// secret answers with a typed `unauthorized` error.
    fn hello_json(&mut self, secret: &str) -> Result<(), ClientError> {
        match self.expect(&Request::Hello {
            version: wire::WIRE_VERSION,
            features: 0,
            auth: Some(secret.to_string()),
        })? {
            Response::Hello { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected HELLO ack, got {other:?}"
            ))),
        }
    }

    /// Send magic + `HELLO`, read the server's verdict.
    fn handshake_binary(stream: TcpStream, auth: Option<&str>) -> Result<Client, Handshake> {
        let mut client = Self::from_stream(stream, ActiveProto::Binary { features: 0 })
            .map_err(Handshake::Refused)?;
        let hello = Request::Hello {
            version: wire::WIRE_VERSION,
            features: wire::FEATURE_BATCH_INGEST,
            auth: auth.map(str::to_string),
        };
        let mut opening = Vec::with_capacity(64);
        opening.extend_from_slice(&wire::WIRE_MAGIC);
        opening.extend_from_slice(&wire::frame(&wire::encode_request(&hello)));
        client
            .writer
            .write_all(&opening)
            .and_then(|()| client.writer.flush())
            .map_err(|e| Handshake::Refused(ClientError::Io(e)))?;
        match client.read_response_binary() {
            Ok(Response::Hello { version, features }) => {
                if version != wire::WIRE_VERSION {
                    return Err(Handshake::Refused(ClientError::Protocol(format!(
                        "server speaks TPF version {version}, client speaks {}",
                        wire::WIRE_VERSION
                    ))));
                }
                client.proto = ActiveProto::Binary { features };
                Ok(client)
            }
            // A typed error inside the handshake frame (e.g. a wrong
            // shared secret) is a real answer, not a refusal — a JSON
            // retry would be refused identically.
            Ok(Response::Error { kind, message }) => {
                let e = ClientError::Server { kind, message };
                match kind {
                    ErrorKind::BadRequest => Err(Handshake::Refused(e)),
                    _ => Err(Handshake::Fatal(e)),
                }
            }
            Ok(other) => Err(Handshake::Refused(ClientError::Protocol(format!(
                "expected HELLO, got {other:?}"
            )))),
            // `bad_request` is how a `--proto json` server refuses the
            // magic — fall back. Anything else (shedding, read-only…)
            // is a real answer.
            Err(ClientError::Server { kind, message }) => {
                let e = ClientError::Server { kind, message };
                match kind {
                    ErrorKind::BadRequest => Err(Handshake::Refused(e)),
                    _ => Err(Handshake::Fatal(e)),
                }
            }
            Err(e) => Err(Handshake::Refused(e)),
        }
    }

    /// The protocol this connection negotiated.
    pub fn protocol(&self) -> WireProtocol {
        match self.proto {
            ActiveProto::Json => WireProtocol::Json,
            ActiveProto::Binary { .. } => WireProtocol::Binary,
        }
    }

    /// Feature bits agreed during `HELLO` (0 on JSON connections, which
    /// don't negotiate).
    pub fn features(&self) -> u64 {
        match self.proto {
            ActiveProto::Json => 0,
            ActiveProto::Binary { features } => features,
        }
    }

    // -----------------------------------------------------------------
    // Transport
    // -----------------------------------------------------------------

    fn read_response_json(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before response".to_string(),
            ));
        }
        Response::from_json_line(line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Read one binary response frame. A leading `{` means the server
    /// answered in JSON despite the binary handshake — the shed path
    /// writes its `overloaded` line before sniffing — so parse that line
    /// and surface whatever it says.
    fn read_response_binary(&mut self) -> Result<Response, ClientError> {
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(ClientError::Protocol(
                    "connection closed before response".to_string(),
                ));
            }
            buf[0]
        };
        if first == b'{' {
            return match self.read_response_json()? {
                Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
                other => Err(ClientError::Protocol(format!(
                    "json response on a binary connection: {other:?}"
                ))),
            };
        }
        let mut head = [0u8; 4];
        self.reader.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head) as usize;
        if len > wire::MAX_RESPONSE_BYTES {
            return Err(ClientError::Protocol(format!(
                "response frame of {len} bytes exceeds cap of {}",
                wire::MAX_RESPONSE_BYTES
            )));
        }
        let mut rest = vec![0u8; len + 4];
        self.reader.read_exact(&mut rest)?;
        let payload = &rest[..len];
        let crc = u32::from_le_bytes([rest[len], rest[len + 1], rest[len + 2], rest[len + 3]]);
        if crc != profstore::codec::payload_crc(payload) {
            return Err(ClientError::Protocol("response frame crc mismatch".into()));
        }
        wire::decode_response(payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Send one typed request, read one typed response. Server-side
    /// typed errors come back as `Ok(Response::Error{..})`; the typed
    /// convenience methods convert them to [`ClientError::Server`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.proto {
            ActiveProto::Json => {
                let line = request.to_json_line();
                self.writer
                    .write_all(line.as_bytes())
                    .and_then(|()| self.writer.write_all(b"\n"))
                    .and_then(|()| self.writer.flush())?;
                self.read_response_json()
            }
            ActiveProto::Binary { .. } => {
                let framed = wire::frame(&wire::encode_request(request));
                self.writer
                    .write_all(&framed)
                    .and_then(|()| self.writer.flush())?;
                self.read_response_binary()
            }
        }
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Ok(other),
        }
    }

    // -----------------------------------------------------------------
    // Typed API
    // -----------------------------------------------------------------

    /// Upload one profile; see [`Record::from_text`] /
    /// [`Record::from_profile`] for building the argument.
    pub fn ingest_record(&mut self, record: &Record) -> Result<IngestReceipt, ClientError> {
        match self.expect(&Request::Ingest(record.clone()))? {
            Response::Ingest(receipt) => Ok(receipt),
            other => Err(ClientError::Protocol(format!(
                "expected ingest receipt, got {other:?}"
            ))),
        }
    }

    /// Upload many profiles under one acknowledgement — the bulk path.
    /// Records are stored in order; on a typed error nothing after the
    /// count reported in the error message was stored.
    pub fn ingest_batch(&mut self, records: &[Record]) -> Result<IngestReceipt, ClientError> {
        match self.expect(&Request::IngestBatch(records.to_vec()))? {
            Response::Ingest(receipt) => Ok(receipt),
            other => Err(ClientError::Protocol(format!(
                "expected ingest receipt, got {other:?}"
            ))),
        }
    }

    /// Top-N regions by summed inclusive time across all stored runs.
    pub fn query_top(
        &mut self,
        benchmark: &str,
        threads: u32,
        n: usize,
    ) -> Result<TopReport, ClientError> {
        self.query_top_window(benchmark, threads, n, RunWindow::default())
    }

    /// Top-N regions, restricted to the runs selected by `window`.
    pub fn query_top_window(
        &mut self,
        benchmark: &str,
        threads: u32,
        n: usize,
        window: RunWindow,
    ) -> Result<TopReport, ClientError> {
        match self.expect(&Request::QueryTop {
            benchmark: benchmark.to_string(),
            threads,
            n,
            window,
        })? {
            Response::Top(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected top report, got {other:?}"
            ))),
        }
    }

    /// Cross-run scalar statistics across all stored runs.
    pub fn query_stats(
        &mut self,
        benchmark: &str,
        threads: u32,
    ) -> Result<StatsReport, ClientError> {
        self.query_stats_window(benchmark, threads, RunWindow::default())
    }

    /// Cross-run scalar statistics, restricted to the runs selected by
    /// `window`.
    pub fn query_stats_window(
        &mut self,
        benchmark: &str,
        threads: u32,
        window: RunWindow,
    ) -> Result<StatsReport, ClientError> {
        match self.expect(&Request::QueryStats {
            benchmark: benchmark.to_string(),
            threads,
            window,
        })? {
            Response::Stats(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected stats report, got {other:?}"
            ))),
        }
    }

    /// Regression check of a candidate profile against the stored
    /// baseline. `None` tunables use the server's defaults.
    pub fn query_regress(
        &mut self,
        benchmark: &str,
        threads: u32,
        profile: ProfilePayload,
        threshold: Option<f64>,
        min_runs: Option<u64>,
        min_delta_ns: Option<u64>,
    ) -> Result<RegressReport, ClientError> {
        self.query_regress_window(
            benchmark,
            threads,
            profile,
            threshold,
            min_runs,
            min_delta_ns,
            RunWindow::default(),
        )
    }

    /// Regression check against the baseline formed by the runs `window`
    /// selects — `last N` gates against recent history instead of the
    /// all-time mean.
    #[allow(clippy::too_many_arguments)]
    pub fn query_regress_window(
        &mut self,
        benchmark: &str,
        threads: u32,
        profile: ProfilePayload,
        threshold: Option<f64>,
        min_runs: Option<u64>,
        min_delta_ns: Option<u64>,
        window: RunWindow,
    ) -> Result<RegressReport, ClientError> {
        match self.expect(&Request::QueryRegress {
            benchmark: benchmark.to_string(),
            threads,
            profile,
            threshold,
            min_runs,
            min_delta_ns,
            window,
        })? {
            Response::Regress(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected regress report, got {other:?}"
            ))),
        }
    }

    /// Per-window total-time aggregates of one group — the sparkline
    /// query. `window` bounds the runs considered, `buckets` is how many
    /// equal-count slices to split them into (oldest first).
    pub fn query_trend(
        &mut self,
        benchmark: &str,
        threads: u32,
        buckets: u32,
        window: RunWindow,
    ) -> Result<TrendReport, ClientError> {
        match self.expect(&Request::QueryTrend {
            benchmark: benchmark.to_string(),
            threads,
            buckets,
            window,
        })? {
            Response::Trend(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected trend report, got {other:?}"
            ))),
        }
    }

    /// Server health: service counters, read-only flag, store shape,
    /// request-latency summaries.
    pub fn server_stats(&mut self) -> Result<ServerStatsReport, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::ServerStats(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected server stats, got {other:?}"
            ))),
        }
    }

    /// The `STATS prometheus` scrape document (text exposition format).
    pub fn server_stats_prometheus(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::StatsPrometheus)? {
            Response::Prometheus(text) => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected prometheus text, got {other:?}"
            ))),
        }
    }

    /// Pull one page of raw record frames with run id > `after`, at
    /// most `max` of them (the server additionally caps the page). The
    /// returned watermark is the resume cursor for the next page.
    pub fn export_frames(&mut self, after: u64, max: u64) -> Result<ExportPage, ClientError> {
        match self.expect(&Request::Export { after, max })? {
            Response::ExportChunk {
                frames,
                watermark,
                done,
            } => Ok(ExportPage {
                frames,
                watermark,
                done,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected export chunk, got {other:?}"
            ))),
        }
    }

    /// Ship raw record frames (from [`Client::export_frames`] against a
    /// leader) to this server. Frames whose run id the server already
    /// holds are skipped, making retries after a partition safe.
    pub fn apply_frames(&mut self, frames: &[Vec<u8>]) -> Result<ApplyAck, ClientError> {
        match self.expect(&Request::Apply {
            frames: frames.to_vec(),
        })? {
            Response::Applied {
                applied,
                skipped,
                watermark,
            } => Ok(ApplyAck {
                applied,
                skipped,
                watermark,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected apply ack, got {other:?}"
            ))),
        }
    }

    /// The server's replication cursor (highest indexed run id) — an
    /// empty `APPLY` probes without writing.
    pub fn replication_cursor(&mut self) -> Result<u64, ClientError> {
        Ok(self.apply_frames(&[])?.watermark)
    }

    /// Upgrade this connection to a live subscription. Consumes the
    /// client: after the server acknowledges, the connection carries
    /// pushed [`Notification`] events (periodic telemetry snapshots,
    /// ingest notices, and `lagged` notices if this subscriber falls
    /// behind) and no further requests can be sent on it. Returns the
    /// subscription plus the telemetry interval the server settled on
    /// (the request is clamped to the server's push tick).
    ///
    /// Callers that want to block on events indefinitely should connect
    /// with an unbounded (or interval-sized) read timeout.
    pub fn subscribe(
        mut self,
        interval_ms: Option<u64>,
    ) -> Result<(Subscription, u64), ClientError> {
        match self.expect(&Request::Subscribe { interval_ms })? {
            Response::Subscribed { interval_ms } => {
                Ok((Subscription { client: self }, interval_ms))
            }
            other => Err(ClientError::Protocol(format!(
                "expected subscription ack, got {other:?}"
            ))),
        }
    }
}

/// A live event stream, produced by [`Client::subscribe`]. Each call to
/// [`Subscription::next_event`] blocks (subject to the connection's read
/// timeout) until the server pushes the next [`Notification`].
pub struct Subscription {
    client: Client,
}

impl Subscription {
    /// Block until the next pushed event arrives.
    ///
    /// A read timeout on the underlying connection surfaces as
    /// [`ClientError::Io`] with kind `WouldBlock`/`TimedOut`; the
    /// subscription stays usable afterwards (the push simply had not
    /// arrived yet).
    pub fn next_event(&mut self) -> Result<Notification, ClientError> {
        let response = match self.client.proto {
            ActiveProto::Json => self.client.read_response_json()?,
            ActiveProto::Binary { .. } => self.client.read_response_binary()?,
        };
        match response {
            Response::Event(event) => Ok(event),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Err(ClientError::Protocol(format!(
                "expected pushed event, got {other:?}"
            ))),
        }
    }

    /// The protocol the underlying connection speaks.
    pub fn protocol(&self) -> WireProtocol {
        self.client.protocol()
    }
}
