//! TPF1 — the compact binary wire protocol.
//!
//! A binary connection opens with the 4-byte magic `"TPF1"` (how the
//! server's first-byte sniffer tells it apart from a JSON line, which
//! always starts with `{`), followed by frames in both directions:
//!
//! ```text
//! frame   := len:u32le  payload[len]  crc32(payload):u32le
//! payload := tag:u8  body
//! ```
//!
//! This is exactly the store's segment framing, and the body reuses the
//! store's LEB128 codec (`profstore::codec`): unsigned varints,
//! length-prefixed UTF-8 strings, and `f64` as 8 raw little-endian bytes.
//! Request tags live below `0x80`, response tags at or above it, so a
//! frame's direction is self-evident in a capture.
//!
//! Negotiation: the client's first frame must be `HELLO{version,features}`;
//! the server answers `HELLO` with the version it will speak and the
//! intersection of feature bits. Unknown feature bits are ignored, which
//! is what makes the mask forward-compatible.
//!
//! Pipelining: a client may write any number of request frames before
//! reading; the server answers strictly in order. `INGEST_BATCH` goes
//! further and amortizes one acknowledgement over a whole batch of
//! records — the bulk path that closes the store-vs-daemon ingest gap.
//!
//! Profiles travel as the store's record payload
//! (`profstore::encode_record`, run id 0 — the store assigns the real
//! one), so a spooled frame can be forwarded byte-for-byte without
//! re-encoding.

use crate::protocol::{
    ErrorKind, IngestReceipt, LatencyStat, MetricReport, Notification, ProfilePayload, Record,
    RegionRow, RegressFinding, RegressReport, Request, Response, ServerStatsReport, StatsReport,
    TopReport, TrendReport,
};
use profstore::codec::{put_str, put_uv, Reader};
use profstore::{CodecError, RunWindow, StoreStats, TrendBucket};
use taskprof_telemetry::ServiceSnapshot;

/// Connection preamble distinguishing TPF1 from JSON lines.
pub const WIRE_MAGIC: [u8; 4] = *b"TPF1";

/// Protocol version this build speaks.
pub const WIRE_VERSION: u32 = 1;

/// Feature bit: the server accepts `INGEST_BATCH`.
pub const FEATURE_BATCH_INGEST: u64 = 1;

/// Bytes of framing around a payload (length word + CRC word).
pub const FRAME_OVERHEAD: usize = 8;

/// Default ceiling on a response payload a client will accept.
pub const MAX_RESPONSE_BYTES: usize = 64 << 20;

// Request tags (< 0x80).
const TAG_HELLO: u8 = 0x01;
const TAG_INGEST: u8 = 0x02;
const TAG_INGEST_BATCH: u8 = 0x03;
const TAG_QUERY_TOP: u8 = 0x04;
const TAG_QUERY_STATS: u8 = 0x05;
const TAG_QUERY_REGRESS: u8 = 0x06;
const TAG_STATS: u8 = 0x07;
const TAG_QUERY_TREND: u8 = 0x08;
const TAG_STATS_PROM: u8 = 0x09;
const TAG_SUBSCRIBE: u8 = 0x0A;
const TAG_EXPORT: u8 = 0x0B;
const TAG_APPLY: u8 = 0x0C;

// Response tags (>= 0x80).
const TAG_R_HELLO: u8 = 0x81;
const TAG_R_INGEST: u8 = 0x82;
const TAG_R_TOP: u8 = 0x83;
const TAG_R_STATS: u8 = 0x84;
const TAG_R_REGRESS: u8 = 0x85;
const TAG_R_SERVER_STATS: u8 = 0x86;
const TAG_R_TREND: u8 = 0x87;
const TAG_R_PROMETHEUS: u8 = 0x88;
const TAG_R_SUBSCRIBED: u8 = 0x89;
const TAG_R_EVENT: u8 = 0x8A;
const TAG_R_EXPORT: u8 = 0x8B;
const TAG_R_APPLIED: u8 = 0x8C;
const TAG_R_ERROR: u8 = 0xEE;

// Event subtypes inside a TAG_R_EVENT frame.
const EVENT_TELEMETRY: u8 = 0;
const EVENT_INGEST: u8 = 1;
const EVENT_LAGGED: u8 = 2;

// Profile payload kinds.
const PAYLOAD_TEXT: u8 = 0;
const PAYLOAD_RECORD: u8 = 1;

/// A frame or payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length word announces a payload beyond the configured cap —
    /// corruption, or a JSON client talking to a binary parser.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The CRC-32 over the payload does not match the trailer.
    CrcMismatch,
    /// The payload structure was truncated, mistyped, or out of range.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            WireError::CrcMismatch => write!(f, "frame crc mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Malformed(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Wrap a payload in the `len|payload|crc32` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&profstore::codec::payload_crc(payload).to_le_bytes());
    out
}

/// Try to strip one frame off the front of `buf`.
///
/// * `Ok(None)` — the buffer holds only a prefix of a frame; read more.
/// * `Ok(Some((payload, consumed)))` — one whole frame; the caller
///   drains `consumed` bytes.
/// * `Err` — the stream is unrecoverable (oversized length word or CRC
///   failure); close the connection after a typed reply.
pub fn try_frame(buf: &[u8], max_payload: usize) -> Result<Option<(Vec<u8>, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_payload {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_payload,
        });
    }
    let total = 4 + len + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[4..4 + len];
    let crc = u32::from_le_bytes([buf[4 + len], buf[5 + len], buf[6 + len], buf[7 + len]]);
    if crc != profstore::codec::payload_crc(payload) {
        return Err(WireError::CrcMismatch);
    }
    Ok(Some((payload.to_vec(), total)))
}

// ---------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------

fn put_opt_uv(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_uv(out, v);
        }
        None => out.push(0),
    }
}

fn read_opt_uv(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    match r.byte()? {
        0 => Ok(None),
        1 => Ok(Some(r.uv()?)),
        _ => Err(WireError::Malformed("bad option flag".into())),
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn read_f64(r: &mut Reader<'_>) -> Result<f64, WireError> {
    let b = r.bytes(8)?;
    Ok(f64::from_bits(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ])))
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

fn read_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, WireError> {
    match r.byte()? {
        0 => Ok(None),
        1 => Ok(Some(read_f64(r)?)),
        _ => Err(WireError::Malformed("bad option flag".into())),
    }
}

fn put_payload(out: &mut Vec<u8>, p: &ProfilePayload) {
    match p {
        ProfilePayload::Text(text) => {
            out.push(PAYLOAD_TEXT);
            put_str(out, text);
        }
        ProfilePayload::Record(bytes) => {
            out.push(PAYLOAD_RECORD);
            put_uv(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
    }
}

fn read_payload(r: &mut Reader<'_>) -> Result<ProfilePayload, WireError> {
    match r.byte()? {
        PAYLOAD_TEXT => Ok(ProfilePayload::Text(r.str()?)),
        PAYLOAD_RECORD => {
            let len = r.uv()? as usize;
            Ok(ProfilePayload::Record(r.bytes(len)?.to_vec()))
        }
        _ => Err(WireError::Malformed("bad payload kind".into())),
    }
}

fn put_record(out: &mut Vec<u8>, rec: &Record) {
    put_str(out, &rec.benchmark);
    put_uv(out, u64::from(rec.threads));
    put_opt_uv(out, rec.timestamp_ns);
    put_payload(out, &rec.profile);
}

fn read_record(r: &mut Reader<'_>) -> Result<Record, WireError> {
    Ok(Record {
        benchmark: r.str()?,
        threads: read_threads(r)?,
        timestamp_ns: read_opt_uv(r)?,
        profile: read_payload(r)?,
    })
}

fn read_threads(r: &mut Reader<'_>) -> Result<u32, WireError> {
    u32::try_from(r.uv()?).map_err(|_| WireError::Malformed("threads out of range".into()))
}

fn put_window(out: &mut Vec<u8>, w: &RunWindow) {
    put_opt_uv(out, w.last);
    put_opt_uv(out, w.since_ns);
}

fn read_window(r: &mut Reader<'_>) -> Result<RunWindow, WireError> {
    Ok(RunWindow {
        last: read_opt_uv(r)?,
        since_ns: read_opt_uv(r)?,
    })
}

/// Replication frame lists (raw store record frames) — shared between
/// the `APPLY` request and the `EXPORT` response.
fn put_frames(out: &mut Vec<u8>, frames: &[Vec<u8>]) {
    put_uv(out, frames.len() as u64);
    for f in frames {
        put_uv(out, f.len() as u64);
        out.extend_from_slice(f);
    }
}

fn read_frames(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, WireError> {
    let count = r.uv()?;
    let n = checked_count(r, count)?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.uv()? as usize;
        frames.push(r.bytes(len)?.to_vec());
    }
    Ok(frames)
}

fn kind_to_byte(k: ErrorKind) -> u8 {
    match k {
        ErrorKind::Overloaded => 0,
        ErrorKind::BadRequest => 1,
        ErrorKind::NotFound => 2,
        ErrorKind::Internal => 3,
        ErrorKind::TooLarge => 4,
        ErrorKind::ReadOnly => 5,
        ErrorKind::Unauthorized => 6,
    }
}

fn kind_from_byte(b: u8) -> Result<ErrorKind, WireError> {
    Ok(match b {
        0 => ErrorKind::Overloaded,
        1 => ErrorKind::BadRequest,
        2 => ErrorKind::NotFound,
        3 => ErrorKind::Internal,
        4 => ErrorKind::TooLarge,
        5 => ErrorKind::ReadOnly,
        6 => ErrorKind::Unauthorized,
        _ => return Err(WireError::Malformed("unknown error kind".into())),
    })
}

fn put_metric(out: &mut Vec<u8>, m: &MetricReport) {
    put_uv(out, m.runs);
    put_uv(out, m.sum_ns);
    put_uv(out, m.min_ns);
    put_uv(out, m.max_ns);
    put_f64(out, m.mean_ns);
}

fn read_metric(r: &mut Reader<'_>) -> Result<MetricReport, WireError> {
    Ok(MetricReport {
        runs: r.uv()?,
        sum_ns: r.uv()?,
        min_ns: r.uv()?,
        max_ns: r.uv()?,
        mean_ns: read_f64(r)?,
    })
}

/// Guard a decoded element count against the bytes actually present, so
/// a corrupt count cannot become a huge allocation.
fn checked_count(r: &Reader<'_>, n: u64) -> Result<usize, WireError> {
    let n = n as usize;
    if n > r.remaining() {
        return Err(WireError::Malformed("count exceeds payload".into()));
    }
    Ok(n)
}

/// The `STATS` body — shared between the `STATS` reply and the
/// `telemetry` subscription event.
fn put_server_stats(out: &mut Vec<u8>, h: &ServerStatsReport) {
    let s = &h.service;
    for v in [
        s.connections,
        s.shed_connections,
        s.timeout_connections,
        s.ingests,
        s.ingest_bytes,
        s.queries,
        s.errors,
        s.panics,
        s.json_requests,
        s.bin_requests,
        s.ingest_batches,
        s.subscriptions,
        s.sub_events,
        s.sub_lagged,
    ] {
        put_uv(out, v);
    }
    out.push(u8::from(h.read_only));
    for v in [
        h.store.segments,
        h.store.runs,
        h.store.bytes,
        h.store.recovered_tail_bytes,
        h.store.compacted_through,
    ] {
        put_uv(out, v);
    }
    put_uv(out, h.open_timestamp_ns);
    put_uv(out, h.uptime_secs);
    put_uv(out, h.latency.len() as u64);
    for l in &h.latency {
        put_str(out, &l.verb);
        put_str(out, &l.proto);
        put_uv(out, l.count);
        put_uv(out, l.sum_ns);
        put_uv(out, l.max_ns);
        put_uv(out, l.p50_ns);
        put_uv(out, l.p99_ns);
    }
}

fn read_server_stats(r: &mut Reader<'_>) -> Result<ServerStatsReport, WireError> {
    let service = ServiceSnapshot {
        connections: r.uv()?,
        shed_connections: r.uv()?,
        timeout_connections: r.uv()?,
        ingests: r.uv()?,
        ingest_bytes: r.uv()?,
        queries: r.uv()?,
        errors: r.uv()?,
        panics: r.uv()?,
        json_requests: r.uv()?,
        bin_requests: r.uv()?,
        ingest_batches: r.uv()?,
        subscriptions: r.uv()?,
        sub_events: r.uv()?,
        sub_lagged: r.uv()?,
    };
    let read_only = match r.byte()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("bad bool".into())),
    };
    let store = StoreStats {
        segments: r.uv()?,
        runs: r.uv()?,
        bytes: r.uv()?,
        recovered_tail_bytes: r.uv()?,
        compacted_through: r.uv()?,
    };
    let open_timestamp_ns = r.uv()?;
    let uptime_secs = r.uv()?;
    let count = r.uv()?;
    let n = checked_count(r, count)?;
    let mut latency = Vec::with_capacity(n);
    for _ in 0..n {
        latency.push(LatencyStat {
            verb: r.str()?,
            proto: r.str()?,
            count: r.uv()?,
            sum_ns: r.uv()?,
            max_ns: r.uv()?,
            p50_ns: r.uv()?,
            p99_ns: r.uv()?,
        });
    }
    Ok(ServerStatsReport {
        service,
        read_only,
        store,
        open_timestamp_ns,
        uptime_secs,
        latency,
    })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a request payload (unframed; pass to [`frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match req {
        Request::Hello {
            version,
            features,
            auth,
        } => {
            out.push(TAG_HELLO);
            put_uv(&mut out, u64::from(*version));
            put_uv(&mut out, *features);
            // Auth extension: a presence byte plus the secret. Absent
            // entirely in pre-auth encoders, so the decoder treats a
            // HELLO that ends here as carrying no secret.
            match auth {
                Some(secret) => {
                    out.push(1);
                    put_str(&mut out, secret);
                }
                None => out.push(0),
            }
        }
        Request::Ingest(rec) => {
            out.push(TAG_INGEST);
            put_record(&mut out, rec);
        }
        Request::IngestBatch(items) => {
            out.push(TAG_INGEST_BATCH);
            put_uv(&mut out, items.len() as u64);
            for rec in items {
                put_record(&mut out, rec);
            }
        }
        Request::QueryTop {
            benchmark,
            threads,
            n,
            window,
        } => {
            out.push(TAG_QUERY_TOP);
            put_str(&mut out, benchmark);
            put_uv(&mut out, u64::from(*threads));
            put_uv(&mut out, *n as u64);
            put_window(&mut out, window);
        }
        Request::QueryStats {
            benchmark,
            threads,
            window,
        } => {
            out.push(TAG_QUERY_STATS);
            put_str(&mut out, benchmark);
            put_uv(&mut out, u64::from(*threads));
            put_window(&mut out, window);
        }
        Request::QueryRegress {
            benchmark,
            threads,
            profile,
            threshold,
            min_runs,
            min_delta_ns,
            window,
        } => {
            out.push(TAG_QUERY_REGRESS);
            put_str(&mut out, benchmark);
            put_uv(&mut out, u64::from(*threads));
            put_opt_f64(&mut out, *threshold);
            put_opt_uv(&mut out, *min_runs);
            put_opt_uv(&mut out, *min_delta_ns);
            put_window(&mut out, window);
            put_payload(&mut out, profile);
        }
        Request::QueryTrend {
            benchmark,
            threads,
            buckets,
            window,
        } => {
            out.push(TAG_QUERY_TREND);
            put_str(&mut out, benchmark);
            put_uv(&mut out, u64::from(*threads));
            put_uv(&mut out, u64::from(*buckets));
            put_window(&mut out, window);
        }
        Request::Stats => out.push(TAG_STATS),
        Request::StatsPrometheus => out.push(TAG_STATS_PROM),
        Request::Subscribe { interval_ms } => {
            out.push(TAG_SUBSCRIBE);
            put_opt_uv(&mut out, *interval_ms);
        }
        Request::Export { after, max } => {
            out.push(TAG_EXPORT);
            put_uv(&mut out, *after);
            put_uv(&mut out, *max);
        }
        Request::Apply { frames } => {
            out.push(TAG_APPLY);
            put_frames(&mut out, frames);
        }
    }
    out
}

/// Decode a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.byte()? {
        TAG_HELLO => {
            let version = u32::try_from(r.uv()?)
                .map_err(|_| WireError::Malformed("version out of range".into()))?;
            let features = r.uv()?;
            let auth = if r.done() {
                None
            } else {
                match r.byte()? {
                    0 => None,
                    1 => Some(r.str()?),
                    _ => return Err(WireError::Malformed("bad auth flag".into())),
                }
            };
            Request::Hello {
                version,
                features,
                auth,
            }
        }
        TAG_INGEST => Request::Ingest(read_record(&mut r)?),
        TAG_INGEST_BATCH => {
            let count = r.uv()?;
            let n = checked_count(&r, count)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_record(&mut r)?);
            }
            Request::IngestBatch(items)
        }
        TAG_QUERY_TOP => Request::QueryTop {
            benchmark: r.str()?,
            threads: read_threads(&mut r)?,
            n: r.uv()? as usize,
            window: read_window(&mut r)?,
        },
        TAG_QUERY_STATS => Request::QueryStats {
            benchmark: r.str()?,
            threads: read_threads(&mut r)?,
            window: read_window(&mut r)?,
        },
        TAG_QUERY_REGRESS => Request::QueryRegress {
            benchmark: r.str()?,
            threads: read_threads(&mut r)?,
            threshold: read_opt_f64(&mut r)?,
            min_runs: read_opt_uv(&mut r)?,
            min_delta_ns: read_opt_uv(&mut r)?,
            window: read_window(&mut r)?,
            profile: read_payload(&mut r)?,
        },
        TAG_QUERY_TREND => Request::QueryTrend {
            benchmark: r.str()?,
            threads: read_threads(&mut r)?,
            buckets: u32::try_from(r.uv()?)
                .map_err(|_| WireError::Malformed("buckets out of range".into()))?,
            window: read_window(&mut r)?,
        },
        TAG_STATS => Request::Stats,
        TAG_STATS_PROM => Request::StatsPrometheus,
        TAG_SUBSCRIBE => Request::Subscribe {
            interval_ms: read_opt_uv(&mut r)?,
        },
        TAG_EXPORT => Request::Export {
            after: r.uv()?,
            max: r.uv()?,
        },
        TAG_APPLY => Request::Apply {
            frames: read_frames(&mut r)?,
        },
        tag => {
            return Err(WireError::Malformed(format!(
                "unknown request tag {tag:#x}"
            )))
        }
    };
    if !r.done() {
        return Err(WireError::Malformed("trailing bytes after request".into()));
    }
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Encode a response payload (unframed; pass to [`frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match resp {
        Response::Hello { version, features } => {
            out.push(TAG_R_HELLO);
            put_uv(&mut out, u64::from(*version));
            put_uv(&mut out, *features);
        }
        Response::Ingest(rcpt) => {
            out.push(TAG_R_INGEST);
            put_uv(&mut out, rcpt.first_run_id);
            put_uv(&mut out, rcpt.count);
            put_uv(&mut out, rcpt.bytes);
            put_uv(&mut out, rcpt.segment);
        }
        Response::Top(t) => {
            out.push(TAG_R_TOP);
            put_str(&mut out, &t.benchmark);
            put_uv(&mut out, u64::from(t.threads));
            put_uv(&mut out, t.runs);
            put_uv(&mut out, t.regions.len() as u64);
            for row in &t.regions {
                put_str(&mut out, &row.region);
                put_metric(&mut out, &row.metric);
            }
        }
        Response::Stats(s) => {
            out.push(TAG_R_STATS);
            put_str(&mut out, &s.benchmark);
            put_uv(&mut out, u64::from(s.threads));
            put_uv(&mut out, s.runs);
            put_metric(&mut out, &s.total_ns);
            put_uv(&mut out, s.constructs);
            put_uv(&mut out, s.tree_mismatches);
        }
        Response::Regress(v) => {
            out.push(TAG_R_REGRESS);
            out.push(u8::from(v.regressed));
            put_uv(&mut out, v.baseline_runs);
            put_f64(&mut out, v.threshold);
            put_uv(&mut out, v.findings.len() as u64);
            for f in &v.findings {
                put_str(&mut out, &f.region);
                put_uv(&mut out, f.new_ns);
                put_f64(&mut out, f.mean_ns);
                put_f64(&mut out, f.ratio);
            }
        }
        Response::Trend(t) => {
            out.push(TAG_R_TREND);
            put_str(&mut out, &t.benchmark);
            put_uv(&mut out, u64::from(t.threads));
            put_uv(&mut out, t.runs);
            put_uv(&mut out, t.buckets.len() as u64);
            for b in &t.buckets {
                put_uv(&mut out, b.runs);
                put_uv(&mut out, b.sum_ns);
                put_uv(&mut out, b.min_ns);
                put_uv(&mut out, b.max_ns);
                put_uv(&mut out, b.first_timestamp_ns);
                put_uv(&mut out, b.last_timestamp_ns);
            }
        }
        Response::ServerStats(h) => {
            out.push(TAG_R_SERVER_STATS);
            put_server_stats(&mut out, h);
        }
        Response::Prometheus(text) => {
            out.push(TAG_R_PROMETHEUS);
            put_str(&mut out, text);
        }
        Response::Subscribed { interval_ms } => {
            out.push(TAG_R_SUBSCRIBED);
            put_uv(&mut out, *interval_ms);
        }
        Response::Event(n) => {
            out.push(TAG_R_EVENT);
            match n {
                Notification::Telemetry { t_ns, stats } => {
                    out.push(EVENT_TELEMETRY);
                    put_uv(&mut out, *t_ns);
                    put_server_stats(&mut out, stats);
                }
                Notification::Ingest {
                    first_run_id,
                    count,
                    bytes,
                    benchmark,
                    threads,
                } => {
                    out.push(EVENT_INGEST);
                    put_uv(&mut out, *first_run_id);
                    put_uv(&mut out, *count);
                    put_uv(&mut out, *bytes);
                    put_str(&mut out, benchmark);
                    put_uv(&mut out, u64::from(*threads));
                }
                Notification::Lagged { dropped } => {
                    out.push(EVENT_LAGGED);
                    put_uv(&mut out, *dropped);
                }
            }
        }
        Response::ExportChunk {
            frames,
            watermark,
            done,
        } => {
            out.push(TAG_R_EXPORT);
            put_frames(&mut out, frames);
            put_uv(&mut out, *watermark);
            out.push(u8::from(*done));
        }
        Response::Applied {
            applied,
            skipped,
            watermark,
        } => {
            out.push(TAG_R_APPLIED);
            put_uv(&mut out, *applied);
            put_uv(&mut out, *skipped);
            put_uv(&mut out, *watermark);
        }
        Response::Error { kind, message } => {
            out.push(TAG_R_ERROR);
            out.push(kind_to_byte(*kind));
            put_str(&mut out, message);
        }
    }
    out
}

/// Decode a response payload produced by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.byte()? {
        TAG_R_HELLO => Response::Hello {
            version: u32::try_from(r.uv()?)
                .map_err(|_| WireError::Malformed("version out of range".into()))?,
            features: r.uv()?,
        },
        TAG_R_INGEST => Response::Ingest(IngestReceipt {
            first_run_id: r.uv()?,
            count: r.uv()?,
            bytes: r.uv()?,
            segment: r.uv()?,
        }),
        TAG_R_TOP => {
            let benchmark = r.str()?;
            let threads = read_threads(&mut r)?;
            let runs = r.uv()?;
            let count = r.uv()?;
            let n = checked_count(&r, count)?;
            let mut regions = Vec::with_capacity(n);
            for _ in 0..n {
                regions.push(RegionRow {
                    region: r.str()?,
                    metric: read_metric(&mut r)?,
                });
            }
            Response::Top(TopReport {
                benchmark,
                threads,
                runs,
                regions,
            })
        }
        TAG_R_STATS => Response::Stats(StatsReport {
            benchmark: r.str()?,
            threads: read_threads(&mut r)?,
            runs: r.uv()?,
            total_ns: read_metric(&mut r)?,
            constructs: r.uv()?,
            tree_mismatches: r.uv()?,
        }),
        TAG_R_REGRESS => {
            let regressed = match r.byte()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad bool".into())),
            };
            let baseline_runs = r.uv()?;
            let threshold = read_f64(&mut r)?;
            let count = r.uv()?;
            let n = checked_count(&r, count)?;
            let mut findings = Vec::with_capacity(n);
            for _ in 0..n {
                findings.push(RegressFinding {
                    region: r.str()?,
                    new_ns: r.uv()?,
                    mean_ns: read_f64(&mut r)?,
                    ratio: read_f64(&mut r)?,
                });
            }
            Response::Regress(RegressReport {
                regressed,
                baseline_runs,
                threshold,
                findings,
            })
        }
        TAG_R_TREND => {
            let benchmark = r.str()?;
            let threads = read_threads(&mut r)?;
            let runs = r.uv()?;
            let count = r.uv()?;
            let n = checked_count(&r, count)?;
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                buckets.push(TrendBucket {
                    runs: r.uv()?,
                    sum_ns: r.uv()?,
                    min_ns: r.uv()?,
                    max_ns: r.uv()?,
                    first_timestamp_ns: r.uv()?,
                    last_timestamp_ns: r.uv()?,
                });
            }
            Response::Trend(TrendReport {
                benchmark,
                threads,
                runs,
                buckets,
            })
        }
        TAG_R_SERVER_STATS => Response::ServerStats(read_server_stats(&mut r)?),
        TAG_R_PROMETHEUS => Response::Prometheus(r.str()?),
        TAG_R_SUBSCRIBED => Response::Subscribed {
            interval_ms: r.uv()?,
        },
        TAG_R_EVENT => Response::Event(match r.byte()? {
            EVENT_TELEMETRY => Notification::Telemetry {
                t_ns: r.uv()?,
                stats: read_server_stats(&mut r)?,
            },
            EVENT_INGEST => Notification::Ingest {
                first_run_id: r.uv()?,
                count: r.uv()?,
                bytes: r.uv()?,
                benchmark: r.str()?,
                threads: read_threads(&mut r)?,
            },
            EVENT_LAGGED => Notification::Lagged { dropped: r.uv()? },
            b => return Err(WireError::Malformed(format!("unknown event subtype {b}"))),
        }),
        TAG_R_EXPORT => {
            let frames = read_frames(&mut r)?;
            let watermark = r.uv()?;
            let done = match r.byte()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad bool".into())),
            };
            Response::ExportChunk {
                frames,
                watermark,
                done,
            }
        }
        TAG_R_APPLIED => Response::Applied {
            applied: r.uv()?,
            skipped: r.uv()?,
            watermark: r.uv()?,
        },
        TAG_R_ERROR => Response::Error {
            kind: kind_from_byte(r.byte()?)?,
            message: r.str()?,
        },
        tag => {
            return Err(WireError::Malformed(format!(
                "unknown response tag {tag:#x}"
            )))
        }
    };
    if !r.done() {
        return Err(WireError::Malformed("trailing bytes after response".into()));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                version: 1,
                features: FEATURE_BATCH_INGEST,
                auth: None,
            },
            Request::Hello {
                version: 1,
                features: FEATURE_BATCH_INGEST,
                auth: Some("hunter2".into()),
            },
            Request::Export {
                after: 99,
                max: 512,
            },
            Request::Apply { frames: Vec::new() },
            Request::Apply {
                frames: vec![vec![0xDE, 0xAD], vec![], vec![0x00; 32]],
            },
            Request::Ingest(Record::from_text(
                "fib",
                2,
                Some(7),
                "taskprof-profile v1\n",
            )),
            Request::IngestBatch(vec![
                Record {
                    benchmark: "fib".into(),
                    threads: 2,
                    timestamp_ns: None,
                    profile: ProfilePayload::Record(vec![1, 2, 3]),
                },
                Record::from_text("sort", 4, Some(9), "x"),
            ]),
            Request::QueryTop {
                benchmark: "nqueens".into(),
                threads: 4,
                n: 10,
                window: RunWindow::default(),
            },
            Request::QueryStats {
                benchmark: "fib".into(),
                threads: 2,
                window: RunWindow {
                    last: Some(30),
                    since_ns: Some(7_000),
                },
            },
            Request::QueryRegress {
                benchmark: "fib".into(),
                threads: 2,
                profile: ProfilePayload::Record(vec![0xAA; 16]),
                threshold: Some(0.25),
                min_runs: Some(3),
                min_delta_ns: None,
                window: RunWindow {
                    last: Some(10),
                    since_ns: None,
                },
            },
            Request::QueryTrend {
                benchmark: "fib".into(),
                threads: 2,
                buckets: 16,
                window: RunWindow {
                    last: None,
                    since_ns: Some(99),
                },
            },
            Request::Stats,
            Request::StatsPrometheus,
            Request::Subscribe {
                interval_ms: Some(500),
            },
            Request::Subscribe { interval_ms: None },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Hello {
                version: 1,
                features: FEATURE_BATCH_INGEST,
            },
            Response::ExportChunk {
                frames: vec![vec![9, 8, 7], Vec::new()],
                watermark: 41,
                done: true,
            },
            Response::Applied {
                applied: 5,
                skipped: 2,
                watermark: 41,
            },
            Response::Ingest(IngestReceipt {
                first_run_id: 41,
                count: 3,
                bytes: 1234,
                segment: 2,
            }),
            Response::Top(TopReport {
                benchmark: "fib".into(),
                threads: 2,
                runs: 5,
                regions: vec![RegionRow {
                    region: "fib!task".into(),
                    metric: MetricReport {
                        runs: 5,
                        sum_ns: 100,
                        min_ns: 10,
                        max_ns: 30,
                        mean_ns: 20.0,
                    },
                }],
            }),
            Response::Regress(RegressReport {
                regressed: true,
                baseline_runs: 4,
                threshold: 0.25,
                findings: vec![RegressFinding {
                    region: "fib!task".into(),
                    new_ns: 150,
                    mean_ns: 100.0,
                    ratio: 1.5,
                }],
            }),
            Response::Trend(TrendReport {
                benchmark: "fib".into(),
                threads: 2,
                runs: 6,
                buckets: vec![
                    TrendBucket {
                        runs: 3,
                        sum_ns: 300,
                        min_ns: 90,
                        max_ns: 110,
                        first_timestamp_ns: 1,
                        last_timestamp_ns: 3,
                    },
                    TrendBucket {
                        runs: 3,
                        sum_ns: 330,
                        min_ns: 100,
                        max_ns: 120,
                        first_timestamp_ns: 4,
                        last_timestamp_ns: 6,
                    },
                ],
            }),
            Response::ServerStats(ServerStatsReport::default()),
            Response::ServerStats(ServerStatsReport {
                open_timestamp_ns: 1_700_000_000,
                uptime_secs: 42,
                latency: vec![LatencyStat {
                    verb: "ingest".into(),
                    proto: "bin".into(),
                    count: 5,
                    sum_ns: 5_000,
                    max_ns: 1_500,
                    p50_ns: 1_023,
                    p99_ns: 1_500,
                }],
                ..ServerStatsReport::default()
            }),
            Response::Prometheus("profserve_ingests_total 7\n".into()),
            Response::Subscribed { interval_ms: 500 },
            Response::Event(Notification::Telemetry {
                t_ns: 12_345,
                stats: ServerStatsReport::default(),
            }),
            Response::Event(Notification::Ingest {
                first_run_id: 9,
                count: 2,
                bytes: 800,
                benchmark: "fib".into(),
                threads: 2,
            }),
            Response::Event(Notification::Lagged { dropped: 3 }),
            Response::Error {
                kind: ErrorKind::ReadOnly,
                message: "disk full".into(),
            },
            Response::Error {
                kind: ErrorKind::Unauthorized,
                message: "auth required".into(),
            },
        ]
    }

    #[test]
    fn pre_auth_hello_payloads_still_decode() {
        // A HELLO frame from an encoder predating the auth extension
        // ends after the feature mask; it must decode as "no secret".
        let mut payload = vec![TAG_HELLO];
        put_uv(&mut payload, 1);
        put_uv(&mut payload, FEATURE_BATCH_INGEST);
        assert_eq!(
            decode_request(&payload).expect("decode"),
            Request::Hello {
                version: 1,
                features: FEATURE_BATCH_INGEST,
                auth: None,
            }
        );
    }

    #[test]
    fn requests_round_trip_through_frames() {
        for req in sample_requests() {
            let framed = frame(&encode_request(&req));
            let (payload, consumed) = try_frame(&framed, 1 << 20).expect("frame").expect("whole");
            assert_eq!(consumed, framed.len());
            assert_eq!(decode_request(&payload).expect("decode"), req);
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for resp in sample_responses() {
            let framed = frame(&encode_response(&resp));
            let (payload, consumed) = try_frame(&framed, 1 << 20).expect("frame").expect("whole");
            assert_eq!(consumed, framed.len());
            assert_eq!(decode_response(&payload).expect("decode"), resp);
        }
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let framed = frame(&encode_request(&Request::Stats));
        for cut in 0..framed.len() {
            assert_eq!(try_frame(&framed[..cut], 1 << 20).expect("no error"), None);
        }
    }

    #[test]
    fn oversized_length_word_is_rejected() {
        let framed = frame(&[0u8; 100]);
        assert!(matches!(
            try_frame(&framed, 10),
            Err(WireError::FrameTooLarge { len: 100, max: 10 })
        ));
    }

    #[test]
    fn payload_corruption_is_detected_by_crc() {
        let mut framed = frame(&encode_request(&Request::QueryStats {
            benchmark: "fib".into(),
            threads: 2,
            window: RunWindow::default(),
        }));
        // Flip one bit in every payload byte position in turn.
        for at in 4..framed.len() - 4 {
            framed[at] ^= 0x10;
            assert_eq!(try_frame(&framed, 1 << 20), Err(WireError::CrcMismatch));
            framed[at] ^= 0x10;
        }
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let reqs = sample_requests();
        let mut stream = Vec::new();
        for req in &reqs {
            stream.extend_from_slice(&frame(&encode_request(req)));
        }
        let mut decoded = Vec::new();
        let mut pos = 0;
        while let Some((payload, consumed)) = try_frame(&stream[pos..], 1 << 20).expect("frame") {
            decoded.push(decode_request(&payload).expect("decode"));
            pos += consumed;
        }
        assert_eq!(pos, stream.len());
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn garbage_payloads_never_decode_as_requests() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x7F]).is_err());
        assert!(decode_request(&[TAG_INGEST, 0xFF, 0xFF]).is_err());
        // Trailing bytes after a valid structure are rejected.
        let mut p = encode_request(&Request::Stats);
        p.push(0);
        assert!(decode_request(&p).is_err());
    }
}
