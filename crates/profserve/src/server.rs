//! The serving daemon: a `std::net` TCP accept loop, one handler thread
//! per admitted connection, a bounded permit gate in front of admission,
//! and per-request panic isolation.
//!
//! Backpressure policy: the accept loop itself never blocks on request
//! work and never waits for a permit. When `max_connections` handlers are
//! live, the next connection is answered immediately with a typed
//! `overloaded` error line and closed, and the shed is counted — mirroring
//! the profiler's overload shedding (degrade loudly, never stall the hot
//! path). Handler panics are caught per request (`catch_unwind`, the PR 1
//! pattern), answered with a typed `internal` error, and counted; the
//! connection — and the daemon — keep serving.

use crate::protocol::{
    error_line, ingest_line, regress_line, server_stats_line, stats_line, top_line, ErrorKind,
    Request,
};
use profstore::{ProfileStore, RegressConfig, RunSummary, StoreError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;
use taskprof_telemetry::ServiceCounters;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent-connection cap (the permit gate).
    pub max_connections: usize,
    /// Defaults for `regress` queries that omit tunables.
    pub regress: RegressConfig,
    /// Fold closed segments into the aggregate cache at this interval
    /// (`None` disables background compaction).
    pub compact_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            regress: RegressConfig::default(),
            compact_interval: Some(Duration::from_secs(2)),
        }
    }
}

struct Shared {
    store: RwLock<ProfileStore>,
    counters: Arc<ServiceCounters>,
    permits: AtomicUsize,
    stop: AtomicBool,
    config: ServeConfig,
}

/// Cheap cloneable control handle for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (use this after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's service counters.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Ask the accept loop to exit. Idempotent; returns once the flag is
    /// set (the loop notices via a wake-up connection).
    pub fn stop(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The repository daemon. Bind, then [`Server::run`] (foreground) or
/// [`Server::spawn`] (background thread + [`ServerHandle`]).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over an
    /// already-open store.
    pub fn bind(addr: &str, store: ProfileStore, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            store: RwLock::new(store),
            counters: ServiceCounters::new(),
            permits: AtomicUsize::new(config.max_connections),
            stop: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle (valid before and during [`Server::run`]).
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Serve until [`ServerHandle::stop`]; joins all handler threads (and
    /// the compactor) before returning.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let compactor = self.shared.config.compact_interval.map(|every| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                // Sleep in small slices so stop stays responsive, but
                // only compact once per full interval. The tick counter
                // is per-server state: a process running several servers
                // (tests) must not skew each other's compaction cadence.
                let slice = every.min(Duration::from_millis(100));
                let per_interval = (every.as_millis() / slice.as_millis().max(1)).max(1) as usize;
                let mut ticks: usize = 0;
                while !shared.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    ticks += 1;
                    if !ticks.is_multiple_of(per_interval) {
                        continue;
                    }
                    if let Ok(mut store) = shared.store.write() {
                        let _ = store.compact();
                    }
                }
            })
        });

        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Bounded admission: take a permit or shed, never block.
            let admitted = self
                .shared
                .permits
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
                .is_ok();
            if !admitted {
                self.shared.counters.shed();
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "{}",
                    error_line(ErrorKind::Overloaded, "connection limit reached; retry later")
                );
                continue;
            }
            self.shared.counters.connection();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::spawn(move || {
                serve_connection(&shared, stream);
                shared.permits.fetch_add(1, Ordering::AcqRel);
            });
            // Reap finished handlers so a long-running daemon's handle
            // list tracks live connections (bounded by the permit gate),
            // not total connections ever served.
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
        }

        for handle in workers {
            let _ = handle.join();
        }
        if let Some(compactor) = compactor {
            let _ = compactor.join();
        }
        Ok(())
    }

    /// Bind + run on a background thread; the returned handle stops it.
    pub fn spawn(
        addr: &str,
        store: ProfileStore,
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(addr, store, config)?;
        let handle = server.handle()?;
        let join = std::thread::spawn(move || server.run());
        Ok((handle, join))
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Responses are one line each; without nodelay they sit behind the
    // peer's delayed ACK and cap the request/response rate at ~25/s.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        // Per-request panic isolation: a handler bug answers one request
        // with `internal`, it does not take the daemon down.
        let response = match catch_unwind(AssertUnwindSafe(|| handle_request(shared, &line))) {
            Ok(resp) => resp,
            Err(_) => {
                shared.counters.panic();
                error_line(ErrorKind::Internal, "request handler panicked (isolated)")
            }
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn store_error(e: &StoreError) -> String {
    match e {
        StoreError::NotFound(_) => error_line(ErrorKind::NotFound, &e.to_string()),
        _ => error_line(ErrorKind::Internal, &e.to_string()),
    }
}

/// Aggregate one group, mapping an empty group to `not_found` — queries
/// against a benchmark/threads pair nobody ingested should say so, not
/// answer with all-zero statistics.
fn aggregate_group(
    shared: &Arc<Shared>,
    benchmark: &str,
    threads: u32,
) -> Result<profstore::BenchAgg, String> {
    let store = shared.store.read().expect("store lock");
    match store.aggregate(benchmark, threads) {
        Ok(agg) if agg.runs == 0 => {
            shared.counters.error();
            Err(error_line(
                ErrorKind::NotFound,
                &format!("no runs stored for benchmark '{benchmark}' at {threads} threads"),
            ))
        }
        Ok(agg) => Ok(agg),
        Err(e) => {
            shared.counters.error();
            Err(store_error(&e))
        }
    }
}

fn handle_request(shared: &Arc<Shared>, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(reason) => {
            shared.counters.error();
            return error_line(ErrorKind::BadRequest, &reason);
        }
    };
    match request {
        Request::Ingest {
            benchmark,
            threads,
            timestamp_ns,
            profile_text,
        } => {
            let profile = match cube::read_profile(&profile_text) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.error();
                    return error_line(ErrorKind::BadRequest, &format!("profile: {e}"));
                }
            };
            let timestamp = timestamp_ns.unwrap_or_else(now_ns);
            let mut store = shared.store.write().expect("store lock");
            match store.ingest(&benchmark, threads, timestamp, &profile) {
                Ok(receipt) => {
                    shared.counters.ingest(receipt.bytes);
                    ingest_line(receipt.run_id, receipt.bytes, receipt.segment)
                }
                Err(e) => {
                    shared.counters.error();
                    store_error(&e)
                }
            }
        }
        Request::QueryTop {
            benchmark,
            threads,
            n,
        } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => top_line(&benchmark, threads, &agg, n),
                Err(line) => line,
            }
        }
        Request::QueryStats { benchmark, threads } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => stats_line(&benchmark, threads, &agg),
                Err(line) => line,
            }
        }
        Request::QueryRegress {
            benchmark,
            threads,
            profile_text,
            threshold,
            min_runs,
            min_delta_ns,
        } => {
            shared.counters.query();
            let profile = match cube::read_profile(&profile_text) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.error();
                    return error_line(ErrorKind::BadRequest, &format!("profile: {e}"));
                }
            };
            let config = RegressConfig {
                threshold: threshold.unwrap_or(shared.config.regress.threshold),
                min_runs: min_runs.unwrap_or(shared.config.regress.min_runs),
                min_delta_ns: min_delta_ns.unwrap_or(shared.config.regress.min_delta_ns),
            };
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => {
                    let summary = RunSummary::from_profile(&profile);
                    regress_line(&agg.check_regression(&summary, &config))
                }
                Err(line) => line,
            }
        }
        Request::Stats => {
            shared.counters.query();
            let store = shared.store.read().expect("store lock");
            server_stats_line(&shared.counters.snapshot(), &store.stats())
        }
    }
}
