//! The serving daemon: a `std::net` TCP accept loop, one handler thread
//! per admitted connection, a bounded permit gate in front of admission,
//! and per-request panic isolation.
//!
//! Backpressure policy: the accept loop itself never blocks on request
//! work and never waits for a permit. When `max_connections` handlers are
//! live, the next connection is answered immediately with a typed
//! `overloaded` error line and closed, and the shed is counted — mirroring
//! the profiler's overload shedding (degrade loudly, never stall the hot
//! path). Handler panics are caught per request (`catch_unwind`, the PR 1
//! pattern), answered with a typed `internal` error, and counted; the
//! connection — and the daemon — keep serving.
//!
//! Failure model (PR 6):
//!
//! * **Slow-loris defense** — every connection carries read/write
//!   deadlines ([`ServeConfig::read_timeout`] / `write_timeout`); a peer
//!   that trickles bytes (or goes silent mid-request) is dropped when the
//!   deadline fires, counted in `timeout_connections`.
//! * **Bounded request lines** — the line reader caps the buffer at
//!   [`ServeConfig::max_request_bytes`]; an over-long line gets a typed
//!   `too_large` error and the connection closes (there is no way to
//!   resync inside an unterminated line), instead of growing a `Vec`
//!   until OOM.
//! * **Graceful shutdown** — after [`ServerHandle::stop`] every handler
//!   finishes (and answers) the request it already received before
//!   closing; the deadlines bound how long draining can take.
//! * **Read-only degradation** — an `ENOSPC` from the store flips the
//!   daemon into read-only mode: further ingests get a typed `read_only`
//!   error, queries keep working, and `STATS` reports `"read_only":true`
//!   so operators see the degradation instead of a crash loop.

use crate::protocol::{
    error_line, ingest_line, regress_line, server_stats_line, stats_line, top_line, ErrorKind,
    Request,
};
use profstore::{is_enospc, ProfileStore, RegressConfig, RunSummary, StoreError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;
use taskprof_telemetry::ServiceCounters;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent-connection cap (the permit gate).
    pub max_connections: usize,
    /// Defaults for `regress` queries that omit tunables.
    pub regress: RegressConfig,
    /// Fold closed segments into the aggregate cache at this interval
    /// (`None` disables background compaction).
    pub compact_interval: Option<Duration>,
    /// Drop a connection whose next request does not arrive within this
    /// deadline (`None` waits forever — the pre-hardening behavior).
    pub read_timeout: Option<Duration>,
    /// Deadline for writing one response line back to the peer.
    pub write_timeout: Option<Duration>,
    /// Reject request lines longer than this many bytes with a typed
    /// `too_large` error (profiles travel inline, so the cap is generous).
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            regress: RegressConfig::default(),
            compact_interval: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_request_bytes: 32 << 20,
        }
    }
}

struct Shared {
    store: RwLock<ProfileStore>,
    counters: Arc<ServiceCounters>,
    permits: AtomicUsize,
    stop: AtomicBool,
    /// Set on the first `ENOSPC` from the store; ingests are refused
    /// (typed `read_only`) until the daemon restarts with free disk.
    read_only: AtomicBool,
    config: ServeConfig,
}

/// Cheap cloneable control handle for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (use this after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's service counters.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Ask the accept loop to exit. Idempotent; returns once the flag is
    /// set (the loop notices via a wake-up connection). Handlers drain:
    /// each finishes and answers the request it already received before
    /// closing its connection.
    pub fn stop(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// True once an `ENOSPC` degraded the daemon to read-only mode.
    pub fn read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::SeqCst)
    }
}

/// The repository daemon. Bind, then [`Server::run`] (foreground) or
/// [`Server::spawn`] (background thread + [`ServerHandle`]).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over an
    /// already-open store.
    pub fn bind(addr: &str, store: ProfileStore, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            store: RwLock::new(store),
            counters: ServiceCounters::new(),
            permits: AtomicUsize::new(config.max_connections),
            stop: AtomicBool::new(false),
            read_only: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle (valid before and during [`Server::run`]).
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Serve until [`ServerHandle::stop`]; joins all handler threads (and
    /// the compactor) before returning.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let compactor = self.shared.config.compact_interval.map(|every| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                // Sleep in small slices so stop stays responsive, but
                // only compact once per full interval. The tick counter
                // is per-server state: a process running several servers
                // (tests) must not skew each other's compaction cadence.
                let slice = every.min(Duration::from_millis(100));
                let per_interval = (every.as_millis() / slice.as_millis().max(1)).max(1) as usize;
                let mut ticks: usize = 0;
                while !shared.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    ticks += 1;
                    if !ticks.is_multiple_of(per_interval) {
                        continue;
                    }
                    if let Ok(mut store) = shared.store.write() {
                        let _ = store.compact();
                    }
                }
            })
        });

        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Bounded admission: take a permit or shed, never block.
            let admitted = self
                .shared
                .permits
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
                .is_ok();
            if !admitted {
                self.shared.counters.shed();
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "{}",
                    error_line(ErrorKind::Overloaded, "connection limit reached; retry later")
                );
                continue;
            }
            self.shared.counters.connection();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::spawn(move || {
                serve_connection(&shared, stream);
                shared.permits.fetch_add(1, Ordering::AcqRel);
            });
            // Reap finished handlers so a long-running daemon's handle
            // list tracks live connections (bounded by the permit gate),
            // not total connections ever served.
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
        }

        for handle in workers {
            let _ = handle.join();
        }
        if let Some(compactor) = compactor {
            let _ = compactor.join();
        }
        Ok(())
    }

    /// Bind + run on a background thread; the returned handle stops it.
    pub fn spawn(
        addr: &str,
        store: ProfileStore,
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(addr, store, config)?;
        let handle = server.handle()?;
        let join = std::thread::spawn(move || server.run());
        Ok((handle, join))
    }
}

/// How one attempt to read a request line ended.
enum LineOutcome {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the size cap before its newline arrived.
    TooLarge,
    /// The read deadline fired (slow or silent peer).
    TimedOut,
    /// Any other I/O failure.
    Failed,
}

/// Read one `\n`-terminated line without ever buffering more than `max`
/// bytes — the fix for the unbounded-growth path where a newline-less
/// peer could balloon a `Vec` until OOM.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, max: usize) -> LineOutcome {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineOutcome::TimedOut
            }
            Err(_) => return LineOutcome::Failed,
        };
        if chunk.is_empty() {
            // EOF. A final unterminated line is still a request (mirrors
            // `BufRead::lines`), unless nothing arrived at all.
            return if line.is_empty() {
                LineOutcome::Eof
            } else {
                match String::from_utf8(std::mem::take(&mut line)) {
                    Ok(s) => LineOutcome::Line(s),
                    Err(_) => LineOutcome::Failed,
                }
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i);
        if line.len() + take > max {
            return LineOutcome::TooLarge;
        }
        line.extend_from_slice(&chunk[..take]);
        let consumed = newline.map_or(take, |i| i + 1);
        reader.consume(consumed);
        if newline.is_some() {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => LineOutcome::Line(s),
                Err(_) => LineOutcome::Failed,
            };
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Responses are one line each; without nodelay they sit behind the
    // peer's delayed ACK and cap the request/response rate at ~25/s.
    let _ = stream.set_nodelay(true);
    // Per-connection deadlines: a peer that trickles bytes or never
    // drains its receive buffer cannot pin this handler forever.
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, shared.config.max_request_bytes) {
            LineOutcome::Line(l) => l,
            LineOutcome::Eof | LineOutcome::Failed => break,
            LineOutcome::TimedOut => {
                // During a graceful shutdown an idle connection timing out
                // is the drain completing, not a misbehaving peer.
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.counters.timeout();
                }
                break;
            }
            LineOutcome::TooLarge => {
                shared.counters.error();
                let reply = error_line(
                    ErrorKind::TooLarge,
                    &format!(
                        "request line exceeds {} bytes; connection closed",
                        shared.config.max_request_bytes
                    ),
                );
                let _ = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // Per-request panic isolation: a handler bug answers one request
        // with `internal`, it does not take the daemon down.
        let response = match catch_unwind(AssertUnwindSafe(|| handle_request(shared, &line))) {
            Ok(resp) => resp,
            Err(_) => {
                shared.counters.panic();
                error_line(ErrorKind::Internal, "request handler panicked (isolated)")
            }
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        // Graceful drain: the request in flight was answered; only now
        // does a shutdown close the connection.
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn store_error(e: &StoreError) -> String {
    match e {
        StoreError::NotFound(_) => error_line(ErrorKind::NotFound, &e.to_string()),
        _ => error_line(ErrorKind::Internal, &e.to_string()),
    }
}

/// Aggregate one group, mapping an empty group to `not_found` — queries
/// against a benchmark/threads pair nobody ingested should say so, not
/// answer with all-zero statistics.
fn aggregate_group(
    shared: &Arc<Shared>,
    benchmark: &str,
    threads: u32,
) -> Result<profstore::BenchAgg, String> {
    let store = shared.store.read().expect("store lock");
    match store.aggregate(benchmark, threads) {
        Ok(agg) if agg.runs == 0 => {
            shared.counters.error();
            Err(error_line(
                ErrorKind::NotFound,
                &format!("no runs stored for benchmark '{benchmark}' at {threads} threads"),
            ))
        }
        Ok(agg) => Ok(agg),
        Err(e) => {
            shared.counters.error();
            Err(store_error(&e))
        }
    }
}

fn handle_request(shared: &Arc<Shared>, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(reason) => {
            shared.counters.error();
            return error_line(ErrorKind::BadRequest, &reason);
        }
    };
    match request {
        Request::Ingest {
            benchmark,
            threads,
            timestamp_ns,
            profile_text,
        } => {
            let profile = match cube::read_profile(&profile_text) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.error();
                    return error_line(ErrorKind::BadRequest, &format!("profile: {e}"));
                }
            };
            if shared.read_only.load(Ordering::SeqCst) {
                shared.counters.error();
                return error_line(
                    ErrorKind::ReadOnly,
                    "store degraded to read-only after ENOSPC; ingests refused",
                );
            }
            let timestamp = timestamp_ns.unwrap_or_else(now_ns);
            let mut store = shared.store.write().expect("store lock");
            match store.ingest(&benchmark, threads, timestamp, &profile) {
                Ok(receipt) => {
                    shared.counters.ingest(receipt.bytes);
                    ingest_line(receipt.run_id, receipt.bytes, receipt.segment)
                }
                Err(StoreError::Io(e)) if is_enospc(&e) => {
                    // The disk is full: degrade loudly to read-only rather
                    // than answering `internal` forever. Queries keep
                    // working off the intact prefix of the log.
                    shared.read_only.store(true, Ordering::SeqCst);
                    shared.counters.error();
                    error_line(
                        ErrorKind::ReadOnly,
                        "disk full (ENOSPC): store degraded to read-only",
                    )
                }
                Err(e) => {
                    shared.counters.error();
                    store_error(&e)
                }
            }
        }
        Request::QueryTop {
            benchmark,
            threads,
            n,
        } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => top_line(&benchmark, threads, &agg, n),
                Err(line) => line,
            }
        }
        Request::QueryStats { benchmark, threads } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => stats_line(&benchmark, threads, &agg),
                Err(line) => line,
            }
        }
        Request::QueryRegress {
            benchmark,
            threads,
            profile_text,
            threshold,
            min_runs,
            min_delta_ns,
        } => {
            shared.counters.query();
            let profile = match cube::read_profile(&profile_text) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.error();
                    return error_line(ErrorKind::BadRequest, &format!("profile: {e}"));
                }
            };
            let config = RegressConfig {
                threshold: threshold.unwrap_or(shared.config.regress.threshold),
                min_runs: min_runs.unwrap_or(shared.config.regress.min_runs),
                min_delta_ns: min_delta_ns.unwrap_or(shared.config.regress.min_delta_ns),
            };
            match aggregate_group(shared, &benchmark, threads) {
                Ok(agg) => {
                    let summary = RunSummary::from_profile(&profile);
                    regress_line(&agg.check_regression(&summary, &config))
                }
                Err(line) => line,
            }
        }
        Request::Stats => {
            shared.counters.query();
            let store = shared.store.read().expect("store lock");
            server_stats_line(
                &shared.counters.snapshot(),
                &store.stats(),
                shared.read_only.load(Ordering::SeqCst),
            )
        }
    }
}
