//! The serving daemon: an epoll-style reactor (see [`crate::reactor`])
//! multiplexing every connection on one thread, with first-byte protocol
//! sniffing (JSON lines vs TPF1 binary frames on the same port), a
//! bounded admission gate, and per-request panic isolation.
//!
//! Backpressure policy: admission never blocks on request work. When
//! `max_connections` connections are live, the next connection is
//! answered immediately with a typed `overloaded` error line and closed,
//! and the shed is counted — mirroring the profiler's overload shedding
//! (degrade loudly, never stall the hot path). Handler panics are caught
//! per request (`catch_unwind`, the PR 1 pattern), answered with a typed
//! `internal` error, and counted; the connection — and the daemon — keep
//! serving.
//!
//! Failure model (PR 6, semantics preserved across the reactor rewrite):
//!
//! * **Slow-loris defense** — every connection carries read/write
//!   deadlines ([`ServeConfig::read_timeout`] / `write_timeout`); a peer
//!   that trickles bytes (or goes silent mid-request) is dropped when the
//!   deadline fires, counted in `timeout_connections`.
//! * **Bounded requests** — the JSON path caps a request line at
//!   [`ServeConfig::max_request_bytes`] (typed `too_large`, then close:
//!   there is no way to resync inside an unterminated line); the binary
//!   path applies the same cap to a frame's length word.
//! * **Graceful shutdown** — after [`ServerHandle::stop`] every
//!   connection finishes (and answers) at most one request it already
//!   received before closing; the deadlines bound how long draining can
//!   take.
//! * **Read-only degradation** — an `ENOSPC` from the store flips the
//!   daemon into read-only mode: further ingests get a typed `read_only`
//!   error, queries keep working, and `STATS` reports `"read_only":true`
//!   so operators see the degradation instead of a crash loop.
//!
//! On non-unix hosts (no `poll`/`epoll`) a legacy thread-per-connection
//! loop serves the JSON protocol only.

use crate::protocol::{
    ErrorKind, IngestReceipt, Notification, Record, RegressReport, Request, Response,
    ServerStatsReport, StatsReport, TopReport, TrendReport, WireProtocol,
};
use crate::trace::{verb_index, ReqProto, RequestLatency};
use crate::wire;
use profstore::{is_enospc, RegressConfig, Repo, RetentionPolicy, RunSummary, StoreError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use taskprof_telemetry::ServiceCounters;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent-connection cap (the admission gate).
    pub max_connections: usize,
    /// Defaults for `regress` queries that omit tunables.
    pub regress: RegressConfig,
    /// Fold closed segments into the aggregate cache at this interval
    /// (`None` disables background compaction).
    pub compact_interval: Option<Duration>,
    /// Drop a connection whose next request does not arrive within this
    /// deadline (`None` waits forever — the pre-hardening behavior).
    pub read_timeout: Option<Duration>,
    /// Deadline for draining one response back to the peer.
    pub write_timeout: Option<Duration>,
    /// Reject JSON request lines (or binary frame payloads) longer than
    /// this many bytes with a typed `too_large` error (profiles travel
    /// inline, so the cap is generous).
    pub max_request_bytes: usize,
    /// Which wire protocols to accept: [`WireProtocol::Auto`] sniffs
    /// both on the same port; `Json`/`Binary` refuse the other with a
    /// typed `bad_request`.
    pub protocols: WireProtocol,
    /// Default telemetry push period for `SUBSCRIBE` when the client
    /// does not request one (clamped below at the reactor tick).
    pub subscribe_interval: Duration,
    /// Per-subscriber outbound queue cap in bytes. A push that would
    /// grow a subscriber's pending output beyond this is shed (and later
    /// reported with a typed `lagged` notice) so a stalled subscriber
    /// never blocks ingest or other connections.
    pub subscriber_queue_bytes: usize,
    /// Shared secret required from every connection (`None` = open).
    /// When set, a connection may only `HELLO` until it presents the
    /// secret; everything else earns a typed `unauthorized` error.
    /// Compared constant-time, so the reply latency leaks nothing about
    /// how many leading bytes matched.
    pub auth_secret: Option<String>,
    /// Retention policy applied by the background compactor (`None`
    /// keeps everything forever). GC runs on the compaction cadence.
    pub retention: Option<RetentionPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            regress: RegressConfig::default(),
            compact_interval: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_request_bytes: 32 << 20,
            protocols: WireProtocol::Auto,
            subscribe_interval: Duration::from_millis(500),
            subscriber_queue_bytes: 256 << 10,
            auth_secret: None,
            retention: None,
        }
    }
}

/// The reactor's poll tick — also the floor on subscription push
/// periods (defined here so the non-unix build sees it too).
pub(crate) const REACTOR_TICK: Duration = Duration::from_millis(50);

pub(crate) struct Shared {
    pub(crate) store: RwLock<Repo>,
    pub(crate) counters: Arc<ServiceCounters>,
    #[cfg_attr(unix, allow(dead_code))]
    pub(crate) permits: AtomicUsize,
    pub(crate) stop: AtomicBool,
    /// Set on the first `ENOSPC` from the store; ingests are refused
    /// (typed `read_only`) until the daemon restarts with free disk.
    pub(crate) read_only: AtomicBool,
    /// Per-(verb, protocol) request-latency histograms.
    pub(crate) latency: RequestLatency,
    /// Wall clock (unix epoch ns) when the store was opened for serving
    /// — the anchor reported in `STATS` for `since_ns` windows.
    pub(crate) open_ns: u64,
    /// Monotonic start instant, for `uptime_secs`.
    pub(crate) started: Instant,
    /// Frames handed out through `EXPORT` since start (leader side).
    pub(crate) exported_frames: AtomicU64,
    /// Frames written through `APPLY` since start (follower side).
    pub(crate) applied_frames: AtomicU64,
    pub(crate) config: ServeConfig,
}

/// Cheap cloneable control handle for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (use this after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's service counters.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Ask the reactor to exit. Idempotent; returns once the flag is set
    /// (the loop notices via a wake-up connection). Connections drain:
    /// each answers at most one request it already received before
    /// closing.
    pub fn stop(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the waiting reactor (or accept loop) with a throwaway
        // connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// True once an `ENOSPC` degraded the daemon to read-only mode.
    pub fn read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::SeqCst)
    }

    /// True once [`ServerHandle::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// One JSONL record of the daemon's request-latency histograms
    /// (`{"t_ns":…,"latency":{"<verb>.<proto>":{…}}}`), in the telemetry
    /// crate's latency schema — append these to the same sink as
    /// measurement-path [`taskprof_telemetry::to_jsonl_line`] records and
    /// read them back with
    /// [`taskprof_telemetry::parse_latency_jsonl_line`].
    pub fn latency_jsonl_line(&self, t_ns: u64) -> String {
        taskprof_telemetry::latency_to_jsonl_line(t_ns, &self.shared.latency.jsonl_series())
    }
}

/// The repository daemon. Bind, then [`Server::run`] (foreground) or
/// [`Server::spawn`] (background thread + [`ServerHandle`]).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over an
    /// already-open repository (a bare [`profstore::ProfileStore`] or a
    /// [`profstore::ShardedStore`] — both convert into [`Repo`]).
    pub fn bind(
        addr: &str,
        store: impl Into<Repo>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            store: RwLock::new(store.into()),
            counters: ServiceCounters::new(),
            permits: AtomicUsize::new(config.max_connections),
            stop: AtomicBool::new(false),
            read_only: AtomicBool::new(false),
            latency: RequestLatency::default(),
            open_ns: now_ns(),
            started: Instant::now(),
            exported_frames: AtomicU64::new(0),
            applied_frames: AtomicU64::new(0),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle (valid before and during [`Server::run`]).
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Serve until [`ServerHandle::stop`]; joins the compactor (and, on
    /// the legacy path, all handler threads) before returning.
    pub fn run(self) -> std::io::Result<()> {
        let compactor = self.shared.config.compact_interval.map(|every| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                // Sleep in small slices so stop stays responsive, but
                // only compact once per full interval. The tick counter
                // is per-server state: a process running several servers
                // (tests) must not skew each other's compaction cadence.
                let slice = every.min(Duration::from_millis(100));
                let per_interval = (every.as_millis() / slice.as_millis().max(1)).max(1) as usize;
                let mut ticks: usize = 0;
                while !shared.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    ticks += 1;
                    if !ticks.is_multiple_of(per_interval) {
                        continue;
                    }
                    if let Ok(mut store) = shared.store.write() {
                        let _ = store.compact();
                        if let Some(policy) = &shared.config.retention {
                            let _ = store.gc(policy);
                        }
                    }
                }
            })
        });

        let result = self.serve();

        if let Some(compactor) = compactor {
            let _ = compactor.join();
        }
        result
    }

    #[cfg(unix)]
    fn serve(self) -> std::io::Result<()> {
        crate::reactor::run(self.listener, Arc::clone(&self.shared))
    }

    #[cfg(not(unix))]
    fn serve(self) -> std::io::Result<()> {
        legacy::serve(self.listener, Arc::clone(&self.shared))
    }

    /// Bind + run on a background thread; the returned handle stops it.
    pub fn spawn(
        addr: &str,
        store: impl Into<Repo>,
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(addr, store, config)?;
        let handle = server.handle()?;
        let join = std::thread::spawn(move || server.run());
        Ok((handle, join))
    }
}

// ---------------------------------------------------------------------
// The protocol-agnostic request core
// ---------------------------------------------------------------------

pub(crate) fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

fn store_error(e: &StoreError) -> Response {
    match e {
        StoreError::NotFound(_) => error(ErrorKind::NotFound, e.to_string()),
        StoreError::BadFrame { .. } => error(ErrorKind::BadRequest, e.to_string()),
        _ => error(ErrorKind::Internal, e.to_string()),
    }
}

/// Constant-time string equality: fold every byte position with XOR so
/// the comparison touches the same bytes whether or not prefixes match,
/// leaking only the configured secret's length.
pub(crate) fn constant_time_eq(configured: &str, presented: &str) -> bool {
    let a = configured.as_bytes();
    let b = presented.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Frames-per-page ceiling the `EXPORT` handler enforces regardless of
/// what the client asked for, so one reply never approaches the
/// response size cap.
const EXPORT_MAX_FRAMES: u64 = 4096;

/// Aggregate one group, mapping an empty group to `not_found` — queries
/// against a benchmark/threads pair nobody ingested should say so, not
/// answer with all-zero statistics.
// The Err is the ready-to-send error Response; it exists for one frame
// on the request path, so boxing it buys nothing.
#[allow(clippy::result_large_err)]
fn aggregate_group(
    shared: &Shared,
    benchmark: &str,
    threads: u32,
    window: &profstore::RunWindow,
) -> Result<profstore::BenchAgg, Response> {
    let store = shared.store.read().expect("store lock");
    match store.aggregate_window(benchmark, threads, window) {
        Ok(agg) if agg.runs == 0 => Err(error(
            ErrorKind::NotFound,
            format!("no runs stored for benchmark '{benchmark}' at {threads} threads (in window)"),
        )),
        Ok(agg) => Ok(agg),
        Err(e) => Err(store_error(&e)),
    }
}

/// The full `STATS` report — also pushed verbatim inside `telemetry`
/// subscription events.
pub(crate) fn server_stats_report(shared: &Shared) -> ServerStatsReport {
    let store = shared.store.read().expect("store lock");
    ServerStatsReport {
        service: shared.counters.snapshot(),
        read_only: shared.read_only.load(Ordering::SeqCst),
        store: store.stats(),
        open_timestamp_ns: shared.open_ns,
        uptime_secs: shared.started.elapsed().as_secs(),
        latency: shared.latency.stats(),
    }
}

/// The `STATS prometheus` text: service counters, the request-latency
/// histograms, and store/uptime gauges in one scrape-ready document.
fn stats_prometheus(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let report = server_stats_report(shared);
    let (per_shard, watermark) = {
        let store = shared.store.read().expect("store lock");
        (store.per_shard_stats(), store.max_run_id())
    };
    let mut text = taskprof_telemetry::service_to_prometheus(&report.service);
    text.push_str(&shared.latency.to_prometheus());
    for (name, help, value) in [
        (
            "profserve_store_runs",
            "Runs in the store.",
            report.store.runs,
        ),
        (
            "profserve_store_segments",
            "Segments in the store.",
            report.store.segments,
        ),
        (
            "profserve_store_bytes",
            "Bytes across the store's segments.",
            report.store.bytes,
        ),
        (
            "profserve_uptime_seconds",
            "Seconds since the daemon started serving.",
            report.uptime_secs,
        ),
        (
            "profserve_read_only",
            "1 when degraded to read-only after ENOSPC.",
            u64::from(report.read_only),
        ),
        (
            "profserve_store_max_run_id",
            "Highest run id indexed (the replication watermark).",
            watermark,
        ),
    ] {
        let _ = writeln!(text, "# HELP {name} {help}");
        let _ = writeln!(text, "# TYPE {name} gauge");
        let _ = writeln!(text, "{name} {value}");
    }
    for (name, help, value) in [
        (
            "profserve_export_frames_total",
            "Record frames streamed out through EXPORT.",
            shared.exported_frames.load(Ordering::Relaxed),
        ),
        (
            "profserve_apply_frames_total",
            "Record frames written through APPLY.",
            shared.applied_frames.load(Ordering::Relaxed),
        ),
    ] {
        let _ = writeln!(text, "# HELP {name} {help}");
        let _ = writeln!(text, "# TYPE {name} counter");
        let _ = writeln!(text, "{name} {value}");
    }
    // Per-shard shape gauges (one series per shard; a single store is
    // shard 0), so an operator can see imbalance at a glance.
    for (metric, help, pick) in [
        (
            "profserve_shard_runs",
            "Runs indexed in one shard.",
            (|s: &profstore::StoreStats| s.runs) as fn(&profstore::StoreStats) -> u64,
        ),
        (
            "profserve_shard_segments",
            "Segments in one shard.",
            |s: &profstore::StoreStats| s.segments,
        ),
        (
            "profserve_shard_bytes",
            "Bytes across one shard's segments.",
            |s: &profstore::StoreStats| s.bytes,
        ),
    ] {
        let _ = writeln!(text, "# HELP {metric} {help}");
        let _ = writeln!(text, "# TYPE {metric} gauge");
        for (k, stats) in per_shard.iter().enumerate() {
            let _ = writeln!(text, "{metric}{{shard=\"{k}\"}} {}", pick(stats));
        }
    }
    text
}

/// Ingest a slice of records under one receipt. Items are stored in
/// order; validation happens up front so a malformed item refuses the
/// whole batch before anything lands, while a mid-batch store failure
/// reports how many records were already durable.
fn ingest_records(shared: &Shared, items: &[Record]) -> Response {
    let mut profiles = Vec::with_capacity(items.len());
    for (index, record) in items.iter().enumerate() {
        match record.profile.decode() {
            Ok(p) => profiles.push(p),
            Err(e) => {
                return error(ErrorKind::BadRequest, format!("item {index}: {e}"));
            }
        }
    }
    if shared.read_only.load(Ordering::SeqCst) {
        return error(
            ErrorKind::ReadOnly,
            "store degraded to read-only after ENOSPC; ingests refused",
        );
    }
    let mut receipt = IngestReceipt::default();
    let mut store = shared.store.write().expect("store lock");
    for (record, profile) in items.iter().zip(&profiles) {
        let timestamp = record.timestamp_ns.unwrap_or_else(now_ns);
        match store.ingest(&record.benchmark, record.threads, timestamp, profile) {
            Ok(r) => {
                shared.counters.ingest(r.bytes);
                if receipt.count == 0 {
                    receipt.first_run_id = r.run_id;
                }
                receipt.count += 1;
                receipt.bytes += r.bytes;
                receipt.segment = r.segment;
            }
            Err(StoreError::Io(e)) if is_enospc(&e) => {
                // The disk is full: degrade loudly to read-only rather
                // than answering `internal` forever. Queries keep
                // working off the intact prefix of the log.
                shared.read_only.store(true, Ordering::SeqCst);
                return error(
                    ErrorKind::ReadOnly,
                    format!(
                        "disk full (ENOSPC): store degraded to read-only \
                         ({} of {} batch records stored)",
                        receipt.count,
                        items.len()
                    ),
                );
            }
            Err(e) => return store_error(&e),
        }
    }
    Response::Ingest(receipt)
}

/// Answer one typed request. Protocol codecs sit on either side of this;
/// it neither parses nor serializes.
pub(crate) fn respond(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Hello { features, .. } => Response::Hello {
            // v1 is the only version this build speaks; the feature set
            // is the intersection, so unknown client bits vanish.
            version: wire::WIRE_VERSION,
            features: features & wire::FEATURE_BATCH_INGEST,
        },
        Request::Ingest(record) => ingest_records(shared, std::slice::from_ref(&record)),
        Request::IngestBatch(items) => {
            shared.counters.ingest_batch();
            if items.is_empty() {
                return error(ErrorKind::BadRequest, "empty ingest batch");
            }
            ingest_records(shared, &items)
        }
        Request::QueryTop {
            benchmark,
            threads,
            n,
            window,
        } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads, &window) {
                Ok(agg) => Response::Top(TopReport::from_agg(&benchmark, threads, &agg, n)),
                Err(resp) => resp,
            }
        }
        Request::QueryStats {
            benchmark,
            threads,
            window,
        } => {
            shared.counters.query();
            match aggregate_group(shared, &benchmark, threads, &window) {
                Ok(agg) => Response::Stats(StatsReport::from_agg(&benchmark, threads, &agg)),
                Err(resp) => resp,
            }
        }
        Request::QueryRegress {
            benchmark,
            threads,
            profile,
            threshold,
            min_runs,
            min_delta_ns,
            window,
        } => {
            shared.counters.query();
            let profile = match profile.decode() {
                Ok(p) => p,
                Err(e) => return error(ErrorKind::BadRequest, format!("profile: {e}")),
            };
            let config = RegressConfig {
                threshold: threshold.unwrap_or(shared.config.regress.threshold),
                min_runs: min_runs.unwrap_or(shared.config.regress.min_runs),
                min_delta_ns: min_delta_ns.unwrap_or(shared.config.regress.min_delta_ns),
            };
            match aggregate_group(shared, &benchmark, threads, &window) {
                Ok(agg) => {
                    let summary = RunSummary::from_profile(&profile);
                    Response::Regress(RegressReport::from_verdict(
                        &agg.check_regression(&summary, &config),
                    ))
                }
                Err(resp) => resp,
            }
        }
        Request::QueryTrend {
            benchmark,
            threads,
            buckets,
            window,
        } => {
            shared.counters.query();
            if buckets == 0 {
                return error(ErrorKind::BadRequest, "trend needs at least one bucket");
            }
            let trend = {
                let store = shared.store.read().expect("store lock");
                store.trend(&benchmark, threads, &window, buckets as usize)
            };
            match trend {
                Ok(b) if b.is_empty() => error(
                    ErrorKind::NotFound,
                    format!(
                        "no runs stored for benchmark '{benchmark}' at {threads} threads (in window)"
                    ),
                ),
                Ok(b) => Response::Trend(TrendReport {
                    benchmark,
                    threads,
                    runs: b.iter().map(|x| x.runs).sum(),
                    buckets: b,
                }),
                Err(e) => store_error(&e),
            }
        }
        Request::Stats => {
            shared.counters.query();
            Response::ServerStats(server_stats_report(shared))
        }
        Request::StatsPrometheus => {
            shared.counters.query();
            Response::Prometheus(stats_prometheus(shared))
        }
        // SUBSCRIBE is connection-level: only the streaming reactor can
        // upgrade a connection to push mode (it intercepts the verb
        // before dispatch). Reaching this dispatch means the transport
        // cannot stream.
        Request::Subscribe { .. } => error(
            ErrorKind::BadRequest,
            "SUBSCRIBE requires the streaming reactor transport",
        ),
        Request::Export { after, max } => {
            shared.counters.query();
            if max == 0 {
                return error(ErrorKind::BadRequest, "export needs max > 0");
            }
            let page = {
                let store = shared.store.read().expect("store lock");
                store.export_frames(after, max.min(EXPORT_MAX_FRAMES) as usize)
            };
            match page {
                Ok(batch) => {
                    shared
                        .exported_frames
                        .fetch_add(batch.frames.len() as u64, Ordering::Relaxed);
                    Response::ExportChunk {
                        frames: batch.frames,
                        watermark: batch.watermark,
                        done: batch.done,
                    }
                }
                Err(e) => store_error(&e),
            }
        }
        Request::Apply { frames } => {
            if frames.is_empty() {
                // Cursor probe: report the watermark, write nothing.
                let store = shared.store.read().expect("store lock");
                return Response::Applied {
                    applied: 0,
                    skipped: 0,
                    watermark: store.max_run_id(),
                };
            }
            if shared.read_only.load(Ordering::SeqCst) {
                return error(
                    ErrorKind::ReadOnly,
                    "store degraded to read-only after ENOSPC; applies refused",
                );
            }
            let mut applied = 0u64;
            let mut skipped = 0u64;
            let mut store = shared.store.write().expect("store lock");
            for frame in &frames {
                match store.apply_frame(frame) {
                    Ok(Some(receipt)) => {
                        applied += 1;
                        shared.counters.ingest(receipt.bytes);
                        shared.applied_frames.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(None) => skipped += 1,
                    Err(StoreError::Io(e)) if is_enospc(&e) => {
                        shared.read_only.store(true, Ordering::SeqCst);
                        return error(
                            ErrorKind::ReadOnly,
                            format!(
                                "disk full (ENOSPC): store degraded to read-only \
                                 ({applied} of {} frames applied)",
                                frames.len()
                            ),
                        );
                    }
                    Err(e) => return store_error(&e),
                }
            }
            Response::Applied {
                applied,
                skipped,
                watermark: store.max_run_id(),
            }
        }
    }
}

fn count_errors(shared: &Shared, response: &Response) {
    if matches!(response, Response::Error { .. }) {
        shared.counters.error();
    }
}

/// Connection-level side effects of one served request, for the reactor:
/// the request core answers, the reactor acts.
#[derive(Default)]
pub(crate) struct ServeEffects {
    /// The request was an accepted `SUBSCRIBE`: upgrade the connection
    /// to push mode with this telemetry period.
    pub(crate) subscribed: Option<Duration>,
    /// The request stored runs: fan this notification out to live
    /// subscribers.
    pub(crate) ingested: Option<Notification>,
    /// The request was a `HELLO` carrying the configured shared secret:
    /// mark the connection authenticated for its remaining lifetime.
    pub(crate) authed: bool,
}

/// Enforce the shared-secret gate, if one is configured. Returns the
/// refusal to send, or `None` to let the request through (setting
/// `effects.authed` when a `HELLO` presents the right secret).
fn auth_gate(
    shared: &Shared,
    request: &Request,
    authed: bool,
    effects: &mut ServeEffects,
) -> Option<Response> {
    let secret = shared.config.auth_secret.as_deref()?;
    match request {
        Request::Hello { auth, .. } => match auth.as_deref() {
            Some(presented) if constant_time_eq(secret, presented) => {
                effects.authed = true;
                None
            }
            Some(_) => Some(error(ErrorKind::Unauthorized, "invalid auth secret")),
            // A bare HELLO still negotiates — it just grants nothing.
            None => None,
        },
        _ if authed => None,
        _ => Some(error(
            ErrorKind::Unauthorized,
            "auth required: HELLO with the shared secret first",
        )),
    }
}

/// Dispatch one parsed (or unparsable) request, recording the handling
/// span in the latency grid. `allow_subscribe` is true only on the
/// streaming reactor path; elsewhere `SUBSCRIBE` gets a typed refusal.
fn serve_parsed(
    shared: &Shared,
    parsed: Result<Request, String>,
    proto: ReqProto,
    allow_subscribe: bool,
    authed: bool,
) -> (Response, ServeEffects) {
    let mut effects = ServeEffects::default();
    let response = match parsed {
        Ok(request) => {
            let verb = verb_index(&request);
            let start = Instant::now();
            let response = match auth_gate(shared, &request, authed, &mut effects) {
                Some(refusal) => refusal,
                None => match request {
                    Request::Subscribe { interval_ms } if allow_subscribe => {
                        // Clamp below at the reactor tick: pushes cannot be
                        // more frequent than the loop that emits them.
                        let ms = interval_ms
                            .unwrap_or(shared.config.subscribe_interval.as_millis() as u64)
                            .max(REACTOR_TICK.as_millis() as u64);
                        shared.counters.subscription();
                        effects.subscribed = Some(Duration::from_millis(ms));
                        Response::Subscribed { interval_ms: ms }
                    }
                    request => {
                        let group = match &request {
                            Request::Ingest(r) => Some((r.benchmark.clone(), r.threads)),
                            Request::IngestBatch(items) => {
                                items.first().map(|r| (r.benchmark.clone(), r.threads))
                            }
                            _ => None,
                        };
                        let response = respond(shared, request);
                        if let (Some((benchmark, threads)), Response::Ingest(receipt)) =
                            (group, &response)
                        {
                            effects.ingested = Some(Notification::Ingest {
                                first_run_id: receipt.first_run_id,
                                count: receipt.count,
                                bytes: receipt.bytes,
                                benchmark,
                                threads,
                            });
                        }
                        response
                    }
                },
            };
            shared
                .latency
                .record(verb, proto, start.elapsed().as_nanos() as u64);
            response
        }
        Err(reason) => error(ErrorKind::BadRequest, reason),
    };
    count_errors(shared, &response);
    (response, effects)
}

/// Serve one JSON request line: parse, dispatch, serialize. Returns the
/// response line (no trailing newline) plus connection-level effects.
pub(crate) fn serve_json_line(
    shared: &Shared,
    line: &str,
    allow_subscribe: bool,
    authed: bool,
) -> (String, ServeEffects) {
    shared.counters.json_request();
    let (response, effects) = serve_parsed(
        shared,
        Request::from_json_line(line),
        ReqProto::Json,
        allow_subscribe,
        authed,
    );
    (response.to_json_line(), effects)
}

/// Serve one TPF1 request payload: decode, dispatch. The caller frames
/// the returned response.
pub(crate) fn serve_bin_payload(
    shared: &Shared,
    payload: &[u8],
    allow_subscribe: bool,
    authed: bool,
) -> (Response, ServeEffects) {
    shared.counters.bin_request();
    serve_parsed(
        shared,
        wire::decode_request(payload).map_err(|e| e.to_string()),
        ReqProto::Bin,
        allow_subscribe,
        authed,
    )
}

/// Serve one JSON request line without streaming support (legacy path);
/// returns the response line plus the connection's updated auth state.
#[cfg_attr(unix, allow(dead_code))]
pub(crate) fn handle_json_line(shared: &Shared, line: &str, authed: bool) -> (String, bool) {
    let (line, effects) = serve_json_line(shared, line, false, authed);
    (line, authed || effects.authed)
}

// ---------------------------------------------------------------------
// Legacy thread-per-connection loop (non-unix hosts only): JSON lines
// only, no reactor. Kept so the crate still builds where poll(2) is
// unavailable; the reactor path is the product.
// ---------------------------------------------------------------------

#[cfg(not(unix))]
mod legacy {
    use super::*;
    use crate::protocol::error_line;
    use std::io::{BufRead, BufReader, Write};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub(super) fn serve(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let admitted = shared
                .permits
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
                .is_ok();
            if !admitted {
                shared.counters.shed();
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "{}",
                    error_line(
                        ErrorKind::Overloaded,
                        "connection limit reached; retry later"
                    )
                );
                continue;
            }
            shared.counters.connection();
            let shared = Arc::clone(&shared);
            let handle = std::thread::spawn(move || {
                serve_connection(&shared, stream);
                shared.permits.fetch_add(1, Ordering::AcqRel);
            });
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
        }
        for handle in workers {
            let _ = handle.join();
        }
        Ok(())
    }

    enum LineOutcome {
        Line(String),
        Eof,
        TooLarge,
        TimedOut,
        Failed,
    }

    fn read_bounded_line(reader: &mut BufReader<TcpStream>, max: usize) -> LineOutcome {
        let mut line: Vec<u8> = Vec::new();
        loop {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineOutcome::TimedOut
                }
                Err(_) => return LineOutcome::Failed,
            };
            if chunk.is_empty() {
                return if line.is_empty() {
                    LineOutcome::Eof
                } else {
                    match String::from_utf8(std::mem::take(&mut line)) {
                        Ok(s) => LineOutcome::Line(s),
                        Err(_) => LineOutcome::Failed,
                    }
                };
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let take = newline.map_or(chunk.len(), |i| i);
            if line.len() + take > max {
                return LineOutcome::TooLarge;
            }
            line.extend_from_slice(&chunk[..take]);
            let consumed = newline.map_or(take, |i| i + 1);
            reader.consume(consumed);
            if newline.is_some() {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => LineOutcome::Line(s),
                    Err(_) => LineOutcome::Failed,
                };
            }
        }
    }

    fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(shared.config.read_timeout);
        let _ = stream.set_write_timeout(shared.config.write_timeout);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut authed = false;
        loop {
            let line = match read_bounded_line(&mut reader, shared.config.max_request_bytes) {
                LineOutcome::Line(l) => l,
                LineOutcome::Eof | LineOutcome::Failed => break,
                LineOutcome::TimedOut => {
                    if !shared.stop.load(Ordering::SeqCst) {
                        shared.counters.timeout();
                    }
                    break;
                }
                LineOutcome::TooLarge => {
                    shared.counters.error();
                    let reply = error_line(
                        ErrorKind::TooLarge,
                        &format!(
                            "request line exceeds {} bytes; connection closed",
                            shared.config.max_request_bytes
                        ),
                    );
                    let _ = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let response =
                match catch_unwind(AssertUnwindSafe(|| handle_json_line(shared, &line, authed))) {
                    Ok((resp, now_authed)) => {
                        authed = now_authed;
                        resp
                    }
                    Err(_) => {
                        shared.counters.panic();
                        error_line(ErrorKind::Internal, "request handler panicked (isolated)")
                    }
                };
            if writeln!(writer, "{response}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
        }
    }
}
