//! `profserve` — the profile-repository daemon and its client.
//!
//! A measurement produces one profile per run; a *repository* makes runs
//! comparable across time. This crate serves a [`profstore::ProfileStore`]
//! over TCP with a line-delimited JSON protocol (std::net only — the
//! build is offline, vendored-only):
//!
//! * `INGEST` — upload a profile (text store format inside a JSON
//!   string) into the append-only segment log.
//! * `QUERY top|stats|regress` — top-N constructs across stored runs,
//!   cross-run scalar statistics, or a regression verdict for a fresh
//!   run against the stored baseline mean.
//! * `STATS` — server health (service counters from
//!   `taskprof-telemetry`) plus store shape.
//!
//! Concurrency model: one handler thread per connection behind a bounded
//! permit gate. When the gate is exhausted, new connections are shed
//! immediately with a typed `overloaded` error — the accept loop never
//! blocks on request work. Each request runs under `catch_unwind`, so a
//! handler bug answers one request with `internal` instead of killing
//! the daemon.

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, IngestAck};
pub use json::{parse as parse_json, Json, JsonError};
pub use protocol::{ErrorKind, Request};
pub use server::{ServeConfig, Server, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind, TaskIdAllocator};
    use profstore::{ProfileStore, StoreConfig};
    use std::path::PathBuf;
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profserve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_profile_text(tag: &str, body_ns: u64) -> String {
        let reg = registry();
        let par = reg.register(&format!("serve-{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("serve-{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(body_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        cube::write_profile(&team.finish())
    }

    fn open_store(dir: &std::path::Path) -> ProfileStore {
        ProfileStore::open_with(
            dir,
            StoreConfig {
                segment_max_bytes: 1 << 20,
                sync_writes: false,
            },
        )
        .expect("open store")
    }

    #[test]
    fn serve_ingest_query_stop() {
        let dir = temp_dir("basic");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let addr = handle.addr().to_string();

        let mut client = Client::connect(&addr).expect("connect");
        let profile = sample_profile_text("basic", 1_000);
        let ack = client.ingest("fib", 2, Some(111), &profile).expect("ingest");
        assert_eq!(ack.run_id, 1);
        let ack2 = client.ingest("fib", 2, Some(222), &profile).expect("ingest");
        assert_eq!(ack2.run_id, 2);

        let top = client.query_top("fib", 2, 5).expect("top");
        assert_eq!(top.get("runs").and_then(Json::as_u64), Some(2));
        let regions = top.get("regions").and_then(Json::as_arr).expect("regions");
        assert!(!regions.is_empty());

        let stats = client.query_stats("fib", 2).expect("stats");
        assert_eq!(stats.get("runs").and_then(Json::as_u64), Some(2));

        let health = client.server_stats().expect("server stats");
        let server = health.get("server").expect("server member");
        assert_eq!(server.get("ingests").and_then(Json::as_u64), Some(2));

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn unknown_group_is_not_found() {
        let dir = temp_dir("notfound");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        match client.query_stats("no-such-bench", 8) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("expected not_found, got {other:?}"),
        }
        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn malformed_requests_get_bad_request_and_connection_survives() {
        let dir = temp_dir("badreq");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
        writeln!(raw, "this is not json").expect("write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("bad_request"), "{line}");
        // Same connection still serves valid requests.
        writeln!(raw, "{}", Request::Stats.to_line()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("\"ok\":true"), "{line}");

        // Typed client surfaces the kind.
        match client.query_top("fib", 0, 0) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("unexpected: {other:?}"),
        }
        handle.stop();
        drop((client, raw, reader));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let dir = temp_dir("shed");
        let store = open_store(&dir);
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");
        let addr = handle.addr().to_string();

        // First connection holds the only permit.
        let mut first = Client::connect(&addr).expect("connect");
        let _ = first.server_stats().expect("stats");

        // Subsequent connections are shed with a typed overloaded error.
        // The accept loop may take a beat to hand off the first stream, so
        // retry until the shed response is observed.
        let mut shed_seen = false;
        for _ in 0..50 {
            let mut extra = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => continue,
            };
            match extra.server_stats() {
                Err(ClientError::Server {
                    kind: ErrorKind::Overloaded,
                    ..
                }) => {
                    shed_seen = true;
                    break;
                }
                Err(ClientError::Protocol(_)) | Err(ClientError::Io(_)) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Ok(_) | Err(ClientError::Server { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        assert!(shed_seen, "no shed observed under max_connections=1");
        assert!(handle.counters().snapshot().shed_connections >= 1);

        handle.stop();
        drop(first);
        join.join().expect("join").expect("run");
    }
}
