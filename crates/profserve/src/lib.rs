//! `profserve` — the profile-repository daemon and its client.
//!
//! A measurement produces one profile per run; a *repository* makes runs
//! comparable across time. This crate serves a [`profstore::ProfileStore`]
//! over TCP (std::net only — the build is offline, vendored-only) with
//! two interchangeable encodings of one typed protocol surface
//! ([`protocol`]):
//!
//! * **JSON lines** — one JSON object per line, both directions.
//!   Human-readable, `nc`-able, the original protocol.
//! * **TPF1 binary frames** ([`wire`]) — length-prefixed CRC-framed
//!   payloads sharing the store's LEB128 codec, opened by the 4-byte
//!   magic `"TPF1"`. Supports pipelining and `INGEST_BATCH` (one
//!   acknowledgement per batch) — the bulk-ingest path.
//!
//! Both live on the same port: the server sniffs the first bytes of each
//! connection. The requests are the same either way — `INGEST` /
//! `INGEST_BATCH` append profiles to the segment log, `QUERY
//! top|stats|regress` read the cross-run aggregates, `STATS` reports
//! daemon health.
//!
//! Concurrency model: a single-threaded readiness reactor ([`server`],
//! `reactor`) multiplexes the listener and every connection — epoll on
//! Linux, poll(2) elsewhere on unix — with per-connection state machines
//! and nonblocking sockets. Beyond `max_connections` live connections,
//! new ones are shed immediately with a typed `overloaded` error; each
//! request runs under `catch_unwind`, so a handler bug answers one
//! request with `internal` instead of killing the daemon.
//!
//! Failure model: per-connection read/write deadlines (slow-loris
//! defense, counted in `timeout_connections`), capped request sizes
//! (typed `too_large`), graceful shutdown that answers in-flight
//! requests before closing, and `ENOSPC`-triggered read-only degradation
//! (typed `read_only`, surfaced in `STATS`). See [`server`] for details.
//!
//! The [`Client`] negotiates the protocol ([`protocol::WireProtocol`]):
//! by default it tries the TPF1 handshake and falls back to JSON lines,
//! and exposes typed methods ([`Client::ingest_batch`],
//! [`Client::query_top`], …) returning the report structs from
//! [`protocol`].

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
mod reactor;
pub mod replica;
pub mod server;
mod trace;
pub mod wire;

pub use client::{
    ApplyAck, Client, ClientError, ClientTimeouts, ExportPage, Subscription,
};
pub use json::{parse as parse_json, Json, JsonError};
pub use protocol::{
    ErrorKind, IngestReceipt, LatencyStat, Notification, ProfilePayload, Record, RegressReport,
    Request, Response, ServerStatsReport, StatsReport, TopReport, TrendReport, WireProtocol,
};
pub use replica::{replicate, ReplicaConfig, ReplicaReport};
pub use server::{ServeConfig, Server, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind, TaskIdAllocator};
    use profstore::{ProfileStore, StoreConfig};
    use std::path::PathBuf;
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profserve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_profile_text(tag: &str, body_ns: u64) -> String {
        let reg = registry();
        let par = reg.register(&format!("serve-{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("serve-{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(body_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        cube::write_profile(&team.finish())
    }

    fn open_store(dir: &std::path::Path) -> ProfileStore {
        ProfileStore::open_with(
            dir,
            StoreConfig {
                segment_max_bytes: 1 << 20,
                sync_writes: false,
            },
        )
        .expect("open store")
    }

    #[test]
    fn serve_ingest_query_stop() {
        let dir = temp_dir("basic");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let addr = handle.addr().to_string();

        let mut client = Client::connect(&addr).expect("connect");
        // The default connect negotiates TPF1 against an Auto server.
        assert_eq!(client.protocol(), WireProtocol::Binary);
        let profile = sample_profile_text("basic", 1_000);
        let ack = client
            .ingest_record(&Record::from_text("fib", 2, Some(111), &profile))
            .expect("ingest");
        assert_eq!(ack.run_id(), 1);
        let ack2 = client
            .ingest_record(&Record::from_text("fib", 2, Some(222), &profile))
            .expect("ingest");
        assert_eq!(ack2.run_id(), 2);

        let top = client.query_top("fib", 2, 5).expect("top");
        assert_eq!(top.runs, 2);
        assert!(!top.regions.is_empty());

        let stats = client.query_stats("fib", 2).expect("stats");
        assert_eq!(stats.runs, 2);

        let health = client.server_stats().expect("server stats");
        assert_eq!(health.service.ingests, 2);
        assert!(health.service.bin_requests >= 5, "{:?}", health.service);

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn forced_protocols_both_serve() {
        let dir = temp_dir("proto");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let addr = handle.addr().to_string();
        let profile = sample_profile_text("proto", 750);

        let mut bin = Client::connect_proto(&addr, WireProtocol::Binary, ClientTimeouts::default())
            .expect("binary connect");
        assert_eq!(bin.protocol(), WireProtocol::Binary);
        bin.ingest_record(&Record::from_text("px", 2, Some(1), &profile))
            .expect("binary ingest");

        // A JSON client sees what the binary client wrote, and both
        // protocol counters advance.
        let mut json = Client::connect_proto(&addr, WireProtocol::Json, ClientTimeouts::default())
            .expect("json connect");
        assert_eq!(json.protocol(), WireProtocol::Json);
        let stats = json.query_stats("px", 2).expect("json stats");
        assert_eq!(stats.runs, 1);
        let health = json.server_stats().expect("health");
        assert!(health.service.bin_requests >= 1, "{:?}", health.service);
        assert!(health.service.json_requests >= 1, "{:?}", health.service);

        handle.stop();
        drop((bin, json));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn ingest_batch_amortizes_acknowledgements() {
        let dir = temp_dir("batch");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        let profile = sample_profile_text("batch", 400);
        let records: Vec<Record> = (0..10)
            .map(|i| Record::from_text("bulk", 4, Some(i + 1), &profile))
            .collect();
        let receipt = client.ingest_batch(&records).expect("batch");
        assert_eq!(receipt.count, 10);
        assert_eq!(receipt.first_run_id, 1);
        assert!(receipt.bytes > 0);

        let stats = client.query_stats("bulk", 4).expect("stats");
        assert_eq!(stats.runs, 10);
        let health = client.server_stats().expect("health");
        assert_eq!(health.service.ingests, 10);
        assert_eq!(health.service.ingest_batches, 1);

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn unknown_group_is_not_found() {
        let dir = temp_dir("notfound");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        match client.query_stats("no-such-bench", 8) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("expected not_found, got {other:?}"),
        }
        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn malformed_requests_get_bad_request_and_connection_survives() {
        let dir = temp_dir("badreq");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
        writeln!(raw, "this is not json").expect("write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("bad_request"), "{line}");
        // Same connection still serves valid requests.
        writeln!(raw, "{}", Request::Stats.to_json_line()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("\"ok\":true"), "{line}");

        // Typed client surfaces the kind.
        match client.query_top("fib", 0, 0) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("unexpected: {other:?}"),
        }
        handle.stop();
        drop((client, raw, reader));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn corrupt_binary_frame_gets_typed_error_and_close() {
        let dir = temp_dir("badframe");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");

        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(&wire::WIRE_MAGIC).expect("magic");
        let mut framed = wire::frame(&wire::encode_request(&Request::Stats));
        let flip = framed.len() / 2;
        framed[flip] ^= 0x40; // corrupt the payload; the CRC must catch it
        raw.write_all(&framed).expect("write");
        raw.flush().expect("flush");

        let mut head = [0u8; 4];
        raw.read_exact(&mut head).expect("len");
        let len = u32::from_le_bytes(head) as usize;
        let mut rest = vec![0u8; len + 4];
        raw.read_exact(&mut rest).expect("payload");
        match wire::decode_response(&rest[..len]).expect("decode") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("expected error frame, got {other:?}"),
        }
        // The frame stream cannot resync: the server closes.
        let mut restbuf = Vec::new();
        raw.read_to_end(&mut restbuf).expect("read_to_end");
        assert!(restbuf.is_empty(), "connection should be closed");

        handle.stop();
        drop(raw);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let dir = temp_dir("shed");
        let store = open_store(&dir);
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");
        let addr = handle.addr().to_string();

        // First connection holds the only slot.
        let mut first = Client::connect(&addr).expect("connect");
        let _ = first.server_stats().expect("stats");

        // Subsequent connections are shed with a typed overloaded error
        // (the negotiating client surfaces it from connect, a JSON client
        // from its first call). The reactor may take a beat to register
        // the first connection, so retry until the shed is observed.
        let mut shed_seen = false;
        for _ in 0..50 {
            let outcome = Client::connect(&addr).and_then(|mut extra| {
                extra.server_stats()?;
                Ok(())
            });
            match outcome {
                Err(ClientError::Server {
                    kind: ErrorKind::Overloaded,
                    ..
                }) => {
                    shed_seen = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(shed_seen, "no shed observed under max_connections=1");
        assert!(handle.counters().snapshot().shed_connections >= 1);

        handle.stop();
        drop(first);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn oversized_request_line_gets_too_large_and_connection_closes() {
        let dir = temp_dir("toolarge");
        let store = open_store(&dir);
        let config = ServeConfig {
            max_request_bytes: 1024,
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");

        use std::io::{BufRead, BufReader, Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        // A newline-less flood larger than the cap: the old reader would
        // buffer it forever; the bounded reader answers and closes.
        raw.write_all(&vec![b'x'; 4096]).expect("write");
        raw.flush().expect("flush");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("too_large"), "{line}");
        // The server closed the connection (no resync inside a torn line).
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("read_to_end");
        assert!(rest.is_empty(), "connection should be closed");

        // The daemon itself is fine: a fresh connection still serves.
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        client.server_stats().expect("stats after too_large");
        handle.stop();
        drop((client, raw, reader));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn slow_loris_connection_is_dropped_by_the_read_deadline() {
        let dir = temp_dir("loris");
        let store = open_store(&dir);
        let config = ServeConfig {
            read_timeout: Some(std::time::Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");

        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        // Send a partial request and go silent — the classic slow loris.
        raw.write_all(b"{\"cmd\":\"STA").expect("write");
        raw.flush().expect("flush");
        // The deadline fires and the server closes the connection: the
        // read returns EOF rather than blocking forever.
        raw.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("set timeout");
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).expect("read_to_end");
        assert!(buf.is_empty(), "server should close without a reply");
        // The drop is visible in telemetry and STATS.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while handle.counters().snapshot().timeout_connections == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "timeout never counted"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let health = client.server_stats().expect("stats");
        assert!(
            health.service.timeout_connections >= 1,
            "{:?}",
            health.service
        );
        handle.stop();
        drop((client, raw));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn enospc_degrades_the_daemon_to_read_only() {
        use profstore::{FaultIo, FaultKind, FaultPlan};
        let dir = temp_dir("readonly");
        let (io, fault) = FaultIo::with_plan(FaultPlan::observe());
        let store = ProfileStore::open_with_io(
            &dir,
            StoreConfig {
                segment_max_bytes: 1 << 20,
                sync_writes: false,
            },
            io,
        )
        .expect("open store");
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        // Baseline data while the disk is healthy.
        let profile = sample_profile_text("readonly", 500);
        client
            .ingest_record(&Record::from_text("fib", 2, Some(1), &profile))
            .expect("ingest");

        // The disk fills: the next ingest trips read-only mode.
        fault.arm(FaultKind::Enospc);
        match client.ingest_record(&Record::from_text("fib", 2, Some(2), &profile)) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ReadOnly),
            other => panic!("expected read_only, got {other:?}"),
        }
        assert!(handle.read_only());

        // Sticky until restart: even after space frees up, ingests are
        // refused (an operator decision, not a silent flap) …
        fault.disarm();
        match client.ingest_record(&Record::from_text("fib", 2, Some(3), &profile)) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ReadOnly),
            other => panic!("expected read_only, got {other:?}"),
        }
        // … but queries keep serving the intact data, and STATS says why.
        let stats = client.query_stats("fib", 2).expect("query in read-only");
        assert_eq!(stats.runs, 1);
        let health = client.server_stats().expect("stats");
        assert!(health.read_only);

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn graceful_shutdown_answers_the_in_flight_request() {
        let dir = temp_dir("drain");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        client.server_stats().expect("stats before stop");

        // Stop the daemon, then send one more request on the connection
        // that was already open: draining must answer it before closing.
        handle.stop();
        let health = client.server_stats().expect("request drained across stop");
        assert!(health.service.connections >= 1);
        // After the drained reply the server closes the connection.
        match client.server_stats() {
            Err(_) => {}
            Ok(v) => panic!("connection should be closed after drain, got {v:?}"),
        }
        drop(client);
        join.join().expect("join").expect("run");
    }
}
