//! `profserve` — the profile-repository daemon and its client.
//!
//! A measurement produces one profile per run; a *repository* makes runs
//! comparable across time. This crate serves a [`profstore::ProfileStore`]
//! over TCP with a line-delimited JSON protocol (std::net only — the
//! build is offline, vendored-only):
//!
//! * `INGEST` — upload a profile (text store format inside a JSON
//!   string) into the append-only segment log.
//! * `QUERY top|stats|regress` — top-N constructs across stored runs,
//!   cross-run scalar statistics, or a regression verdict for a fresh
//!   run against the stored baseline mean.
//! * `STATS` — server health (service counters from
//!   `taskprof-telemetry`) plus store shape.
//!
//! Concurrency model: one handler thread per connection behind a bounded
//! permit gate. When the gate is exhausted, new connections are shed
//! immediately with a typed `overloaded` error — the accept loop never
//! blocks on request work. Each request runs under `catch_unwind`, so a
//! handler bug answers one request with `internal` instead of killing
//! the daemon.
//!
//! Failure model: per-connection read/write deadlines (slow-loris
//! defense, counted in `timeout_connections`), a capped request-line
//! buffer (typed `too_large`), graceful shutdown that answers in-flight
//! requests before closing, and `ENOSPC`-triggered read-only degradation
//! (typed `read_only`, surfaced in `STATS`). See [`server`] for details.

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientTimeouts, IngestAck};
pub use json::{parse as parse_json, Json, JsonError};
pub use protocol::{ErrorKind, Request};
pub use server::{ServeConfig, Server, ServerHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind, TaskIdAllocator};
    use profstore::{ProfileStore, StoreConfig};
    use std::path::PathBuf;
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "profserve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_profile_text(tag: &str, body_ns: u64) -> String {
        let reg = registry();
        let par = reg.register(&format!("serve-{tag}-par"), RegionKind::Parallel, "t", 0);
        let task = reg.register(&format!("serve-{tag}-task"), RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
        let id = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id })
            .advance(body_ns)
            .apply(0, Event::TaskEnd { region: task, id });
        cube::write_profile(&team.finish())
    }

    fn open_store(dir: &std::path::Path) -> ProfileStore {
        ProfileStore::open_with(
            dir,
            StoreConfig {
                segment_max_bytes: 1 << 20,
                sync_writes: false,
            },
        )
        .expect("open store")
    }

    #[test]
    fn serve_ingest_query_stop() {
        let dir = temp_dir("basic");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let addr = handle.addr().to_string();

        let mut client = Client::connect(&addr).expect("connect");
        let profile = sample_profile_text("basic", 1_000);
        let ack = client.ingest("fib", 2, Some(111), &profile).expect("ingest");
        assert_eq!(ack.run_id, 1);
        let ack2 = client.ingest("fib", 2, Some(222), &profile).expect("ingest");
        assert_eq!(ack2.run_id, 2);

        let top = client.query_top("fib", 2, 5).expect("top");
        assert_eq!(top.get("runs").and_then(Json::as_u64), Some(2));
        let regions = top.get("regions").and_then(Json::as_arr).expect("regions");
        assert!(!regions.is_empty());

        let stats = client.query_stats("fib", 2).expect("stats");
        assert_eq!(stats.get("runs").and_then(Json::as_u64), Some(2));

        let health = client.server_stats().expect("server stats");
        let server = health.get("server").expect("server member");
        assert_eq!(server.get("ingests").and_then(Json::as_u64), Some(2));

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn unknown_group_is_not_found() {
        let dir = temp_dir("notfound");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        match client.query_stats("no-such-bench", 8) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("expected not_found, got {other:?}"),
        }
        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn malformed_requests_get_bad_request_and_connection_survives() {
        let dir = temp_dir("badreq");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
        writeln!(raw, "this is not json").expect("write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("bad_request"), "{line}");
        // Same connection still serves valid requests.
        writeln!(raw, "{}", Request::Stats.to_line()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("\"ok\":true"), "{line}");

        // Typed client surfaces the kind.
        match client.query_top("fib", 0, 0) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::NotFound),
            other => panic!("unexpected: {other:?}"),
        }
        handle.stop();
        drop((client, raw, reader));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let dir = temp_dir("shed");
        let store = open_store(&dir);
        let config = ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");
        let addr = handle.addr().to_string();

        // First connection holds the only permit.
        let mut first = Client::connect(&addr).expect("connect");
        let _ = first.server_stats().expect("stats");

        // Subsequent connections are shed with a typed overloaded error.
        // The accept loop may take a beat to hand off the first stream, so
        // retry until the shed response is observed.
        let mut shed_seen = false;
        for _ in 0..50 {
            let mut extra = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => continue,
            };
            match extra.server_stats() {
                Err(ClientError::Server {
                    kind: ErrorKind::Overloaded,
                    ..
                }) => {
                    shed_seen = true;
                    break;
                }
                Err(ClientError::Protocol(_)) | Err(ClientError::Io(_)) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Ok(_) | Err(ClientError::Server { .. }) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        assert!(shed_seen, "no shed observed under max_connections=1");
        assert!(handle.counters().snapshot().shed_connections >= 1);

        handle.stop();
        drop(first);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn oversized_request_line_gets_too_large_and_connection_closes() {
        let dir = temp_dir("toolarge");
        let store = open_store(&dir);
        let config = ServeConfig {
            max_request_bytes: 1024,
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");

        use std::io::{BufRead, BufReader, Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        // A newline-less flood larger than the cap: the old reader would
        // buffer it forever; the bounded reader answers and closes.
        raw.write_all(&vec![b'x'; 4096]).expect("write");
        raw.flush().expect("flush");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("too_large"), "{line}");
        // The server closed the connection (no resync inside a torn line).
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("read_to_end");
        assert!(rest.is_empty(), "connection should be closed");

        // The daemon itself is fine: a fresh connection still serves.
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        client.server_stats().expect("stats after too_large");
        handle.stop();
        drop((client, raw, reader));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn slow_loris_connection_is_dropped_by_the_read_deadline() {
        let dir = temp_dir("loris");
        let store = open_store(&dir);
        let config = ServeConfig {
            read_timeout: Some(std::time::Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let (handle, join) = Server::spawn("127.0.0.1:0", store, config).expect("spawn");

        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
        // Send a partial request and go silent — the classic slow loris.
        raw.write_all(b"{\"cmd\":\"STA").expect("write");
        raw.flush().expect("flush");
        // The deadline fires and the server closes the connection: the
        // read returns EOF rather than blocking forever.
        raw.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("set timeout");
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).expect("read_to_end");
        assert!(buf.is_empty(), "server should close without a reply");
        // The drop is visible in telemetry and STATS.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while handle.counters().snapshot().timeout_connections == 0 {
            assert!(std::time::Instant::now() < deadline, "timeout never counted");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let health = client.server_stats().expect("stats");
        let server = health.get("server").expect("server member");
        assert!(
            server.get("timeout_connections").and_then(Json::as_u64) >= Some(1),
            "{health}"
        );
        handle.stop();
        drop((client, raw));
        join.join().expect("join").expect("run");
    }

    #[test]
    fn enospc_degrades_the_daemon_to_read_only() {
        use profstore::{FaultIo, FaultKind, FaultPlan};
        let dir = temp_dir("readonly");
        let (io, fault) = FaultIo::with_plan(FaultPlan::observe());
        let store = ProfileStore::open_with_io(
            &dir,
            StoreConfig {
                segment_max_bytes: 1 << 20,
                sync_writes: false,
            },
            io,
        )
        .expect("open store");
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        // Baseline data while the disk is healthy.
        let profile = sample_profile_text("readonly", 500);
        client.ingest("fib", 2, Some(1), &profile).expect("ingest");

        // The disk fills: the next ingest trips read-only mode.
        fault.arm(FaultKind::Enospc);
        match client.ingest("fib", 2, Some(2), &profile) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ReadOnly),
            other => panic!("expected read_only, got {other:?}"),
        }
        assert!(handle.read_only());

        // Sticky until restart: even after space frees up, ingests are
        // refused (an operator decision, not a silent flap) …
        fault.disarm();
        match client.ingest("fib", 2, Some(3), &profile) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ReadOnly),
            other => panic!("expected read_only, got {other:?}"),
        }
        // … but queries keep serving the intact data, and STATS says why.
        let stats = client.query_stats("fib", 2).expect("query in read-only");
        assert_eq!(stats.get("runs").and_then(Json::as_u64), Some(1));
        let health = client.server_stats().expect("stats");
        let server = health.get("server").expect("server member");
        assert_eq!(server.get("read_only").and_then(Json::as_bool), Some(true));

        handle.stop();
        drop(client);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn graceful_shutdown_answers_the_in_flight_request() {
        let dir = temp_dir("drain");
        let store = open_store(&dir);
        let (handle, join) =
            Server::spawn("127.0.0.1:0", store, ServeConfig::default()).expect("spawn");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        client.server_stats().expect("stats before stop");

        // Stop the daemon, then send one more request on the connection
        // that was already open: draining must answer it before closing.
        handle.stop();
        let health = client.server_stats().expect("request drained across stop");
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        // After the drained reply the server closes the connection.
        match client.server_stats() {
            Err(_) => {}
            Ok(v) => panic!("connection should be closed after drain, got {v}"),
        }
        drop(client);
        join.join().expect("join").expect("run");
    }
}
