//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"INGEST","benchmark":"fib","threads":2,"profile":"taskprof-profile v1\n…"}
//!     optional: "timestamp_ns":N
//! {"cmd":"QUERY","query":"top","benchmark":"fib","threads":2,"n":10}
//! {"cmd":"QUERY","query":"stats","benchmark":"fib","threads":2}
//! {"cmd":"QUERY","query":"regress","benchmark":"fib","threads":2,
//!  "profile":"…","threshold":0.2}   optional: "min_runs":N,"min_delta_ns":N
//! {"cmd":"STATS"}
//! ```
//!
//! Every response is `{"ok":true,…}` or a typed error
//! `{"ok":false,"error":{"kind":"<kind>","message":"…"}}` with kind one of
//! `overloaded`, `bad_request`, `not_found`, `internal`, `too_large`,
//! `read_only`. Profiles travel
//! as the text store format (`cube::write_profile`) inside a JSON string,
//! so one wire format serves both humans and machines and the server
//! re-uses the hardened text parser for validation.

use crate::json::Json;
use profstore::{BenchAgg, MetricAgg, Regression, StoreStats};
use taskprof_telemetry::ServiceSnapshot;

/// Typed error categories a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The connection permit gate is exhausted; retry later.
    Overloaded,
    /// The request line did not parse or lacked required fields.
    BadRequest,
    /// The referenced benchmark/run does not exist.
    NotFound,
    /// The handler failed (including isolated panics).
    Internal,
    /// The request line exceeded the configured size cap; the connection
    /// is closed after this reply (there is no way to resync mid-line).
    TooLarge,
    /// The store hit `ENOSPC` and the daemon degraded to read-only:
    /// queries still work, ingests are refused until an operator frees
    /// disk space and restarts (or the store recovers).
    ReadOnly,
}

impl ErrorKind {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Internal => "internal",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::ReadOnly => "read_only",
        }
    }

    /// Parse a wire tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "overloaded" => ErrorKind::Overloaded,
            "bad_request" => ErrorKind::BadRequest,
            "not_found" => ErrorKind::NotFound,
            "internal" => ErrorKind::Internal,
            "too_large" => ErrorKind::TooLarge,
            "read_only" => ErrorKind::ReadOnly,
            _ => return None,
        })
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Upload one profile.
    Ingest {
        /// Benchmark name the run belongs to.
        benchmark: String,
        /// Thread count of the run.
        threads: u32,
        /// Caller timestamp; the server stamps its own clock when absent.
        timestamp_ns: Option<u64>,
        /// The profile, in the text store format.
        profile_text: String,
    },
    /// Top-N constructs by summed inclusive time across stored runs.
    QueryTop {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// How many rows.
        n: usize,
    },
    /// Cross-run scalar statistics of one group.
    QueryStats {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
    },
    /// Check a fresh run against the stored aggregate.
    QueryRegress {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// The candidate profile, text store format.
        profile_text: String,
        /// Relative threshold (default: the server's).
        threshold: Option<f64>,
        /// Minimum baseline runs (default: the server's).
        min_runs: Option<u64>,
        /// Absolute noise floor in ns (default: the server's).
        min_delta_ns: Option<u64>,
    },
    /// Server health: service counters + store shape.
    Stats,
}

fn need_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

impl Request {
    /// Parse one request line. `Err` carries a `bad_request` explanation.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = crate::json::parse(line).map_err(|e| e.to_string())?;
        let cmd = need_str(&v, "cmd")?;
        match cmd.as_str() {
            "INGEST" => Ok(Request::Ingest {
                benchmark: need_str(&v, "benchmark")?,
                threads: u32::try_from(need_u64(&v, "threads")?)
                    .map_err(|_| "threads out of range".to_string())?,
                timestamp_ns: v.get("timestamp_ns").and_then(Json::as_u64),
                profile_text: need_str(&v, "profile")?,
            }),
            "QUERY" => {
                let query = need_str(&v, "query")?;
                let benchmark = need_str(&v, "benchmark")?;
                let threads = u32::try_from(need_u64(&v, "threads")?)
                    .map_err(|_| "threads out of range".to_string())?;
                match query.as_str() {
                    "top" => Ok(Request::QueryTop {
                        benchmark,
                        threads,
                        n: need_u64(&v, "n")? as usize,
                    }),
                    "stats" => Ok(Request::QueryStats { benchmark, threads }),
                    "regress" => Ok(Request::QueryRegress {
                        benchmark,
                        threads,
                        profile_text: need_str(&v, "profile")?,
                        threshold: v.get("threshold").and_then(Json::as_f64),
                        min_runs: v.get("min_runs").and_then(Json::as_u64),
                        min_delta_ns: v.get("min_delta_ns").and_then(Json::as_u64),
                    }),
                    other => Err(format!("unknown query '{other}'")),
                }
            }
            "STATS" => Ok(Request::Stats),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }

    /// Serialize to one request line (the client side).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Ingest {
                benchmark,
                threads,
                timestamp_ns,
                profile_text,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("INGEST")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                ];
                if let Some(t) = timestamp_ns {
                    members.push(("timestamp_ns", Json::num(*t)));
                }
                members.push(("profile", Json::str(profile_text.clone())));
                Json::obj(members)
            }
            Request::QueryTop {
                benchmark,
                threads,
                n,
            } => Json::obj(vec![
                ("cmd", Json::str("QUERY")),
                ("query", Json::str("top")),
                ("benchmark", Json::str(benchmark.clone())),
                ("threads", Json::num(u64::from(*threads))),
                ("n", Json::num(*n as u64)),
            ]),
            Request::QueryStats { benchmark, threads } => Json::obj(vec![
                ("cmd", Json::str("QUERY")),
                ("query", Json::str("stats")),
                ("benchmark", Json::str(benchmark.clone())),
                ("threads", Json::num(u64::from(*threads))),
            ]),
            Request::QueryRegress {
                benchmark,
                threads,
                profile_text,
                threshold,
                min_runs,
                min_delta_ns,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("QUERY")),
                    ("query", Json::str("regress")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                ];
                if let Some(t) = threshold {
                    members.push(("threshold", Json::num_f(*t)));
                }
                if let Some(m) = min_runs {
                    members.push(("min_runs", Json::num(*m)));
                }
                if let Some(d) = min_delta_ns {
                    members.push(("min_delta_ns", Json::num(*d)));
                }
                members.push(("profile", Json::str(profile_text.clone())));
                Json::obj(members)
            }
            Request::Stats => Json::obj(vec![("cmd", Json::str("STATS"))]),
        };
        v.to_string()
    }
}

// ---------------------------------------------------------------------
// Response builders (server side; also exercised by client tests)
// ---------------------------------------------------------------------

/// `{"ok":false,…}` with a typed error.
pub fn error_line(kind: ErrorKind, message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::str(kind.tag())),
                ("message", Json::str(message)),
            ]),
        ),
    ])
    .to_string()
}

/// Acknowledgement of one ingest.
pub fn ingest_line(run_id: u64, bytes: u64, segment: u64) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("run_id", Json::num(run_id)),
        ("bytes", Json::num(bytes)),
        ("segment", Json::num(segment)),
    ])
    .to_string()
}

fn metric_obj(m: &MetricAgg) -> Json {
    Json::obj(vec![
        ("runs", Json::num(m.count)),
        ("sum_ns", Json::num(m.sum)),
        ("min_ns", Json::num(m.min().unwrap_or(0))),
        ("max_ns", Json::num(m.max)),
        ("mean_ns", Json::num_f(m.mean())),
    ])
}

/// Top-N response from a cross-run aggregate.
pub fn top_line(benchmark: &str, threads: u32, agg: &BenchAgg, n: usize) -> String {
    let regions: Vec<Json> = agg
        .top_regions(n)
        .into_iter()
        .map(|(name, m)| {
            let mut members = vec![("region".to_string(), Json::str(name))];
            if let Json::Obj(mm) = metric_obj(m) {
                members.extend(mm);
            }
            Json::Obj(members)
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("benchmark", Json::str(benchmark)),
        ("threads", Json::num(u64::from(threads))),
        ("runs", Json::num(agg.runs)),
        ("regions", Json::Arr(regions)),
    ])
    .to_string()
}

/// Cross-run scalar statistics response.
pub fn stats_line(benchmark: &str, threads: u32, agg: &BenchAgg) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("benchmark", Json::str(benchmark)),
        ("threads", Json::num(u64::from(threads))),
        ("runs", Json::num(agg.runs)),
        ("total_ns", metric_obj(&agg.total_ns)),
        ("constructs", Json::num(agg.regions.len() as u64)),
        ("tree_mismatches", Json::num(agg.tree_mismatches)),
    ])
    .to_string()
}

/// Regression verdict response.
pub fn regress_line(verdict: &Regression) -> String {
    let findings: Vec<Json> = verdict
        .findings
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("region", Json::str(f.region.clone())),
                ("new_ns", Json::num(f.new_ns)),
                ("mean_ns", Json::num_f(f.mean_ns)),
                ("ratio", Json::num_f(f.ratio)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("regressed", Json::Bool(verdict.regressed)),
        ("baseline_runs", Json::num(verdict.baseline_runs)),
        ("threshold", Json::num_f(verdict.threshold)),
        ("findings", Json::Arr(findings)),
    ])
    .to_string()
}

/// Server-health response (`STATS`).
pub fn server_stats_line(service: &ServiceSnapshot, store: &StoreStats, read_only: bool) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "server",
            Json::obj(vec![
                ("connections", Json::num(service.connections)),
                ("shed_connections", Json::num(service.shed_connections)),
                ("timeout_connections", Json::num(service.timeout_connections)),
                ("ingests", Json::num(service.ingests)),
                ("ingest_bytes", Json::num(service.ingest_bytes)),
                ("queries", Json::num(service.queries)),
                ("errors", Json::num(service.errors)),
                ("panics", Json::num(service.panics)),
                ("read_only", Json::Bool(read_only)),
            ]),
        ),
        (
            "store",
            Json::obj(vec![
                ("segments", Json::num(store.segments)),
                ("runs", Json::num(store.runs)),
                ("bytes", Json::num(store.bytes)),
                ("recovered_tail_bytes", Json::num(store.recovered_tail_bytes)),
                ("compacted_through", Json::num(store.compacted_through)),
            ]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ingest {
                benchmark: "fib".into(),
                threads: 2,
                timestamp_ns: Some(7),
                profile_text: "taskprof-profile v1\nthreads 0\n".into(),
            },
            Request::QueryTop {
                benchmark: "nqueens".into(),
                threads: 4,
                n: 10,
            },
            Request::QueryStats {
                benchmark: "fib".into(),
                threads: 2,
            },
            Request::QueryRegress {
                benchmark: "fib".into(),
                threads: 2,
                profile_text: "p".into(),
                threshold: Some(0.25),
                min_runs: Some(3),
                min_delta_ns: None,
            },
            Request::Stats,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse(&line).expect("parse"), r);
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reason() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").unwrap_err().contains("cmd"));
        assert!(Request::parse("{\"cmd\":\"NOPE\"}").unwrap_err().contains("NOPE"));
        assert!(Request::parse("{\"cmd\":\"INGEST\",\"benchmark\":\"x\"}")
            .unwrap_err()
            .contains("threads"));
        assert!(
            Request::parse("{\"cmd\":\"QUERY\",\"query\":\"nope\",\"benchmark\":\"x\",\"threads\":1}")
                .unwrap_err()
                .contains("nope")
        );
    }

    #[test]
    fn error_lines_are_typed() {
        let line = error_line(ErrorKind::Overloaded, "permits exhausted");
        let v = crate::json::parse(&line).expect("parse");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let e = v.get("error").expect("error member");
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(ErrorKind::from_tag("bad_request"), Some(ErrorKind::BadRequest));
        assert_eq!(ErrorKind::from_tag("???"), None);
    }
}
