//! The protocol surface: one shared, typed request/response model with
//! two interchangeable encodings.
//!
//! * **JSON lines** (this module): one JSON object per line, both
//!   directions — human-readable, `nc`-able, the original protocol.
//! * **TPF1 binary frames** ([`crate::wire`]): length-prefixed CRC-framed
//!   payloads sharing the store's LEB128 codec — the bulk-ingest path.
//!
//! Both codecs encode the same [`Request`] / [`Response`] enums, so the
//! server core and the typed [`crate::Client`] are protocol-agnostic.
//!
//! JSON requests:
//!
//! ```text
//! {"cmd":"HELLO","version":1,"features":0}
//! {"cmd":"INGEST","benchmark":"fib","threads":2,"profile":"taskprof-profile v1\n…"}
//!     optional: "timestamp_ns":N
//! {"cmd":"INGEST_BATCH","items":[{"benchmark":…,"threads":…,"profile":…},…]}
//! {"cmd":"QUERY","query":"top","benchmark":"fib","threads":2,"n":10}
//! {"cmd":"QUERY","query":"stats","benchmark":"fib","threads":2}
//! {"cmd":"QUERY","query":"regress","benchmark":"fib","threads":2,
//!  "profile":"…","threshold":0.2}   optional: "min_runs":N,"min_delta_ns":N
//! {"cmd":"QUERY","query":"trend","benchmark":"fib","threads":2,"buckets":16}
//! {"cmd":"STATS"}                   or: "format":"prometheus"
//! {"cmd":"SUBSCRIBE"}               optional: "interval_ms":N
//! {"cmd":"EXPORT","after":N,"max":N}
//! {"cmd":"APPLY","frames":["<hex>",…]}
//! ```
//!
//! `HELLO` additionally accepts an optional `"auth":"<secret>"` member —
//! required (on both protocols) when the server is configured with a
//! shared secret; unauthenticated connections are limited to `HELLO`.
//!
//! `EXPORT`/`APPLY` are the replication verbs: a leader streams raw
//! CRC-framed store record frames out of `EXPORT` pages and a follower
//! ingests them via `APPLY`, exactly-once, resuming from its own
//! watermark after any interruption. Over JSON the frames travel
//! hex-encoded; over TPF1 they travel as raw bytes.
//!
//! Every `QUERY` additionally accepts an optional run window:
//! `"last":N` (newest N runs) and/or `"since_ns":T` (runs stamped at or
//! after `T`) — evaluated against the store index before aggregation.
//!
//! `SUBSCRIBE` upgrades the connection to a push stream: the server
//! acknowledges with `{"ok":true,"subscribed":true,…}` and then sends
//! unsolicited [`Response::Event`] lines/frames — periodic telemetry
//! snapshots, ingest notifications, and `lagged` notices when a slow
//! subscriber's queue overflowed and events were shed.
//!
//! Every JSON response is `{"ok":true,…}` or a typed error
//! `{"ok":false,"error":{"kind":"<kind>","message":"…"}}` with kind one of
//! `overloaded`, `bad_request`, `not_found`, `internal`, `too_large`,
//! `read_only`. Over JSON, profiles travel as the text store format
//! (`cube::write_profile`) inside a JSON string; over TPF1 they travel as
//! the store's binary record payload. [`ProfilePayload`] carries either
//! form and the server decodes whichever arrives.

use crate::json::Json;
use profstore::{BenchAgg, MetricAgg, Regression, RunMeta, RunWindow, StoreStats, TrendBucket};
use taskprof::Profile;
use taskprof_telemetry::ServiceSnapshot;

/// Typed error categories a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The connection permit gate is exhausted; retry later.
    Overloaded,
    /// The request line did not parse or lacked required fields.
    BadRequest,
    /// The referenced benchmark/run does not exist.
    NotFound,
    /// The handler failed (including isolated panics).
    Internal,
    /// The request line exceeded the configured size cap; the connection
    /// is closed after this reply (there is no way to resync mid-line).
    TooLarge,
    /// The store hit `ENOSPC` and the daemon degraded to read-only:
    /// queries still work, ingests are refused until an operator frees
    /// disk space and restarts (or the store recovers).
    ReadOnly,
    /// The server requires a shared secret and this connection has not
    /// presented it (or presented the wrong one) in its `HELLO`.
    /// Unauthenticated connections may only negotiate.
    Unauthorized,
}

impl ErrorKind {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Internal => "internal",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::ReadOnly => "read_only",
            ErrorKind::Unauthorized => "unauthorized",
        }
    }

    /// Parse a wire tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "overloaded" => ErrorKind::Overloaded,
            "bad_request" => ErrorKind::BadRequest,
            "not_found" => ErrorKind::NotFound,
            "internal" => ErrorKind::Internal,
            "too_large" => ErrorKind::TooLarge,
            "read_only" => ErrorKind::ReadOnly,
            "unauthorized" => ErrorKind::Unauthorized,
            _ => return None,
        })
    }
}

/// Transport selection knob shared by the client, the server, the CLI
/// (`--proto`), and the session exporter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireProtocol {
    /// Negotiate. A client tries TPF1 and falls back to JSON lines if
    /// the handshake fails; a server sniffs the first bytes of each
    /// connection and speaks whichever protocol arrives.
    #[default]
    Auto,
    /// JSON lines only.
    Json,
    /// TPF1 binary frames only.
    Binary,
}

impl WireProtocol {
    /// Parse a CLI/config spelling (`auto`, `json`, `bin`/`binary`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "auto" => WireProtocol::Auto,
            "json" => WireProtocol::Json,
            "bin" | "binary" => WireProtocol::Binary,
            _ => return None,
        })
    }

    /// Canonical spelling (round-trips through [`WireProtocol::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            WireProtocol::Auto => "auto",
            WireProtocol::Json => "json",
            WireProtocol::Binary => "bin",
        }
    }
}

impl std::str::FromStr for WireProtocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WireProtocol::parse(s)
            .ok_or_else(|| format!("unknown wire protocol '{s}' (expected auto|json|bin)"))
    }
}

impl std::fmt::Display for WireProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Payloads and requests
// ---------------------------------------------------------------------

/// A profile in transit, in whichever encoding the protocol chose.
///
/// JSON carries [`Text`](ProfilePayload::Text) (the `cube` text store
/// format); TPF1 carries [`Record`](ProfilePayload::Record) (the
/// `profstore` record codec payload, run id 0 — the store assigns the
/// real id on ingest). The server accepts either on either protocol; the
/// explicit benchmark/threads/timestamp fields on the request always win
/// over whatever metadata a record payload embeds.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfilePayload {
    /// `cube::write_profile` text.
    Text(String),
    /// `profstore::encode_record` payload bytes.
    Record(Vec<u8>),
}

impl ProfilePayload {
    /// Decode to an in-memory [`Profile`]; `Err` carries a `bad_request`
    /// explanation.
    pub fn decode(&self) -> Result<Profile, String> {
        match self {
            ProfilePayload::Text(text) => {
                cube::read_profile(text).map_err(|e| format!("bad profile: {e}"))
            }
            ProfilePayload::Record(bytes) => profstore::decode_record(bytes)
                .map(|(_, p)| p)
                .map_err(|e| format!("bad profile record: {e}")),
        }
    }

    /// Render as text-store format (re-encoding a binary record if
    /// needed) — what the JSON codec puts on the wire.
    pub fn to_text(&self) -> Result<String, String> {
        match self {
            ProfilePayload::Text(text) => Ok(text.clone()),
            ProfilePayload::Record(_) => Ok(cube::write_profile(&self.decode()?)),
        }
    }

    /// Approximate in-transit size, for accounting and size caps.
    pub fn len(&self) -> usize {
        match self {
            ProfilePayload::Text(t) => t.len(),
            ProfilePayload::Record(b) => b.len(),
        }
    }

    /// True when the payload is empty (vacuous, but clippy insists a
    /// `len` has an `is_empty`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One profile to ingest: group identity plus the payload. This is the
/// item type of [`Request::Ingest`] and [`Request::IngestBatch`], and the
/// argument to [`crate::Client::ingest_batch`].
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Benchmark / workload name the run belongs to.
    pub benchmark: String,
    /// Team thread count of the run.
    pub threads: u32,
    /// Caller timestamp; the server stamps its own clock when absent.
    pub timestamp_ns: Option<u64>,
    /// The profile itself.
    pub profile: ProfilePayload,
}

impl Record {
    /// A record from text-store-format profile text.
    pub fn from_text(
        benchmark: impl Into<String>,
        threads: u32,
        timestamp_ns: Option<u64>,
        profile_text: impl Into<String>,
    ) -> Self {
        Record {
            benchmark: benchmark.into(),
            threads,
            timestamp_ns,
            profile: ProfilePayload::Text(profile_text.into()),
        }
    }

    /// A record from an in-memory profile, encoded as the compact binary
    /// record payload (run id 0; the store assigns the real one).
    pub fn from_profile(
        benchmark: impl Into<String>,
        threads: u32,
        timestamp_ns: Option<u64>,
        profile: &Profile,
    ) -> Self {
        let benchmark = benchmark.into();
        let meta = RunMeta {
            run_id: 0,
            benchmark: benchmark.clone(),
            threads,
            timestamp_ns: timestamp_ns.unwrap_or(0),
        };
        Record {
            benchmark,
            threads,
            timestamp_ns,
            profile: ProfilePayload::Record(profstore::encode_record(&meta, profile)),
        }
    }
}

/// One parsed request, protocol-independent.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version/feature negotiation (sent first on binary connections;
    /// legal but optional over JSON — required there too when the server
    /// is configured with a shared secret).
    Hello {
        /// Highest protocol version the client speaks.
        version: u32,
        /// Feature bitmask the client understands (see [`crate::wire`]).
        features: u64,
        /// Shared secret authenticating this connection. A server with
        /// no secret configured ignores it; a server with one refuses
        /// everything but `HELLO` until a valid secret arrives.
        auth: Option<String>,
    },
    /// Upload one profile.
    Ingest(Record),
    /// Upload many profiles under one acknowledgement — the pipelined
    /// bulk path. Items are ingested in order; the first failure aborts
    /// the rest and the error reply tells the client nothing after the
    /// reported count was stored.
    IngestBatch(Vec<Record>),
    /// Top-N constructs by summed inclusive time across stored runs.
    QueryTop {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// How many rows.
        n: usize,
        /// Run window the aggregate is computed over.
        window: RunWindow,
    },
    /// Cross-run scalar statistics of one group.
    QueryStats {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// Run window the aggregate is computed over.
        window: RunWindow,
    },
    /// Check a fresh run against the stored aggregate.
    QueryRegress {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// The candidate profile.
        profile: ProfilePayload,
        /// Relative threshold (default: the server's).
        threshold: Option<f64>,
        /// Minimum baseline runs (default: the server's).
        min_runs: Option<u64>,
        /// Absolute noise floor in ns (default: the server's).
        min_delta_ns: Option<u64>,
        /// Run window the baseline is built from.
        window: RunWindow,
    },
    /// Per-bucket run-total aggregates over the window, ingest order —
    /// the sparkline/trend-dashboard query.
    QueryTrend {
        /// Benchmark name.
        benchmark: String,
        /// Thread count group.
        threads: u32,
        /// Maximum number of trend buckets.
        buckets: u32,
        /// Run window the trend is computed over.
        window: RunWindow,
    },
    /// Server health: service counters + store shape.
    Stats,
    /// Server health in the Prometheus text exposition format.
    StatsPrometheus,
    /// Upgrade this connection to a live event stream (reactor only).
    Subscribe {
        /// Telemetry snapshot period in ms (`None` = server default).
        interval_ms: Option<u64>,
    },
    /// One page of the bulk replication stream: raw store record frames
    /// with run ids above `after`, ascending.
    Export {
        /// Replication cursor — highest run id the follower has applied.
        after: u64,
        /// Maximum frames in this page.
        max: u64,
    },
    /// Apply exported record frames to this (follower) store. An empty
    /// frame list is a cursor probe: the reply reports the follower's
    /// current watermark without writing anything.
    Apply {
        /// Raw `len|payload|crc` record frames from [`Request::Export`].
        frames: Vec<Vec<u8>>,
    },
}

// ---------------------------------------------------------------------
// Typed responses
// ---------------------------------------------------------------------

/// Acknowledgement of one ingest (or one whole batch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Run id of the first profile stored (ids are consecutive within a
    /// batch).
    pub first_run_id: u64,
    /// Profiles stored under this acknowledgement.
    pub count: u64,
    /// Framed bytes appended across the batch.
    pub bytes: u64,
    /// Segment the last record landed in.
    pub segment: u64,
}

impl IngestReceipt {
    /// The single run id, for one-profile ingests.
    pub fn run_id(&self) -> u64 {
        self.first_run_id
    }
}

/// Cross-run aggregate of one scalar metric.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricReport {
    /// Runs aggregated.
    pub runs: u64,
    /// Sum over runs, ns.
    pub sum_ns: u64,
    /// Minimum over runs, ns (0 when no runs).
    pub min_ns: u64,
    /// Maximum over runs, ns.
    pub max_ns: u64,
    /// Mean over runs, ns.
    pub mean_ns: f64,
}

impl MetricReport {
    fn from_agg(m: &MetricAgg) -> Self {
        MetricReport {
            runs: m.count,
            sum_ns: m.sum,
            min_ns: m.min().unwrap_or(0),
            max_ns: m.max,
            mean_ns: m.mean(),
        }
    }
}

/// One row of a top-N report.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionRow {
    /// Construct (region) name.
    pub region: String,
    /// Summed-inclusive-time aggregate across runs.
    pub metric: MetricReport,
}

/// `QUERY top` result.
#[derive(Clone, Debug, PartialEq)]
pub struct TopReport {
    /// Benchmark queried.
    pub benchmark: String,
    /// Thread count group queried.
    pub threads: u32,
    /// Runs in the aggregate.
    pub runs: u64,
    /// Rows, hottest first.
    pub regions: Vec<RegionRow>,
}

impl TopReport {
    /// Build from a store aggregate.
    pub fn from_agg(benchmark: &str, threads: u32, agg: &BenchAgg, n: usize) -> Self {
        TopReport {
            benchmark: benchmark.to_string(),
            threads,
            runs: agg.runs,
            regions: agg
                .top_regions(n)
                .into_iter()
                .map(|(name, m)| RegionRow {
                    region: name.to_string(),
                    metric: MetricReport::from_agg(m),
                })
                .collect(),
        }
    }
}

/// `QUERY stats` result.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Benchmark queried.
    pub benchmark: String,
    /// Thread count group queried.
    pub threads: u32,
    /// Runs in the aggregate.
    pub runs: u64,
    /// Total inclusive time across runs.
    pub total_ns: MetricReport,
    /// Distinct constructs seen.
    pub constructs: u64,
    /// Runs whose tree shape disagreed with the aggregate.
    pub tree_mismatches: u64,
}

impl StatsReport {
    /// Build from a store aggregate.
    pub fn from_agg(benchmark: &str, threads: u32, agg: &BenchAgg) -> Self {
        StatsReport {
            benchmark: benchmark.to_string(),
            threads,
            runs: agg.runs,
            total_ns: MetricReport::from_agg(&agg.total_ns),
            constructs: agg.regions.len() as u64,
            tree_mismatches: agg.tree_mismatches,
        }
    }
}

/// One construct flagged by the regression check.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressFinding {
    /// Construct name.
    pub region: String,
    /// Candidate's inclusive time, ns.
    pub new_ns: u64,
    /// Baseline mean, ns.
    pub mean_ns: f64,
    /// `new / mean`.
    pub ratio: f64,
}

/// `QUERY regress` verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressReport {
    /// True when any construct exceeded the threshold.
    pub regressed: bool,
    /// Runs the baseline was built from.
    pub baseline_runs: u64,
    /// Relative threshold applied.
    pub threshold: f64,
    /// Flagged constructs, worst first.
    pub findings: Vec<RegressFinding>,
}

impl RegressReport {
    /// Build from a store verdict.
    pub fn from_verdict(v: &Regression) -> Self {
        RegressReport {
            regressed: v.regressed,
            baseline_runs: v.baseline_runs,
            threshold: v.threshold,
            findings: v
                .findings
                .iter()
                .map(|f| RegressFinding {
                    region: f.region.clone(),
                    new_ns: f.new_ns,
                    mean_ns: f.mean_ns,
                    ratio: f.ratio,
                })
                .collect(),
        }
    }
}

/// `QUERY trend` result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrendReport {
    /// Benchmark queried.
    pub benchmark: String,
    /// Thread count group queried.
    pub threads: u32,
    /// Runs in the window (sum over buckets).
    pub runs: u64,
    /// Consecutive ingest-order buckets, oldest first.
    pub buckets: Vec<TrendBucket>,
}

/// Request-latency summary of one (verb, protocol) pair, distilled from
/// the daemon's log2-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Request verb (`ingest`, `query_top`, `stats`, …).
    pub verb: String,
    /// Protocol the requests arrived over (`json` or `bin`).
    pub proto: String,
    /// Requests traced.
    pub count: u64,
    /// Summed handling time, ns.
    pub sum_ns: u64,
    /// Slowest request, ns.
    pub max_ns: u64,
    /// Median upper bound, ns (log2-bucket resolution).
    pub p50_ns: u64,
    /// 99th-percentile upper bound, ns (log2-bucket resolution).
    pub p99_ns: u64,
}

/// `STATS` result: daemon counters plus store shape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStatsReport {
    /// Service counters since daemon start.
    pub service: ServiceSnapshot,
    /// True when the daemon degraded to read-only after `ENOSPC`.
    pub read_only: bool,
    /// Store shape.
    pub store: StoreStats,
    /// Wall clock (unix epoch ns) when the served store was opened —
    /// the anchor for `since_ns` trend windows.
    pub open_timestamp_ns: u64,
    /// Seconds the daemon has been serving.
    pub uptime_secs: u64,
    /// Per-(verb, protocol) request-latency summaries; only pairs that
    /// served at least one request appear.
    pub latency: Vec<LatencyStat>,
}

/// One event pushed over a live subscription (see [`Request::Subscribe`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Notification {
    /// Periodic health snapshot (same shape as a `STATS` reply).
    Telemetry {
        /// Server wall clock at snapshot time, unix epoch ns.
        t_ns: u64,
        /// The snapshot.
        stats: ServerStatsReport,
    },
    /// Runs landed in the store.
    Ingest {
        /// Run id of the first profile stored.
        first_run_id: u64,
        /// Profiles stored under the triggering request.
        count: u64,
        /// Framed bytes appended.
        bytes: u64,
        /// Benchmark the runs belong to.
        benchmark: String,
        /// Thread count group.
        threads: u32,
    },
    /// This subscriber fell behind and `dropped` events were shed from
    /// its queue (the stream resumes with fresh events).
    Lagged {
        /// Events dropped since the last successful push.
        dropped: u64,
    },
}

/// One parsed response, protocol-independent.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Negotiation reply: the version/features the server will speak.
    Hello {
        /// Protocol version the server chose.
        version: u32,
        /// Feature bitmask both sides support.
        features: u64,
    },
    /// Ingest (or batch) acknowledgement.
    Ingest(IngestReceipt),
    /// Top-N rows.
    Top(TopReport),
    /// Scalar statistics.
    Stats(StatsReport),
    /// Regression verdict.
    Regress(RegressReport),
    /// Trend buckets.
    Trend(TrendReport),
    /// Server health.
    ServerStats(ServerStatsReport),
    /// Server health as Prometheus text exposition.
    Prometheus(String),
    /// Subscription accepted; unsolicited [`Response::Event`]s follow.
    Subscribed {
        /// Telemetry push period granted, ms.
        interval_ms: u64,
    },
    /// One pushed subscription event.
    Event(Notification),
    /// One page of the replication stream (reply to [`Request::Export`]).
    ExportChunk {
        /// Raw `len|payload|crc` record frames, ascending run id.
        frames: Vec<Vec<u8>>,
        /// Highest run id included (or the request's `after` when the
        /// page is empty) — the follower's next cursor.
        watermark: u64,
        /// True when no further frames existed past `watermark` at the
        /// time of the export.
        done: bool,
    },
    /// Apply acknowledgement (reply to [`Request::Apply`]).
    Applied {
        /// Frames written by this request.
        applied: u64,
        /// Frames skipped as already present (exactly-once replays).
        skipped: u64,
        /// The follower's highest applied run id after this request.
        watermark: u64,
    },
    /// Typed failure.
    Error {
        /// Category.
        kind: ErrorKind,
        /// Human-readable explanation.
        message: String,
    },
}

// ---------------------------------------------------------------------
// JSON codec — requests
// ---------------------------------------------------------------------

/// Lowercase hex rendering of raw bytes — how replication frames travel
/// inside JSON strings (JSON cannot carry raw bytes).
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[usize::from(b >> 4)] as char);
        out.push(HEX[usize::from(b & 0x0F)] as char);
    }
    out
}

/// Inverse of [`hex_encode`]; `Err` carries a `bad_request` explanation.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    fn nibble(c: u8) -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex digit {:?}", c as char)),
        }
    }
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err("odd hex length".to_string());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

fn need_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn need_threads(v: &Json) -> Result<u32, String> {
    u32::try_from(need_u64(v, "threads")?).map_err(|_| "threads out of range".to_string())
}

fn window_from_json(v: &Json) -> RunWindow {
    RunWindow {
        last: v.get("last").and_then(Json::as_u64),
        since_ns: v.get("since_ns").and_then(Json::as_u64),
    }
}

fn push_window(members: &mut Vec<(&str, Json)>, w: &RunWindow) {
    if let Some(last) = w.last {
        members.push(("last", Json::num(last)));
    }
    if let Some(since) = w.since_ns {
        members.push(("since_ns", Json::num(since)));
    }
}

fn record_from_json(v: &Json) -> Result<Record, String> {
    Ok(Record {
        benchmark: need_str(v, "benchmark")?,
        threads: need_threads(v)?,
        timestamp_ns: v.get("timestamp_ns").and_then(Json::as_u64),
        profile: ProfilePayload::Text(need_str(v, "profile")?),
    })
}

fn record_to_json(r: &Record, cmd: Option<&str>) -> Json {
    let mut members = Vec::new();
    if let Some(cmd) = cmd {
        members.push(("cmd", Json::str(cmd)));
    }
    members.push(("benchmark", Json::str(r.benchmark.clone())));
    members.push(("threads", Json::num(u64::from(r.threads))));
    if let Some(t) = r.timestamp_ns {
        members.push(("timestamp_ns", Json::num(t)));
    }
    members.push((
        "profile",
        Json::str(r.profile.to_text().unwrap_or_default()),
    ));
    Json::obj(members)
}

impl Request {
    /// Parse one JSON request line. `Err` carries a `bad_request`
    /// explanation.
    pub fn from_json_line(line: &str) -> Result<Request, String> {
        let v = crate::json::parse(line).map_err(|e| e.to_string())?;
        let cmd = need_str(&v, "cmd")?;
        match cmd.as_str() {
            "HELLO" => Ok(Request::Hello {
                version: u32::try_from(need_u64(&v, "version")?)
                    .map_err(|_| "version out of range".to_string())?,
                features: v.get("features").and_then(Json::as_u64).unwrap_or(0),
                auth: v.get("auth").and_then(Json::as_str).map(str::to_string),
            }),
            "INGEST" => Ok(Request::Ingest(record_from_json(&v)?)),
            "INGEST_BATCH" => {
                let items = v
                    .get("items")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "missing or non-array 'items'".to_string())?;
                items
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map(Request::IngestBatch)
            }
            "QUERY" => {
                let query = need_str(&v, "query")?;
                let benchmark = need_str(&v, "benchmark")?;
                let threads = need_threads(&v)?;
                let window = window_from_json(&v);
                match query.as_str() {
                    "top" => Ok(Request::QueryTop {
                        benchmark,
                        threads,
                        n: need_u64(&v, "n")? as usize,
                        window,
                    }),
                    "stats" => Ok(Request::QueryStats {
                        benchmark,
                        threads,
                        window,
                    }),
                    "regress" => Ok(Request::QueryRegress {
                        benchmark,
                        threads,
                        profile: ProfilePayload::Text(need_str(&v, "profile")?),
                        threshold: v.get("threshold").and_then(Json::as_f64),
                        min_runs: v.get("min_runs").and_then(Json::as_u64),
                        min_delta_ns: v.get("min_delta_ns").and_then(Json::as_u64),
                        window,
                    }),
                    "trend" => Ok(Request::QueryTrend {
                        benchmark,
                        threads,
                        buckets: u32::try_from(need_u64(&v, "buckets")?)
                            .map_err(|_| "buckets out of range".to_string())?,
                        window,
                    }),
                    other => Err(format!("unknown query '{other}'")),
                }
            }
            "STATS" => match v.get("format").and_then(Json::as_str) {
                None => Ok(Request::Stats),
                Some("prometheus") => Ok(Request::StatsPrometheus),
                Some(other) => Err(format!("unknown stats format '{other}'")),
            },
            "SUBSCRIBE" => Ok(Request::Subscribe {
                interval_ms: v.get("interval_ms").and_then(Json::as_u64),
            }),
            "EXPORT" => Ok(Request::Export {
                after: need_u64(&v, "after")?,
                max: need_u64(&v, "max")?,
            }),
            "APPLY" => {
                let frames = v
                    .get("frames")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "missing or non-array 'frames'".to_string())?;
                frames
                    .iter()
                    .map(|f| {
                        f.as_str()
                            .ok_or_else(|| "non-string frame".to_string())
                            .and_then(hex_decode)
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|frames| Request::Apply { frames })
            }
            other => Err(format!("unknown cmd '{other}'")),
        }
    }

    /// Serialize to one JSON request line (the client side). Binary
    /// record payloads are re-rendered as profile text, since JSON
    /// strings cannot carry raw bytes.
    pub fn to_json_line(&self) -> String {
        let v = match self {
            Request::Hello {
                version,
                features,
                auth,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("HELLO")),
                    ("version", Json::num(u64::from(*version))),
                    ("features", Json::num(*features)),
                ];
                if let Some(secret) = auth {
                    members.push(("auth", Json::str(secret.clone())));
                }
                Json::obj(members)
            }
            Request::Ingest(record) => record_to_json(record, Some("INGEST")),
            Request::IngestBatch(items) => Json::obj(vec![
                ("cmd", Json::str("INGEST_BATCH")),
                (
                    "items",
                    Json::Arr(items.iter().map(|r| record_to_json(r, None)).collect()),
                ),
            ]),
            Request::QueryTop {
                benchmark,
                threads,
                n,
                window,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("QUERY")),
                    ("query", Json::str("top")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                    ("n", Json::num(*n as u64)),
                ];
                push_window(&mut members, window);
                Json::obj(members)
            }
            Request::QueryStats {
                benchmark,
                threads,
                window,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("QUERY")),
                    ("query", Json::str("stats")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                ];
                push_window(&mut members, window);
                Json::obj(members)
            }
            Request::QueryRegress {
                benchmark,
                threads,
                profile,
                threshold,
                min_runs,
                min_delta_ns,
                window,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("QUERY")),
                    ("query", Json::str("regress")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                ];
                if let Some(t) = threshold {
                    members.push(("threshold", Json::num_f(*t)));
                }
                if let Some(m) = min_runs {
                    members.push(("min_runs", Json::num(*m)));
                }
                if let Some(d) = min_delta_ns {
                    members.push(("min_delta_ns", Json::num(*d)));
                }
                push_window(&mut members, window);
                members.push(("profile", Json::str(profile.to_text().unwrap_or_default())));
                Json::obj(members)
            }
            Request::QueryTrend {
                benchmark,
                threads,
                buckets,
                window,
            } => {
                let mut members = vec![
                    ("cmd", Json::str("QUERY")),
                    ("query", Json::str("trend")),
                    ("benchmark", Json::str(benchmark.clone())),
                    ("threads", Json::num(u64::from(*threads))),
                    ("buckets", Json::num(u64::from(*buckets))),
                ];
                push_window(&mut members, window);
                Json::obj(members)
            }
            Request::Stats => Json::obj(vec![("cmd", Json::str("STATS"))]),
            Request::StatsPrometheus => Json::obj(vec![
                ("cmd", Json::str("STATS")),
                ("format", Json::str("prometheus")),
            ]),
            Request::Subscribe { interval_ms } => {
                let mut members = vec![("cmd", Json::str("SUBSCRIBE"))];
                if let Some(ms) = interval_ms {
                    members.push(("interval_ms", Json::num(*ms)));
                }
                Json::obj(members)
            }
            Request::Export { after, max } => Json::obj(vec![
                ("cmd", Json::str("EXPORT")),
                ("after", Json::num(*after)),
                ("max", Json::num(*max)),
            ]),
            Request::Apply { frames } => Json::obj(vec![
                ("cmd", Json::str("APPLY")),
                (
                    "frames",
                    Json::Arr(frames.iter().map(|f| Json::str(hex_encode(f))).collect()),
                ),
            ]),
        };
        v.to_string()
    }
}

// ---------------------------------------------------------------------
// JSON codec — responses
// ---------------------------------------------------------------------

/// `{"ok":false,…}` with a typed error — also used bare by the server
/// for pre-parse failures (overload shedding, oversized lines).
pub fn error_line(kind: ErrorKind, message: &str) -> String {
    Response::Error {
        kind,
        message: message.to_string(),
    }
    .to_json_line()
}

fn metric_obj(m: &MetricReport) -> Json {
    Json::obj(vec![
        ("runs", Json::num(m.runs)),
        ("sum_ns", Json::num(m.sum_ns)),
        ("min_ns", Json::num(m.min_ns)),
        ("max_ns", Json::num(m.max_ns)),
        ("mean_ns", Json::num_f(m.mean_ns)),
    ])
}

fn metric_from_json(v: &Json) -> Result<MetricReport, String> {
    Ok(MetricReport {
        runs: need_u64(v, "runs")?,
        sum_ns: need_u64(v, "sum_ns")?,
        min_ns: need_u64(v, "min_ns")?,
        max_ns: need_u64(v, "max_ns")?,
        mean_ns: v
            .get("mean_ns")
            .and_then(Json::as_f64)
            .ok_or("missing 'mean_ns'")?,
    })
}

/// The `STATS` body members (`server`, `store`, `latency`) — shared
/// between the `STATS` reply and the `telemetry` subscription event.
fn server_stats_members(h: &ServerStatsReport) -> Vec<(&'static str, Json)> {
    let s = &h.service;
    let latency: Vec<Json> = h
        .latency
        .iter()
        .map(|l| {
            Json::obj(vec![
                ("verb", Json::str(l.verb.clone())),
                ("proto", Json::str(l.proto.clone())),
                ("count", Json::num(l.count)),
                ("sum_ns", Json::num(l.sum_ns)),
                ("max_ns", Json::num(l.max_ns)),
                ("p50_ns", Json::num(l.p50_ns)),
                ("p99_ns", Json::num(l.p99_ns)),
            ])
        })
        .collect();
    vec![
        (
            "server",
            Json::obj(vec![
                ("connections", Json::num(s.connections)),
                ("shed_connections", Json::num(s.shed_connections)),
                ("timeout_connections", Json::num(s.timeout_connections)),
                ("ingests", Json::num(s.ingests)),
                ("ingest_bytes", Json::num(s.ingest_bytes)),
                ("queries", Json::num(s.queries)),
                ("errors", Json::num(s.errors)),
                ("panics", Json::num(s.panics)),
                ("json_requests", Json::num(s.json_requests)),
                ("bin_requests", Json::num(s.bin_requests)),
                ("ingest_batches", Json::num(s.ingest_batches)),
                ("subscriptions", Json::num(s.subscriptions)),
                ("sub_events", Json::num(s.sub_events)),
                ("sub_lagged", Json::num(s.sub_lagged)),
                ("read_only", Json::Bool(h.read_only)),
                ("open_timestamp_ns", Json::num(h.open_timestamp_ns)),
                ("uptime_secs", Json::num(h.uptime_secs)),
            ]),
        ),
        (
            "store",
            Json::obj(vec![
                ("segments", Json::num(h.store.segments)),
                ("runs", Json::num(h.store.runs)),
                ("bytes", Json::num(h.store.bytes)),
                (
                    "recovered_tail_bytes",
                    Json::num(h.store.recovered_tail_bytes),
                ),
                ("compacted_through", Json::num(h.store.compacted_through)),
            ]),
        ),
        ("latency", Json::Arr(latency)),
    ]
}

fn server_stats_from_json(v: &Json) -> Result<ServerStatsReport, String> {
    let s = v.get("server").ok_or("missing 'server'")?;
    let store = v.get("store").ok_or("missing 'store'")?;
    let latency = match v.get("latency").and_then(Json::as_arr) {
        Some(rows) => rows
            .iter()
            .map(|l| {
                Ok(LatencyStat {
                    verb: need_str(l, "verb")?,
                    proto: need_str(l, "proto")?,
                    count: need_u64(l, "count")?,
                    sum_ns: need_u64(l, "sum_ns")?,
                    max_ns: need_u64(l, "max_ns")?,
                    p50_ns: need_u64(l, "p50_ns")?,
                    p99_ns: need_u64(l, "p99_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let opt = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok(ServerStatsReport {
        service: ServiceSnapshot {
            connections: need_u64(s, "connections")?,
            shed_connections: need_u64(s, "shed_connections")?,
            timeout_connections: need_u64(s, "timeout_connections")?,
            ingests: need_u64(s, "ingests")?,
            ingest_bytes: need_u64(s, "ingest_bytes")?,
            queries: need_u64(s, "queries")?,
            errors: need_u64(s, "errors")?,
            panics: need_u64(s, "panics")?,
            json_requests: opt("json_requests"),
            bin_requests: opt("bin_requests"),
            ingest_batches: opt("ingest_batches"),
            subscriptions: opt("subscriptions"),
            sub_events: opt("sub_events"),
            sub_lagged: opt("sub_lagged"),
        },
        read_only: s.get("read_only").and_then(Json::as_bool).unwrap_or(false),
        store: StoreStats {
            segments: need_u64(store, "segments")?,
            runs: need_u64(store, "runs")?,
            bytes: need_u64(store, "bytes")?,
            recovered_tail_bytes: need_u64(store, "recovered_tail_bytes")?,
            compacted_through: need_u64(store, "compacted_through")?,
        },
        open_timestamp_ns: opt("open_timestamp_ns"),
        uptime_secs: opt("uptime_secs"),
        latency,
    })
}

fn trend_bucket_obj(b: &TrendBucket) -> Json {
    Json::obj(vec![
        ("runs", Json::num(b.runs)),
        ("sum_ns", Json::num(b.sum_ns)),
        ("min_ns", Json::num(b.min_ns)),
        ("max_ns", Json::num(b.max_ns)),
        ("first_timestamp_ns", Json::num(b.first_timestamp_ns)),
        ("last_timestamp_ns", Json::num(b.last_timestamp_ns)),
    ])
}

fn trend_bucket_from_json(v: &Json) -> Result<TrendBucket, String> {
    Ok(TrendBucket {
        runs: need_u64(v, "runs")?,
        sum_ns: need_u64(v, "sum_ns")?,
        min_ns: need_u64(v, "min_ns")?,
        max_ns: need_u64(v, "max_ns")?,
        first_timestamp_ns: need_u64(v, "first_timestamp_ns")?,
        last_timestamp_ns: need_u64(v, "last_timestamp_ns")?,
    })
}

impl Response {
    /// Serialize to one JSON response line (the server side).
    pub fn to_json_line(&self) -> String {
        match self {
            Response::Hello { version, features } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "hello",
                    Json::obj(vec![
                        ("version", Json::num(u64::from(*version))),
                        ("features", Json::num(*features)),
                    ]),
                ),
            ])
            .to_string(),
            Response::Ingest(r) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("run_id", Json::num(r.first_run_id)),
                ("count", Json::num(r.count)),
                ("bytes", Json::num(r.bytes)),
                ("segment", Json::num(r.segment)),
            ])
            .to_string(),
            Response::Top(t) => {
                let regions: Vec<Json> = t
                    .regions
                    .iter()
                    .map(|row| {
                        let mut members =
                            vec![("region".to_string(), Json::str(row.region.clone()))];
                        if let Json::Obj(mm) = metric_obj(&row.metric) {
                            members.extend(mm);
                        }
                        Json::Obj(members)
                    })
                    .collect();
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("benchmark", Json::str(t.benchmark.clone())),
                    ("threads", Json::num(u64::from(t.threads))),
                    ("runs", Json::num(t.runs)),
                    ("regions", Json::Arr(regions)),
                ])
                .to_string()
            }
            Response::Stats(s) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("benchmark", Json::str(s.benchmark.clone())),
                ("threads", Json::num(u64::from(s.threads))),
                ("runs", Json::num(s.runs)),
                ("total_ns", metric_obj(&s.total_ns)),
                ("constructs", Json::num(s.constructs)),
                ("tree_mismatches", Json::num(s.tree_mismatches)),
            ])
            .to_string(),
            Response::Regress(r) => {
                let findings: Vec<Json> = r
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("region", Json::str(f.region.clone())),
                            ("new_ns", Json::num(f.new_ns)),
                            ("mean_ns", Json::num_f(f.mean_ns)),
                            ("ratio", Json::num_f(f.ratio)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("regressed", Json::Bool(r.regressed)),
                    ("baseline_runs", Json::num(r.baseline_runs)),
                    ("threshold", Json::num_f(r.threshold)),
                    ("findings", Json::Arr(findings)),
                ])
                .to_string()
            }
            Response::Trend(t) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("benchmark", Json::str(t.benchmark.clone())),
                ("threads", Json::num(u64::from(t.threads))),
                ("runs", Json::num(t.runs)),
                (
                    "trend",
                    Json::Arr(t.buckets.iter().map(trend_bucket_obj).collect()),
                ),
            ])
            .to_string(),
            Response::ServerStats(h) => {
                let mut members = vec![("ok", Json::Bool(true))];
                members.extend(server_stats_members(h));
                Json::obj(members).to_string()
            }
            Response::Prometheus(text) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("prometheus", Json::str(text.clone())),
            ])
            .to_string(),
            Response::Subscribed { interval_ms } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("subscribed", Json::Bool(true)),
                ("interval_ms", Json::num(*interval_ms)),
            ])
            .to_string(),
            Response::Event(n) => {
                let mut members = vec![("ok", Json::Bool(true))];
                match n {
                    Notification::Telemetry { t_ns, stats } => {
                        members.push(("event", Json::str("telemetry")));
                        members.push(("t_ns", Json::num(*t_ns)));
                        members.extend(server_stats_members(stats));
                    }
                    Notification::Ingest {
                        first_run_id,
                        count,
                        bytes,
                        benchmark,
                        threads,
                    } => {
                        members.push(("event", Json::str("ingest")));
                        members.push(("run_id", Json::num(*first_run_id)));
                        members.push(("count", Json::num(*count)));
                        members.push(("bytes", Json::num(*bytes)));
                        members.push(("benchmark", Json::str(benchmark.clone())));
                        members.push(("threads", Json::num(u64::from(*threads))));
                    }
                    Notification::Lagged { dropped } => {
                        members.push(("event", Json::str("lagged")));
                        members.push(("dropped", Json::num(*dropped)));
                    }
                }
                Json::obj(members).to_string()
            }
            Response::ExportChunk {
                frames,
                watermark,
                done,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "frames",
                    Json::Arr(frames.iter().map(|f| Json::str(hex_encode(f))).collect()),
                ),
                ("watermark", Json::num(*watermark)),
                ("done", Json::Bool(*done)),
            ])
            .to_string(),
            Response::Applied {
                applied,
                skipped,
                watermark,
            } => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("applied", Json::num(*applied)),
                ("skipped", Json::num(*skipped)),
                ("watermark", Json::num(*watermark)),
            ])
            .to_string(),
            Response::Error { kind, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::obj(vec![
                        ("kind", Json::str(kind.tag())),
                        ("message", Json::str(message.clone())),
                    ]),
                ),
            ])
            .to_string(),
        }
    }

    /// Parse one JSON response line back into the typed form (the client
    /// side). The response kind is recovered from its distinguishing
    /// fields, so no out-of-band context is needed.
    pub fn from_json_line(line: &str) -> Result<Response, String> {
        let v = crate::json::parse(line).map_err(|e| e.to_string())?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("missing or non-bool 'ok'")?;
        if !ok {
            let e = v.get("error").ok_or("error response without 'error'")?;
            let tag = need_str(e, "kind")?;
            return Ok(Response::Error {
                kind: ErrorKind::from_tag(&tag).ok_or_else(|| format!("unknown kind '{tag}'"))?,
                message: need_str(e, "message")?,
            });
        }
        // Events first: a telemetry event embeds the whole server-stats
        // shape and an ingest event embeds "run_id", so any later check
        // would misclassify them.
        if let Some(event) = v.get("event").and_then(Json::as_str) {
            return match event {
                "telemetry" => Ok(Response::Event(Notification::Telemetry {
                    t_ns: need_u64(&v, "t_ns")?,
                    stats: server_stats_from_json(&v)?,
                })),
                "ingest" => Ok(Response::Event(Notification::Ingest {
                    first_run_id: need_u64(&v, "run_id")?,
                    count: v.get("count").and_then(Json::as_u64).unwrap_or(1),
                    bytes: need_u64(&v, "bytes")?,
                    benchmark: need_str(&v, "benchmark")?,
                    threads: need_threads(&v)?,
                })),
                "lagged" => Ok(Response::Event(Notification::Lagged {
                    dropped: need_u64(&v, "dropped")?,
                })),
                other => Err(format!("unknown event '{other}'")),
            };
        }
        if v.get("subscribed").is_some() {
            return Ok(Response::Subscribed {
                interval_ms: need_u64(&v, "interval_ms")?,
            });
        }
        if let Some(text) = v.get("prometheus").and_then(Json::as_str) {
            return Ok(Response::Prometheus(text.to_string()));
        }
        if let Some(buckets) = v.get("trend").and_then(Json::as_arr) {
            return Ok(Response::Trend(TrendReport {
                benchmark: need_str(&v, "benchmark")?,
                threads: need_threads(&v)?,
                runs: need_u64(&v, "runs")?,
                buckets: buckets
                    .iter()
                    .map(trend_bucket_from_json)
                    .collect::<Result<Vec<_>, String>>()?,
            }));
        }
        if let Some(h) = v.get("hello") {
            return Ok(Response::Hello {
                version: u32::try_from(need_u64(h, "version")?)
                    .map_err(|_| "version out of range".to_string())?,
                features: h.get("features").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        if let Some(frames) = v.get("frames").and_then(Json::as_arr) {
            return Ok(Response::ExportChunk {
                frames: frames
                    .iter()
                    .map(|f| {
                        f.as_str()
                            .ok_or_else(|| "non-string frame".to_string())
                            .and_then(hex_decode)
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                watermark: need_u64(&v, "watermark")?,
                done: v.get("done").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        if v.get("applied").is_some() {
            return Ok(Response::Applied {
                applied: need_u64(&v, "applied")?,
                skipped: need_u64(&v, "skipped")?,
                watermark: need_u64(&v, "watermark")?,
            });
        }
        if v.get("run_id").is_some() {
            return Ok(Response::Ingest(IngestReceipt {
                first_run_id: need_u64(&v, "run_id")?,
                count: v.get("count").and_then(Json::as_u64).unwrap_or(1),
                bytes: need_u64(&v, "bytes")?,
                segment: need_u64(&v, "segment")?,
            }));
        }
        if let Some(regions) = v.get("regions").and_then(Json::as_arr) {
            return Ok(Response::Top(TopReport {
                benchmark: need_str(&v, "benchmark")?,
                threads: need_threads(&v)?,
                runs: need_u64(&v, "runs")?,
                regions: regions
                    .iter()
                    .map(|row| {
                        Ok(RegionRow {
                            region: need_str(row, "region")?,
                            metric: metric_from_json(row)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }));
        }
        if v.get("regressed").is_some() {
            let findings = v
                .get("findings")
                .and_then(Json::as_arr)
                .ok_or("missing 'findings'")?;
            return Ok(Response::Regress(RegressReport {
                regressed: v
                    .get("regressed")
                    .and_then(Json::as_bool)
                    .ok_or("non-bool 'regressed'")?,
                baseline_runs: need_u64(&v, "baseline_runs")?,
                threshold: v
                    .get("threshold")
                    .and_then(Json::as_f64)
                    .ok_or("missing 'threshold'")?,
                findings: findings
                    .iter()
                    .map(|f| {
                        Ok(RegressFinding {
                            region: need_str(f, "region")?,
                            new_ns: need_u64(f, "new_ns")?,
                            mean_ns: f
                                .get("mean_ns")
                                .and_then(Json::as_f64)
                                .ok_or("missing 'mean_ns'")?,
                            ratio: f
                                .get("ratio")
                                .and_then(Json::as_f64)
                                .ok_or("missing 'ratio'")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }));
        }
        if let Some(total) = v.get("total_ns") {
            return Ok(Response::Stats(StatsReport {
                benchmark: need_str(&v, "benchmark")?,
                threads: need_threads(&v)?,
                runs: need_u64(&v, "runs")?,
                total_ns: metric_from_json(total)?,
                constructs: need_u64(&v, "constructs")?,
                tree_mismatches: need_u64(&v, "tree_mismatches")?,
            }));
        }
        if v.get("server").is_some() {
            return Ok(Response::ServerStats(server_stats_from_json(&v)?));
        }
        Err("unrecognized response shape".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_server_stats() -> ServerStatsReport {
        ServerStatsReport {
            service: ServiceSnapshot {
                connections: 2,
                ingests: 7,
                json_requests: 4,
                bin_requests: 3,
                ingest_batches: 1,
                subscriptions: 1,
                sub_events: 9,
                sub_lagged: 2,
                ..ServiceSnapshot::default()
            },
            read_only: false,
            store: StoreStats {
                segments: 1,
                runs: 7,
                bytes: 999,
                recovered_tail_bytes: 0,
                compacted_through: 0,
            },
            open_timestamp_ns: 1_700_000_000_000,
            uptime_secs: 321,
            latency: vec![
                LatencyStat {
                    verb: "ingest".into(),
                    proto: "bin".into(),
                    count: 7,
                    sum_ns: 7_000,
                    max_ns: 2_000,
                    p50_ns: 1_023,
                    p99_ns: 2_000,
                },
                LatencyStat {
                    verb: "stats".into(),
                    proto: "json".into(),
                    count: 1,
                    sum_ns: 400,
                    max_ns: 400,
                    p50_ns: 400,
                    p99_ns: 400,
                },
            ],
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                version: 1,
                features: 1,
                auth: None,
            },
            Request::Hello {
                version: 1,
                features: 1,
                auth: Some("s3cret".into()),
            },
            Request::Export { after: 7, max: 512 },
            Request::Apply { frames: Vec::new() },
            Request::Apply {
                frames: vec![vec![0x00, 0xFF, 0x10], vec![0xAB]],
            },
            Request::Ingest(Record::from_text(
                "fib",
                2,
                Some(7),
                "taskprof-profile v1\nthreads 0\n",
            )),
            Request::IngestBatch(vec![
                Record::from_text("fib", 2, Some(1), "taskprof-profile v1\nthreads 0\n"),
                Record::from_text("fib", 2, None, "taskprof-profile v1\nthreads 0\n"),
            ]),
            Request::QueryTop {
                benchmark: "nqueens".into(),
                threads: 4,
                n: 10,
                window: RunWindow::default(),
            },
            Request::QueryTop {
                benchmark: "nqueens".into(),
                threads: 4,
                n: 10,
                window: RunWindow {
                    last: Some(20),
                    since_ns: None,
                },
            },
            Request::QueryStats {
                benchmark: "fib".into(),
                threads: 2,
                window: RunWindow {
                    last: Some(5),
                    since_ns: Some(1_000_000),
                },
            },
            Request::QueryRegress {
                benchmark: "fib".into(),
                threads: 2,
                profile: ProfilePayload::Text("p".into()),
                threshold: Some(0.25),
                min_runs: Some(3),
                min_delta_ns: None,
                window: RunWindow {
                    last: Some(50),
                    since_ns: None,
                },
            },
            Request::QueryTrend {
                benchmark: "fib".into(),
                threads: 2,
                buckets: 16,
                window: RunWindow {
                    last: None,
                    since_ns: Some(42),
                },
            },
            Request::Stats,
            Request::StatsPrometheus,
            Request::Subscribe { interval_ms: None },
            Request::Subscribe {
                interval_ms: Some(250),
            },
        ];
        for r in reqs {
            let line = r.to_json_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::from_json_line(&line).expect("parse"), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Hello {
                version: 1,
                features: 1,
            },
            Response::Ingest(IngestReceipt {
                first_run_id: 41,
                count: 3,
                bytes: 1234,
                segment: 2,
            }),
            Response::Top(TopReport {
                benchmark: "fib".into(),
                threads: 2,
                runs: 5,
                regions: vec![RegionRow {
                    region: "fib!task".into(),
                    metric: MetricReport {
                        runs: 5,
                        sum_ns: 100,
                        min_ns: 10,
                        max_ns: 30,
                        mean_ns: 20.0,
                    },
                }],
            }),
            Response::Stats(StatsReport {
                benchmark: "fib".into(),
                threads: 2,
                runs: 5,
                total_ns: MetricReport {
                    runs: 5,
                    sum_ns: 500,
                    min_ns: 90,
                    max_ns: 110,
                    mean_ns: 100.0,
                },
                constructs: 3,
                tree_mismatches: 0,
            }),
            Response::Regress(RegressReport {
                regressed: true,
                baseline_runs: 4,
                threshold: 0.25,
                findings: vec![RegressFinding {
                    region: "fib!task".into(),
                    new_ns: 150,
                    mean_ns: 100.0,
                    ratio: 1.5,
                }],
            }),
            Response::Trend(TrendReport {
                benchmark: "fib".into(),
                threads: 2,
                runs: 7,
                buckets: vec![
                    TrendBucket {
                        runs: 4,
                        sum_ns: 400,
                        min_ns: 90,
                        max_ns: 110,
                        first_timestamp_ns: 10,
                        last_timestamp_ns: 13,
                    },
                    TrendBucket {
                        runs: 3,
                        sum_ns: 600,
                        min_ns: 190,
                        max_ns: 210,
                        first_timestamp_ns: 14,
                        last_timestamp_ns: 16,
                    },
                ],
            }),
            Response::ServerStats(sample_server_stats()),
            Response::Prometheus(
                "# HELP profserve_ingests_total Profiles ingested.\n\
                 # TYPE profserve_ingests_total counter\n\
                 profserve_ingests_total 7\n"
                    .into(),
            ),
            Response::Subscribed { interval_ms: 500 },
            Response::Event(Notification::Telemetry {
                t_ns: 123_456,
                stats: sample_server_stats(),
            }),
            Response::Event(Notification::Ingest {
                first_run_id: 41,
                count: 2,
                bytes: 900,
                benchmark: "fib".into(),
                threads: 2,
            }),
            Response::Event(Notification::Lagged { dropped: 17 }),
            Response::ExportChunk {
                frames: vec![vec![1, 2, 3, 254], Vec::new()],
                watermark: 41,
                done: false,
            },
            Response::ExportChunk {
                frames: Vec::new(),
                watermark: 41,
                done: true,
            },
            Response::Applied {
                applied: 12,
                skipped: 3,
                watermark: 41,
            },
            Response::Error {
                kind: ErrorKind::NotFound,
                message: "no such group".into(),
            },
            Response::Error {
                kind: ErrorKind::Unauthorized,
                message: "auth required".into(),
            },
        ];
        for r in resps {
            let line = r.to_json_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::from_json_line(&line).expect("parse"), r);
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reason() {
        assert!(Request::from_json_line("not json").is_err());
        assert!(Request::from_json_line("{}").unwrap_err().contains("cmd"));
        assert!(Request::from_json_line("{\"cmd\":\"NOPE\"}")
            .unwrap_err()
            .contains("NOPE"));
        assert!(
            Request::from_json_line("{\"cmd\":\"INGEST\",\"benchmark\":\"x\"}")
                .unwrap_err()
                .contains("threads")
        );
        assert!(Request::from_json_line(
            "{\"cmd\":\"QUERY\",\"query\":\"nope\",\"benchmark\":\"x\",\"threads\":1}"
        )
        .unwrap_err()
        .contains("nope"));
        assert!(
            Request::from_json_line("{\"cmd\":\"INGEST_BATCH\",\"items\":7}")
                .unwrap_err()
                .contains("items")
        );
        assert!(Request::from_json_line("{\"cmd\":\"APPLY\",\"frames\":7}")
            .unwrap_err()
            .contains("frames"));
        assert!(
            Request::from_json_line("{\"cmd\":\"APPLY\",\"frames\":[\"xy\"]}")
                .unwrap_err()
                .contains("hex")
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [&b""[..], &[0u8][..], &[0x00, 0x7F, 0x80, 0xFF][..]] {
            let s = hex_encode(bytes);
            assert_eq!(hex_decode(&s).expect("decode"), bytes);
        }
        assert_eq!(hex_decode("AbCd").expect("mixed case"), vec![0xAB, 0xCD]);
        assert!(hex_decode("a").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn error_lines_are_typed() {
        let line = error_line(ErrorKind::Overloaded, "permits exhausted");
        let v = crate::json::parse(&line).expect("parse");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let e = v.get("error").expect("error member");
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            ErrorKind::from_tag("bad_request"),
            Some(ErrorKind::BadRequest)
        );
        assert_eq!(ErrorKind::from_tag("???"), None);
    }

    #[test]
    fn binary_record_payloads_rerender_as_text_over_json() {
        // A Record built from an in-memory profile carries the compact
        // binary payload; pushing it through the JSON codec must fall
        // back to the text rendering and still parse as the same profile.
        let profile = Profile::default();
        let r = Record::from_profile("fib", 2, Some(5), &profile);
        assert!(matches!(r.profile, ProfilePayload::Record(_)));
        let line = Request::Ingest(r).to_json_line();
        let back = Request::from_json_line(&line).expect("parse");
        match back {
            Request::Ingest(rec) => {
                assert_eq!(rec.benchmark, "fib");
                let p = rec.profile.decode().expect("decode");
                assert_eq!(p.threads.len(), 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
