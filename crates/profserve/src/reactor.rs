//! Single-threaded readiness reactor for the serving daemon.
//!
//! One thread multiplexes the listener and every live connection over a
//! readiness queue — `epoll` on Linux, `poll(2)` on other unix — with
//! nonblocking sockets and a per-connection state machine (inbound
//! buffer, outbound buffer, sniffed protocol, deadline). No external
//! crates: the two syscalls the reactor needs are declared directly
//! against libc, gated to the platforms whose ABI they match.
//!
//! The state machine preserves the thread-per-connection semantics the
//! integration tests pin down:
//!
//! * first-byte sniffing — `"TPF1"` magic selects binary frames,
//!   anything else is treated as a JSON line;
//! * overload shedding at `max_connections` with a typed `overloaded`
//!   line (written blocking on the freshly accepted socket, bounded by a
//!   short write timeout, then closed);
//! * slow-loris deadlines — a connection that does not complete a
//!   request before `read_timeout` is dropped without a reply and
//!   counted in `timeout_connections`;
//! * bounded requests — an unterminated JSON line beyond
//!   `max_request_bytes` gets a typed `too_large` reply and the
//!   connection closes; an oversized or corrupt binary frame gets a
//!   typed error frame and the connection closes (a broken frame stream
//!   cannot be resynchronized);
//! * per-request panic isolation — `catch_unwind` around the handler,
//!   typed `internal` reply, `panics` counter;
//! * graceful stop — after [`crate::ServerHandle::stop`] each connection
//!   answers at most one more request and then closes once its output
//!   drains; the reactor exits when the table empties;
//! * live subscriptions — a connection that sends `SUBSCRIBE` flips to
//!   push mode: the reactor delivers periodic `telemetry` snapshots and
//!   fans out an `ingest` notification after every stored run. Pushes
//!   are bounded by `subscriber_queue_bytes`; a subscriber that cannot
//!   drain fast enough has events dropped (never buffered without
//!   bound, never blocking ingest) and receives a typed `lagged` notice
//!   once it catches up.

#![cfg(unix)]

use crate::protocol::{error_line, ErrorKind, Notification, Response, WireProtocol};
use crate::server::{
    now_ns, serve_bin_payload, serve_json_line, server_stats_report, Shared, REACTOR_TICK,
};
use crate::wire;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on one `wait` tick so the loop re-checks the stop flag, the
/// deadlines, and due subscription pushes even when no event arrives.
const TICK: Duration = REACTOR_TICK;

/// Upper bound on bytes pulled off one socket per readiness event, so a
/// single fire-hose peer cannot starve the rest of the table. Readiness
/// is level-triggered in both backends, so the remainder re-reports.
const READ_BUDGET: usize = 1 << 20;

// ---------------------------------------------------------------------
// Readiness backends
// ---------------------------------------------------------------------

/// What a backend reports for one file descriptor.
#[derive(Clone, Copy, Debug, Default)]
struct Readiness {
    readable: bool,
    writable: bool,
    /// Error or hangup; treated as readable so the state machine observes
    /// the EOF/reset through `read()`.
    hangup: bool,
}

/// Minimal readiness-queue interface: registration by raw fd, one-shot
/// nothing — level-triggered semantics in both implementations.
trait Poller {
    fn add(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()>;
    fn modify(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()>;
    fn remove(&mut self, fd: RawFd) -> std::io::Result<()>;
    /// Blocks up to `timeout`, appending `(fd, readiness)` pairs.
    fn wait(
        &mut self,
        timeout: Duration,
        events: &mut Vec<(RawFd, Readiness)>,
    ) -> std::io::Result<()>;
}

/// `epoll(7)` backend (Linux). The three syscalls are declared directly;
/// the event struct is packed on x86-64 exactly as the kernel ABI
/// requires.
#[cfg(target_os = "linux")]
mod epoll {
    use super::{RawFd, Readiness};
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(super) struct Epoll {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(super) fn new() -> std::io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, write_interest: bool) -> std::io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | if write_interest { EPOLLOUT } else { 0 },
                data: fd as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    impl super::Poller for Epoll {
        fn add(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, write_interest)
        }

        fn modify(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, write_interest)
        }

        fn remove(&mut self, fd: RawFd) -> std::io::Result<()> {
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        fn wait(
            &mut self,
            timeout: Duration,
            events: &mut Vec<(RawFd, Readiness)>,
        ) -> std::io::Result<()> {
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let fd = ev.data as RawFd;
                events.push((
                    fd,
                    Readiness {
                        readable: bits & EPOLLIN != 0,
                        writable: bits & EPOLLOUT != 0,
                        hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                    },
                ));
            }
            Ok(())
        }
    }
}

/// `poll(2)` backend — portable across unix, and exercised by unit tests
/// on Linux too so the fallback cannot bit-rot.
#[cfg_attr(all(target_os = "linux", not(test)), allow(dead_code))]
mod pollfd {
    use super::{RawFd, Readiness};
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long`, which matches `usize` on every
        // supported unix data model (ILP32 and LP64).
        fn poll(fds: *mut PollFd, nfds: usize, timeout_ms: i32) -> i32;
    }

    #[derive(Default)]
    pub(super) struct Poll {
        interest: Vec<(RawFd, bool)>,
        scratch: Vec<PollFd>,
    }

    impl Poll {
        pub(super) fn new() -> std::io::Result<Self> {
            Ok(Poll::default())
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.interest.iter().position(|&(f, _)| f == fd)
        }
    }

    impl super::Poller for Poll {
        fn add(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()> {
            if self.position(fd).is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.interest.push((fd, write_interest));
            Ok(())
        }

        fn modify(&mut self, fd: RawFd, write_interest: bool) -> std::io::Result<()> {
            match self.position(fd) {
                Some(i) => {
                    self.interest[i].1 = write_interest;
                    Ok(())
                }
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "fd not registered",
                )),
            }
        }

        fn remove(&mut self, fd: RawFd) -> std::io::Result<()> {
            match self.position(fd) {
                Some(i) => {
                    self.interest.swap_remove(i);
                    Ok(())
                }
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "fd not registered",
                )),
            }
        }

        fn wait(
            &mut self,
            timeout: Duration,
            events: &mut Vec<(RawFd, Readiness)>,
        ) -> std::io::Result<()> {
            self.scratch.clear();
            self.scratch
                .extend(self.interest.iter().map(|&(fd, w)| PollFd {
                    fd,
                    events: POLLIN | if w { POLLOUT } else { 0 },
                    revents: 0,
                }));
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { poll(self.scratch.as_mut_ptr(), self.scratch.len(), timeout_ms) };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for pfd in &self.scratch {
                if pfd.revents == 0 {
                    continue;
                }
                events.push((
                    pfd.fd,
                    Readiness {
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    },
                ));
            }
            Ok(())
        }
    }
}

#[cfg(target_os = "linux")]
fn default_poller() -> std::io::Result<impl Poller> {
    epoll::Epoll::new()
}

#[cfg(not(target_os = "linux"))]
fn default_poller() -> std::io::Result<impl Poller> {
    pollfd::Poll::new()
}

// ---------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------

/// Which protocol a connection resolved to (or is still sniffing).
enum Proto {
    /// Awaiting the first bytes.
    Sniff,
    /// JSON lines.
    Json,
    /// TPF1 binary frames.
    Bin,
}

/// Why the current deadline is armed — timing out while *reading* a
/// request is the counted slow-loris case; timing out while draining a
/// reply is a plain write stall and closes silently.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    Read,
    Write,
}

struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet consumed by the protocol state machine.
    buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    proto: Proto,
    deadline: Option<Instant>,
    deadline_kind: DeadlineKind,
    /// Peer closed its write side; serve what is buffered, then close.
    eof: bool,
    /// Stop was observed: answer at most one more request, then close.
    draining: bool,
    /// Close once `out` drains (fatal protocol error, post-stop reply,
    /// or final reply to an EOF'd peer).
    close_after_flush: bool,
    /// Registered for write readiness (kernel buffer was full).
    want_write: bool,
    /// Connection is finished; reap it after the event is processed.
    dead: bool,
    /// `SUBSCRIBE` accepted: telemetry push period.
    sub_interval: Option<Duration>,
    /// When the next telemetry snapshot is due (subscribers only).
    next_push: Instant,
    /// Events shed since the subscriber last kept up; reported in a
    /// `lagged` notice once the queue drains below the cap.
    sub_dropped: u64,
    /// A `HELLO` on this connection presented the server's shared
    /// secret (always false when no secret is configured — the gate is
    /// then never consulted).
    authed: bool,
}

impl Conn {
    fn new(stream: TcpStream, read_timeout: Option<Duration>) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            proto: Proto::Sniff,
            deadline: read_timeout.map(|t| Instant::now() + t),
            deadline_kind: DeadlineKind::Read,
            eof: false,
            draining: false,
            close_after_flush: false,
            want_write: false,
            dead: false,
            sub_interval: None,
            next_push: Instant::now(),
            sub_dropped: 0,
            authed: false,
        }
    }

    fn arm_read_deadline(&mut self, config_read: Option<Duration>) {
        // Subscribers idle by design: the read deadline is a slow-loris
        // guard for request traffic, not for push-mode connections.
        if self.sub_interval.is_some() {
            self.deadline = None;
            return;
        }
        self.deadline = config_read.map(|t| Instant::now() + t);
        self.deadline_kind = DeadlineKind::Read;
    }

    fn arm_write_deadline(&mut self, config_write: Option<Duration>) {
        self.deadline = config_write.map(|t| Instant::now() + t);
        self.deadline_kind = DeadlineKind::Write;
    }
}

// ---------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------

/// Run the readiness loop until stop is observed and every connection
/// has drained.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<()> {
    let poller = default_poller()?;
    run_with(poller, listener, shared)
}

fn run_with<P: Poller>(
    mut poller: P,
    listener: TcpListener,
    shared: Arc<Shared>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let listener_fd = listener.as_raw_fd();
    poller.add(listener_fd, false)?;
    let mut listening = true;

    let mut conns: HashMap<RawFd, Conn> = HashMap::new();
    let mut events: Vec<(RawFd, Readiness)> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];

    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        if stopping {
            if listening {
                let _ = poller.remove(listener_fd);
                listening = false;
            }
            let mut drained: Vec<RawFd> = Vec::new();
            for (&fd, conn) in conns.iter_mut() {
                conn.draining = true;
                if conn.sub_interval.is_some() {
                    // Subscribers have no pending request to answer;
                    // close them as soon as their queue drains.
                    conn.close_after_flush = true;
                    if conn.out_pos >= conn.out.len() {
                        conn.dead = true;
                        drained.push(fd);
                    }
                }
            }
            for fd in drained {
                reap(fd, &mut poller, &mut conns);
            }
            if conns.is_empty() {
                break;
            }
        }

        let timeout = conns
            .values()
            .filter_map(|c| c.deadline)
            .min()
            .map_or(TICK, |d| {
                d.saturating_duration_since(Instant::now()).min(TICK)
            });

        events.clear();
        poller.wait(timeout, &mut events)?;

        for &(fd, readiness) in &events {
            if fd == listener_fd {
                accept_ready(&listener, &mut poller, &mut conns, &shared, stopping);
                continue;
            }
            let Some(conn) = conns.get_mut(&fd) else {
                continue;
            };
            let mut ingests = Vec::new();
            if readiness.writable {
                flush(conn, &mut poller, &shared);
            }
            if (readiness.readable || readiness.hangup) && !conn.dead {
                fill(conn, &mut scratch, shared.config.read_timeout);
                ingests = process(conn, &shared);
                flush(conn, &mut poller, &shared);
            }
            if conn.dead {
                reap(fd, &mut poller, &mut conns);
            }
            for event in &ingests {
                fan_out(&mut conns, &mut poller, &shared, event);
            }
        }

        // Telemetry push sweep: one snapshot is built per due tick and
        // delivered to every subscriber whose period elapsed.
        push_due_telemetry(&mut conns, &mut poller, &shared);

        // Deadline sweep. Draining (post-stop) closures are not
        // slow-loris timeouts — don't count those.
        let now = Instant::now();
        let expired: Vec<RawFd> = conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(&fd, _)| fd)
            .collect();
        for fd in expired {
            let conn = &conns[&fd];
            if conn.deadline_kind == DeadlineKind::Read && !conn.draining {
                shared.counters.timeout();
            }
            reap(fd, &mut poller, &mut conns);
        }
    }
    Ok(())
}

fn reap<P: Poller>(fd: RawFd, poller: &mut P, conns: &mut HashMap<RawFd, Conn>) {
    let _ = poller.remove(fd);
    conns.remove(&fd);
}

/// Drain the accept queue. Sheds beyond the connection cap with a typed
/// `overloaded` line — written on the still-blocking accepted socket
/// under a short timeout so a non-reading peer cannot stall the reactor.
fn accept_ready<P: Poller>(
    listener: &TcpListener,
    poller: &mut P,
    conns: &mut HashMap<RawFd, Conn>,
    shared: &Arc<Shared>,
    stopping: bool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        // Re-check the stop flag per accepted socket: the stop() wake-up
        // connection races the `stopping` snapshot taken at loop top, and
        // must be dropped unanswered — not admitted and counted.
        if stopping || shared.stop.load(Ordering::SeqCst) {
            continue;
        }
        if conns.len() >= shared.config.max_connections {
            shared.counters.shed();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = writeln!(
                stream,
                "{}",
                error_line(
                    ErrorKind::Overloaded,
                    "connection limit reached; retry later"
                )
            );
            continue;
        }
        shared.counters.connection();
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let fd = stream.as_raw_fd();
        if poller.add(fd, false).is_err() {
            continue;
        }
        conns.insert(fd, Conn::new(stream, shared.config.read_timeout));
    }
}

/// Pull everything available (up to the per-event budget) into the
/// connection's inbound buffer. Any arriving bytes restart the
/// slow-loris clock — the deadline bounds the *gap* between bytes, same
/// as the per-call read timeout on the old blocking path.
fn fill(conn: &mut Conn, scratch: &mut [u8], read_timeout: Option<Duration>) {
    let mut pulled = 0usize;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                pulled += n;
                if pulled >= READ_BUDGET {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if pulled > 0 && conn.deadline_kind == DeadlineKind::Read {
        conn.arm_read_deadline(read_timeout);
    }
}

/// Apply connection-level effects of one served request: flip to push
/// mode on an accepted `SUBSCRIBE`, surface an ingest notification for
/// the reactor to fan out.
fn apply_effects(conn: &mut Conn, effects: crate::server::ServeEffects) -> Option<Notification> {
    if let Some(interval) = effects.subscribed {
        conn.sub_interval = Some(interval);
        conn.next_push = Instant::now() + interval;
        // Push-mode connections idle between events by design.
        conn.deadline = None;
    }
    conn.authed |= effects.authed;
    effects.ingested
}

/// Serve one JSON line through the shared core with panic isolation.
/// Returns an ingest notification to fan out, if the request stored runs.
fn serve_json(conn: &mut Conn, shared: &Arc<Shared>, line: &str) -> Option<Notification> {
    let authed = conn.authed;
    let (reply, effects) = match catch_unwind(AssertUnwindSafe(|| {
        serve_json_line(shared, line, true, authed)
    })) {
        Ok(pair) => pair,
        Err(_) => {
            shared.counters.panic();
            (
                error_line(ErrorKind::Internal, "request handler panicked (isolated)"),
                Default::default(),
            )
        }
    };
    conn.out.extend_from_slice(reply.as_bytes());
    conn.out.push(b'\n');
    apply_effects(conn, effects)
}

/// Serve one binary payload through the shared core with panic isolation.
/// Returns an ingest notification to fan out, if the request stored runs.
fn serve_bin(conn: &mut Conn, shared: &Arc<Shared>, payload: &[u8]) -> Option<Notification> {
    let authed = conn.authed;
    let (response, effects) = match catch_unwind(AssertUnwindSafe(|| {
        serve_bin_payload(shared, payload, true, authed)
    })) {
        Ok(pair) => pair,
        Err(_) => {
            shared.counters.panic();
            (
                Response::Error {
                    kind: ErrorKind::Internal,
                    message: "request handler panicked (isolated)".into(),
                },
                Default::default(),
            )
        }
    };
    conn.out
        .extend_from_slice(&wire::frame(&wire::encode_response(&response)));
    apply_effects(conn, effects)
}

/// Advance the connection's protocol state machine over whatever is
/// buffered, appending replies to `out`. Returns the ingest
/// notifications produced by the served requests, for fan-out.
fn process(conn: &mut Conn, shared: &Arc<Shared>) -> Vec<Notification> {
    let mut ingests = Vec::new();
    if conn.dead {
        return ingests;
    }
    let mut served = 0usize;
    loop {
        match conn.proto {
            Proto::Sniff => {
                if conn.buf.is_empty() {
                    if conn.eof {
                        conn.dead = conn.out_pos >= conn.out.len();
                        conn.close_after_flush = true;
                    }
                    return ingests;
                }
                if conn.buf[0] == wire::WIRE_MAGIC[0] {
                    if conn.buf.len() < wire::WIRE_MAGIC.len() && !conn.eof {
                        // Could still be the magic; wait for 4 bytes.
                        return ingests;
                    }
                    if conn.buf.starts_with(&wire::WIRE_MAGIC) {
                        if shared.config.protocols == WireProtocol::Json {
                            refuse(
                                conn,
                                "binary protocol disabled on this server (--proto json)",
                            );
                            break;
                        }
                        conn.buf.drain(..wire::WIRE_MAGIC.len());
                        conn.proto = Proto::Bin;
                        continue;
                    }
                }
                if shared.config.protocols == WireProtocol::Binary {
                    refuse(conn, "json protocol disabled on this server (--proto bin)");
                    break;
                }
                conn.proto = Proto::Json;
            }
            Proto::Json => {
                let Some(newline) = conn.buf.iter().position(|&b| b == b'\n') else {
                    if conn.buf.len() > shared.config.max_request_bytes {
                        shared.counters.error();
                        let reply = error_line(
                            ErrorKind::TooLarge,
                            &format!(
                                "request line exceeds {} bytes; connection closed",
                                shared.config.max_request_bytes
                            ),
                        );
                        conn.out.extend_from_slice(reply.as_bytes());
                        conn.out.push(b'\n');
                        conn.buf.clear();
                        conn.close_after_flush = true;
                        break;
                    }
                    if conn.eof {
                        // EOF with an unterminated trailer: serve it as
                        // the final request, then close.
                        let line = String::from_utf8_lossy(&conn.buf).into_owned();
                        conn.buf.clear();
                        if !line.trim().is_empty() {
                            ingests.extend(serve_json(conn, shared, line.trim_end_matches('\r')));
                            served += 1;
                        }
                        conn.close_after_flush = true;
                        conn.dead = conn.out_pos >= conn.out.len();
                        break;
                    }
                    break;
                };
                let mut line: Vec<u8> = conn.buf.drain(..=newline).collect();
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let line = String::from_utf8_lossy(&line).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                ingests.extend(serve_json(conn, shared, &line));
                served += 1;
                // Load the stop flag directly: stop may land between the
                // loop-top `draining` sweep and this event, and the old
                // blocking path closed after at most one post-stop reply.
                if conn.draining || shared.stop.load(Ordering::SeqCst) {
                    conn.close_after_flush = true;
                    break;
                }
            }
            Proto::Bin => {
                match wire::try_frame(&conn.buf, shared.config.max_request_bytes) {
                    Ok(Some((payload, consumed))) => {
                        conn.buf.drain(..consumed);
                        ingests.extend(serve_bin(conn, shared, &payload));
                        served += 1;
                        if conn.draining || shared.stop.load(Ordering::SeqCst) {
                            conn.close_after_flush = true;
                            break;
                        }
                    }
                    Ok(None) => {
                        if conn.eof {
                            // Torn trailing frame: nothing to answer.
                            conn.close_after_flush = true;
                            conn.dead = conn.out_pos >= conn.out.len();
                        }
                        break;
                    }
                    Err(e) => {
                        // The frame stream cannot be resynchronized:
                        // reply with a typed error frame and close.
                        shared.counters.error();
                        let kind = match e {
                            wire::WireError::FrameTooLarge { .. } => ErrorKind::TooLarge,
                            _ => ErrorKind::BadRequest,
                        };
                        let response = Response::Error {
                            kind,
                            message: e.to_string(),
                        };
                        conn.out
                            .extend_from_slice(&wire::frame(&wire::encode_response(&response)));
                        conn.buf.clear();
                        conn.close_after_flush = true;
                        break;
                    }
                }
            }
        }
    }
    if served > 0 && !conn.close_after_flush {
        // A fresh request window: restart the slow-loris clock.
        conn.arm_read_deadline(shared.config.read_timeout);
    }
    ingests
}

// ---------------------------------------------------------------------
// Subscription pushes
// ---------------------------------------------------------------------

/// Encode one subscription event for the connection's protocol.
fn encode_event(event: &Notification, proto: &Proto) -> Vec<u8> {
    let response = Response::Event(event.clone());
    match proto {
        Proto::Bin => wire::frame(&wire::encode_response(&response)),
        // Sniff cannot happen for a subscriber (SUBSCRIBE resolved the
        // protocol); encode as JSON if it somehow does.
        Proto::Json | Proto::Sniff => {
            let mut line = response.to_json_line().into_bytes();
            line.push(b'\n');
            line
        }
    }
}

/// Queue one event on a subscriber, shedding instead of buffering
/// without bound: if the unflushed queue already exceeds
/// `subscriber_queue_bytes` the event is dropped and counted, and the
/// subscriber gets one `lagged` notice when it next keeps up. Events for
/// non-subscribers are ignored.
fn push_event<P: Poller>(
    conn: &mut Conn,
    poller: &mut P,
    shared: &Arc<Shared>,
    event: &Notification,
) {
    if conn.dead || conn.sub_interval.is_none() || conn.close_after_flush {
        return;
    }
    let queued = conn.out.len() - conn.out_pos;
    if queued > shared.config.subscriber_queue_bytes {
        conn.sub_dropped += 1;
        shared.counters.sub_lag(1);
        return;
    }
    if conn.sub_dropped > 0 {
        let lagged = Notification::Lagged {
            dropped: conn.sub_dropped,
        };
        conn.out
            .extend_from_slice(&encode_event(&lagged, &conn.proto));
        shared.counters.sub_events(1);
        conn.sub_dropped = 0;
    }
    conn.out
        .extend_from_slice(&encode_event(event, &conn.proto));
    shared.counters.sub_events(1);
    flush(conn, poller, shared);
}

/// Deliver one ingest notification to every live subscriber.
fn fan_out<P: Poller>(
    conns: &mut HashMap<RawFd, Conn>,
    poller: &mut P,
    shared: &Arc<Shared>,
    event: &Notification,
) {
    let mut dead: Vec<RawFd> = Vec::new();
    for (&fd, conn) in conns.iter_mut() {
        if conn.sub_interval.is_some() {
            push_event(conn, poller, shared, event);
            if conn.dead {
                dead.push(fd);
            }
        }
    }
    for fd in dead {
        reap(fd, poller, conns);
    }
}

/// Push a telemetry snapshot to every subscriber whose period elapsed.
/// The (store-lock-taking) snapshot is built at most once per sweep, and
/// only when someone is actually due.
fn push_due_telemetry<P: Poller>(
    conns: &mut HashMap<RawFd, Conn>,
    poller: &mut P,
    shared: &Arc<Shared>,
) {
    let now = Instant::now();
    if !conns
        .values()
        .any(|c| c.sub_interval.is_some() && !c.dead && c.next_push <= now)
    {
        return;
    }
    let event = Notification::Telemetry {
        t_ns: now_ns(),
        stats: server_stats_report(shared),
    };
    let mut dead: Vec<RawFd> = Vec::new();
    for (&fd, conn) in conns.iter_mut() {
        let Some(interval) = conn.sub_interval else {
            continue;
        };
        if conn.dead || conn.next_push > now {
            continue;
        }
        push_event(conn, poller, shared, &event);
        conn.next_push = now + interval;
        if conn.dead {
            dead.push(fd);
        }
    }
    for fd in dead {
        reap(fd, poller, conns);
    }
}

/// Write a JSON refusal (readable regardless of what the peer speaks)
/// and close.
fn refuse(conn: &mut Conn, message: &str) {
    let reply = error_line(ErrorKind::BadRequest, message);
    conn.out.extend_from_slice(reply.as_bytes());
    conn.out.push(b'\n');
    conn.buf.clear();
    conn.close_after_flush = true;
}

/// Push buffered output to the kernel; manage write interest and the
/// close-after-flush transition.
fn flush<P: Poller>(conn: &mut Conn, poller: &mut P, shared: &Arc<Shared>) {
    if conn.dead {
        return;
    }
    let fd = conn.stream.as_raw_fd();
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if !conn.want_write {
                    conn.want_write = true;
                    let _ = poller.modify(fd, true);
                }
                conn.arm_write_deadline(shared.config.write_timeout);
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.want_write {
        conn.want_write = false;
        let _ = poller.modify(fd, false);
    }
    if conn.close_after_flush || conn.eof {
        conn.dead = true;
    } else {
        conn.arm_read_deadline(shared.config.read_timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    /// The poll(2) backend must stay healthy even on Linux, where the
    /// epoll backend normally shadows it — drive a tiny serve loop
    /// through it directly.
    #[test]
    fn pollfd_backend_serves_json_and_binary() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dir = std::env::temp_dir().join(format!(
            "taskprof-reactor-poll-{}-{}",
            std::process::id(),
            addr.port()
        ));
        let store = profstore::ProfileStore::open(&dir).expect("store");
        let shared = Arc::new(Shared {
            store: std::sync::RwLock::new(store.into()),
            counters: taskprof_telemetry::ServiceCounters::new(),
            permits: std::sync::atomic::AtomicUsize::new(4),
            stop: std::sync::atomic::AtomicBool::new(false),
            read_only: std::sync::atomic::AtomicBool::new(false),
            config: crate::ServeConfig::default(),
            latency: crate::trace::RequestLatency::default(),
            open_ns: now_ns(),
            started: Instant::now(),
            exported_frames: std::sync::atomic::AtomicU64::new(0),
            applied_frames: std::sync::atomic::AtomicU64::new(0),
        });
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::spawn(move || {
            run_with(pollfd::Poll::new().expect("poll"), listener, loop_shared)
        });

        // JSON line in, JSON line out.
        let mut json = TcpStream::connect(addr).expect("connect");
        json.write_all(b"{\"cmd\":\"STATS\"}\n").expect("write");
        let mut reader = BufReader::new(json.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(
            line.contains("\"ok\":true"),
            "stats over poll backend: {line}"
        );

        // Binary frame in, binary frame out.
        let mut bin = TcpStream::connect(addr).expect("connect");
        bin.write_all(&wire::WIRE_MAGIC).expect("magic");
        let hello = wire::encode_request(&crate::protocol::Request::Hello {
            version: wire::WIRE_VERSION,
            features: wire::FEATURE_BATCH_INGEST,
            auth: None,
        });
        bin.write_all(&wire::frame(&hello)).expect("hello");
        let mut head = [0u8; 4];
        bin.read_exact(&mut head).expect("len");
        let len = u32::from_le_bytes(head) as usize;
        let mut rest = vec![0u8; len + 4];
        bin.read_exact(&mut rest).expect("payload");
        let response = wire::decode_response(&rest[..len]).expect("decode");
        assert!(
            matches!(response, Response::Hello { version: 1, .. }),
            "hello over poll backend: {response:?}"
        );

        shared.stop.store(true, Ordering::SeqCst);
        drop(reader);
        drop(json);
        drop(bin);
        let _ = TcpStream::connect(addr);
        join.thread().unpark();
        join.join().expect("join").expect("reactor result");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
