//! Request tracing: per-(verb, protocol) latency histograms.
//!
//! Every request the daemon serves is timed as a span around the
//! dispatch (`parse → respond → serialize`) and recorded into a
//! [`LatencyHistogram`] keyed by the request verb and the wire protocol
//! it arrived over. Recording is two relaxed atomic adds — safe from the
//! reactor thread, the legacy handler threads, and any future worker
//! pool without locks.
//!
//! The grid is surfaced three ways:
//!
//! * `STATS` — distilled [`LatencyStat`] rows (count/sum/max/p50/p99);
//! * `STATS prometheus` — full cumulative-bucket Prometheus histograms
//!   via [`taskprof_telemetry::latency_to_prometheus`];
//! * the JSONL telemetry exporter — flat `<verb>.<proto>.*` keys via
//!   [`taskprof_telemetry::latency_to_jsonl_line`].

use crate::protocol::{LatencyStat, Request};
use taskprof_telemetry::{HistogramSnapshot, LatencyHistogram};

/// Request verbs the daemon traces, in display order.
pub(crate) const VERBS: [&str; 11] = [
    "hello",
    "ingest",
    "ingest_batch",
    "query_top",
    "query_stats",
    "query_regress",
    "query_trend",
    "stats",
    "subscribe",
    "export",
    "apply",
];

/// Protocol axis of the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReqProto {
    /// JSON lines.
    Json,
    /// TPF1 binary frames.
    Bin,
}

impl ReqProto {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ReqProto::Json => "json",
            ReqProto::Bin => "bin",
        }
    }

    fn index(self) -> usize {
        match self {
            ReqProto::Json => 0,
            ReqProto::Bin => 1,
        }
    }
}

/// Which verb slot a request records under.
pub(crate) fn verb_index(req: &Request) -> usize {
    match req {
        Request::Hello { .. } => 0,
        Request::Ingest(_) => 1,
        Request::IngestBatch(_) => 2,
        Request::QueryTop { .. } => 3,
        Request::QueryStats { .. } => 4,
        Request::QueryRegress { .. } => 5,
        Request::QueryTrend { .. } => 6,
        Request::Stats | Request::StatsPrometheus => 7,
        Request::Subscribe { .. } => 8,
        Request::Export { .. } => 9,
        Request::Apply { .. } => 10,
    }
}

/// The verb × protocol histogram grid. Unparsable requests have no verb
/// and are not traced (they are already counted in `errors`).
#[derive(Debug, Default)]
pub(crate) struct RequestLatency {
    grid: [[LatencyHistogram; 2]; VERBS.len()],
}

impl RequestLatency {
    /// Record one request span.
    pub(crate) fn record(&self, verb: usize, proto: ReqProto, ns: u64) {
        self.grid[verb][proto.index()].record(ns);
    }

    /// Snapshot every non-empty cell as `(verb, proto, histogram)`.
    pub(crate) fn cells(&self) -> Vec<(&'static str, &'static str, HistogramSnapshot)> {
        let mut out = Vec::new();
        for (vi, verb) in VERBS.iter().enumerate() {
            for proto in [ReqProto::Json, ReqProto::Bin] {
                let snap = self.grid[vi][proto.index()].snapshot();
                if !snap.is_empty() {
                    out.push((*verb, proto.name(), snap));
                }
            }
        }
        out
    }

    /// Distill the grid into the `STATS` latency rows.
    pub(crate) fn stats(&self) -> Vec<LatencyStat> {
        self.cells()
            .into_iter()
            .map(|(verb, proto, snap)| LatencyStat {
                verb: verb.to_string(),
                proto: proto.to_string(),
                count: snap.count,
                sum_ns: snap.sum_ns,
                max_ns: snap.max_ns,
                p50_ns: snap.quantile_ns(0.5),
                p99_ns: snap.quantile_ns(0.99),
            })
            .collect()
    }

    /// Full-resolution Prometheus histogram rendering of the grid.
    pub(crate) fn to_prometheus(&self) -> String {
        let series: Vec<(Vec<(String, String)>, HistogramSnapshot)> = self
            .cells()
            .into_iter()
            .map(|(verb, proto, snap)| {
                (
                    vec![
                        ("verb".to_string(), verb.to_string()),
                        ("proto".to_string(), proto.to_string()),
                    ],
                    snap,
                )
            })
            .collect();
        taskprof_telemetry::latency_to_prometheus(
            "profserve_request_latency_ns",
            "Request handling latency by verb and protocol.",
            &series,
        )
    }

    /// Keyed snapshots (`<verb>.<proto>`) for the JSONL exporter.
    pub(crate) fn jsonl_series(&self) -> Vec<(String, HistogramSnapshot)> {
        self.cells()
            .into_iter()
            .map(|(verb, proto, snap)| (format!("{verb}.{proto}"), snap))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_cell() {
        let lat = RequestLatency::default();
        let ingest = verb_index(&Request::Ingest(crate::protocol::Record::from_text(
            "b", 1, None, "x",
        )));
        lat.record(ingest, ReqProto::Bin, 1_000);
        lat.record(ingest, ReqProto::Bin, 2_000);
        lat.record(verb_index(&Request::Stats), ReqProto::Json, 500);
        let stats = lat.stats();
        assert_eq!(stats.len(), 2);
        let row = stats
            .iter()
            .find(|l| l.verb == "ingest" && l.proto == "bin")
            .expect("ingest/bin row");
        assert_eq!(row.count, 2);
        assert_eq!(row.sum_ns, 3_000);
        assert_eq!(row.max_ns, 2_000);
        assert!(row.p50_ns >= 1_000 && row.p50_ns <= 2_047);
        let prom = lat.to_prometheus();
        assert!(prom.contains("profserve_request_latency_ns_bucket"));
        assert!(prom.contains("verb=\"stats\",proto=\"json\""));
        let series = lat.jsonl_series();
        assert!(series.iter().any(|(k, _)| k == "ingest.bin"));
    }

    #[test]
    fn stats_and_prometheus_verbs_cover_every_request() {
        // Every Request variant must map inside the VERBS table.
        let reqs = [
            Request::Hello {
                version: 1,
                features: 0,
                auth: None,
            },
            Request::Stats,
            Request::StatsPrometheus,
            Request::Subscribe { interval_ms: None },
            Request::Export { after: 0, max: 1 },
            Request::Apply { frames: Vec::new() },
        ];
        for r in &reqs {
            assert!(verb_index(r) < VERBS.len());
        }
    }
}
