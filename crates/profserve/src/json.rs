//! A minimal JSON value, parser, and writer.
//!
//! The wire protocol is line-delimited JSON and the build is offline
//! (vendored-only policy, no serde), so this is a small hand-rolled
//! implementation: full string escaping (including `\uXXXX`), exact
//! round-tripping for the full `u64` range (nanosecond epoch timestamps
//! exceed 2^53, so counters ride a dedicated integer variant rather than
//! `f64`), and objects that preserve insertion order so responses
//! serialize byte-stably.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, exact across the full `u64` range —
    /// epoch-nanosecond timestamps do not survive an `f64` round trip.
    UInt(u64),
    /// Any other number (floats, negatives; exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => out.push_str(&format!("{n}")),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact (single-line, no whitespace) serialization: strings escape
/// `"`/`\\`/control characters; non-finite numbers serialize as `null`
/// (the protocol never produces them).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > 64 {
            return Err(self.err("nesting deeper than 64"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        // Plain non-negative integer tokens stay exact (u64); anything
        // with a sign, fraction, or exponent takes the f64 path.
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired (the writer never
                            // emits them); map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string content"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Parse one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = P {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Convenience constructors used by the protocol layer.
impl Json {
    /// An object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn num(n: u64) -> Json {
        Json::UInt(n)
    }

    /// A float value rounded to 4 decimals so responses stay byte-stable
    /// across platforms' float formatting.
    pub fn num_f(n: f64) -> Json {
        Json::Num((n * 10_000.0).round() / 10_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("cmd", Json::str("INGEST")),
            ("threads", Json::num(4)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::Arr(vec![Json::num(1), Json::num(2)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).expect("parse"), v);
    }

    #[test]
    fn strings_with_newlines_and_quotes_round_trip() {
        let profile_text = "taskprof-profile v1\nthreads 1\nname \"weird\\path\"\n";
        let v = Json::obj(vec![("profile", Json::str(profile_text))]);
        let text = v.to_string();
        assert!(!text.contains('\n'), "wire form must be one line: {text}");
        let back = parse(&text).expect("parse");
        assert_eq!(back.get("profile").unwrap().as_str(), Some(profile_text));
    }

    #[test]
    fn control_chars_and_unicode_survive() {
        let nasty = "tab\there \u{1} bell\u{7} λ → 🦀";
        let text = Json::str(nasty).to_string();
        assert_eq!(parse(&text).expect("parse").as_str(), Some(nasty));
    }

    #[test]
    fn numbers_are_exact_integers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(Json::num(1 << 52).to_string(), format!("{}", 1u64 << 52));
        // Epoch-nanosecond territory: beyond 2^53, must stay exact.
        let t_ns = 1_754_640_000_123_456_789u64;
        assert_eq!(Json::num(t_ns).to_string(), t_ns.to_string());
        assert_eq!(parse(&t_ns.to_string()).unwrap().as_u64(), Some(t_ns));
        assert_eq!(
            parse(&u64::MAX.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
