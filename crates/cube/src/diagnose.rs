//! Automated detection of the paper's task performance issues.
//!
//! Section II criticizes manual timeline search ("tedious and time
//! consuming. … a method to locate issues automatically on a full
//! application scale is necessary") and Section III lists the issues the
//! measurements must expose:
//!
//! 1. very small tasks → high management overhead,
//! 2. very large tasks → reduced load-balancing effect,
//! 3. task creation concentrated on few threads → creation bottleneck at
//!    scale,
//!
//! plus the derived symptom the case study hunts: scheduling-point time
//! dominating useful work. This module turns the profile metrics into
//! ranked findings.

use crate::agg::AggProfile;
use crate::query::{region_excl_by_kind, stub_time_under_kind, task_stats};
use pomp::{registry, RegionKind};
use taskprof::{NodeKind, Profile};

/// Tunable thresholds.
#[derive(Clone, Copy, Debug)]
pub struct DiagnoseConfig {
    /// Mean instance time below this flags "tasks too small", ns.
    /// The paper's Table I argument: ~1–10 µs tasks drown in management;
    /// ~150 µs tasks are fine. Default 20 µs.
    pub small_task_ns: u64,
    /// A single instance longer than this fraction of the per-thread wall
    /// time flags "tasks too large" (can no longer balance). Default 0.25.
    pub large_task_wall_fraction: f64,
    /// Creation-time share of (creation + task execution) above this flags
    /// creation overhead. Default 0.25 (the case study measured ~3/4).
    pub creation_share: f64,
    /// Non-task time at scheduling points above this fraction of total
    /// wall flags management/idle dominance. Default 0.3.
    pub idle_fraction: f64,
    /// Gini-style imbalance of per-thread creation counts above this (with
    /// more than one thread) flags a single-creator bottleneck.
    /// Default 0.9 (1.0 = one thread creates everything).
    pub creation_skew: f64,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        Self {
            small_task_ns: 20_000,
            large_task_wall_fraction: 0.25,
            creation_share: 0.25,
            idle_fraction: 0.3,
            creation_skew: 0.9,
        }
    }
}

/// What was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IssueKind {
    /// Section III issue 1: tasks too small, management dominates.
    TasksTooSmall,
    /// Section III issue 2: tasks too large for balancing.
    TasksTooLarge,
    /// Section III issue 3: creation concentrated on few threads.
    CreationBottleneck,
    /// Creation cost rivals task work (the nqueens case-study symptom).
    CreationOverhead,
    /// Scheduling points hold large non-task time (management or idle).
    SchedulingPointsDominate,
}

/// One ranked finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Category.
    pub kind: IssueKind,
    /// 0..1-ish severity used for ranking (how far past the threshold).
    pub severity: f64,
    /// Human-readable explanation with the evidence numbers.
    pub message: String,
}

/// Diagnose a per-thread profile. Findings are sorted by severity.
pub fn diagnose(profile: &Profile, cfg: &DiagnoseConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if profile.threads.is_empty() {
        return findings;
    }
    let agg = AggProfile::from_profile(profile);
    let reg = registry();
    let wall_per_thread = agg.main.stats.sum_ns as f64 / agg.nthreads as f64;

    // Issues 1 & 2: per-construct instance sizes.
    for s in task_stats(&agg) {
        let name = reg.name(s.region);
        if s.instances == 0 {
            continue;
        }
        if (s.mean_ns as u64) < cfg.small_task_ns {
            let severity =
                (cfg.small_task_ns as f64 / s.mean_ns.max(1.0)).log10().min(4.0) / 4.0;
            findings.push(Finding {
                kind: IssueKind::TasksTooSmall,
                severity,
                message: format!(
                    "task '{name}': mean instance time {:.2} µs over {} instances is below \
                     the {:.0} µs granularity threshold — management overhead will dominate \
                     (paper Section III issue 1; consider a cut-off)",
                    s.mean_ns / 1e3,
                    s.instances,
                    cfg.small_task_ns as f64 / 1e3,
                ),
            });
        }
        let max_frac = s.max_ns as f64 / wall_per_thread.max(1.0);
        if max_frac > cfg.large_task_wall_fraction && agg.nthreads > 1 {
            findings.push(Finding {
                kind: IssueKind::TasksTooLarge,
                severity: (max_frac / cfg.large_task_wall_fraction).min(4.0) / 4.0,
                message: format!(
                    "task '{name}': largest instance ({:.2} ms) is {:.0}% of a thread's \
                     wall time — too coarse to balance (paper Section III issue 2)",
                    s.max_ns as f64 / 1e6,
                    100.0 * max_frac,
                ),
            });
        }
    }

    // Creation overhead: exclusive creation time vs. task execution.
    let creation = region_excl_by_kind(&agg, RegionKind::TaskCreate).max(0) as f64;
    let task_time: f64 = agg.task_trees.iter().map(|t| t.stats.sum_ns as f64).sum();
    if task_time > 0.0 {
        let share = creation / (creation + task_time);
        if share > cfg.creation_share {
            findings.push(Finding {
                kind: IssueKind::CreationOverhead,
                severity: share,
                message: format!(
                    "task creation costs {:.0}% of (creation + task execution) — creating \
                     tasks costs nearly as much as running them (Section VI case study; \
                     create fewer, larger tasks)",
                    100.0 * share,
                ),
            });
        }
    }

    // Scheduling-point dominance: non-stub time in barriers + taskwaits.
    let sched_excl = (region_excl_by_kind(&agg, RegionKind::ImplicitBarrier)
        + region_excl_by_kind(&agg, RegionKind::ExplicitBarrier)
        + region_excl_by_kind(&agg, RegionKind::Taskwait))
    .max(0) as f64;
    let stub = (stub_time_under_kind(&agg, RegionKind::ImplicitBarrier)
        + stub_time_under_kind(&agg, RegionKind::ExplicitBarrier)) as f64;
    let _ = stub; // exclusive times already exclude stub children
    let total_wall = agg.main.stats.sum_ns as f64;
    if total_wall > 0.0 {
        let frac = sched_excl / total_wall;
        if frac > cfg.idle_fraction {
            findings.push(Finding {
                kind: IssueKind::SchedulingPointsDominate,
                severity: frac,
                message: format!(
                    "{:.0}% of total thread time sits in scheduling points without \
                     executing tasks — task management and/or starvation (compare runs \
                     across thread counts to distinguish, paper Section VII)",
                    100.0 * frac,
                ),
            });
        }
    }

    // Creation bottleneck: skew of per-thread creation visits.
    if profile.num_threads() > 1 {
        let per_thread: Vec<u64> = profile
            .threads
            .iter()
            .map(|t| {
                let mut v = 0;
                t.main.walk(&mut |_, n| {
                    if let NodeKind::Region(r) = n.kind {
                        if reg.kind(r) == RegionKind::TaskCreate {
                            v += n.stats.visits;
                        }
                    }
                });
                // Creation can also happen inside tasks.
                for tree in &t.task_trees {
                    tree.walk(&mut |_, n| {
                        if let NodeKind::Region(r) = n.kind {
                            if reg.kind(r) == RegionKind::TaskCreate {
                                v += n.stats.visits;
                            }
                        }
                    });
                }
                v
            })
            .collect();
        let total: u64 = per_thread.iter().sum();
        let max = per_thread.iter().copied().max().unwrap_or(0);
        if total > 0 {
            // Skew: how far the busiest creator is above a fair share.
            let fair = total as f64 / per_thread.len() as f64;
            let skew = (max as f64 - fair) / (total as f64 - fair).max(1.0);
            if skew > cfg.creation_skew && total as f64 > fair + 1.0 {
                findings.push(Finding {
                    kind: IssueKind::CreationBottleneck,
                    severity: skew,
                    message: format!(
                        "one thread performed {max} of {total} task creations — a serial \
                         creation bottleneck at scale (paper Section III issue 3; create \
                         tasks from multiple threads or recursively)",
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| b.severity.total_cmp(&a.severity));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionId, TaskIdAllocator};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn regs() -> (RegionId, RegionId, RegionId, RegionId) {
        let reg = registry();
        (
            reg.register("dg-par", RegionKind::Parallel, "t", 0),
            reg.register("dg-task", RegionKind::Task, "t", 0),
            reg.register("dg-create", RegionKind::TaskCreate, "t", 0),
            reg.register("dg-bar", RegionKind::ImplicitBarrier, "t", 0),
        )
    }

    fn has(findings: &[Finding], kind: IssueKind) -> bool {
        findings.iter().any(|f| f.kind == kind)
    }

    #[test]
    fn detects_small_tasks_and_creation_overhead() {
        let (par, task, create, barrier) = regs();
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        for tid in 0..2 {
            team.apply(tid, Event::Enter(barrier));
        }
        // Thread 0 creates 100 tasks (1 µs each creation) that run 200 ns
        // each on thread 1.
        for _ in 0..100 {
            let id = ids.alloc();
            team.apply(0, Event::CreateBegin { create, task_region: task, id })
                .advance(1_000)
                .apply(0, Event::CreateEnd { create, id })
                .apply(1, Event::TaskBegin { region: task, id })
                .advance(200)
                .apply(1, Event::TaskEnd { region: task, id });
        }
        for tid in 0..2 {
            team.apply(tid, Event::Exit(barrier));
        }
        let profile = team.finish();
        let findings = diagnose(&profile, &DiagnoseConfig::default());
        assert!(has(&findings, IssueKind::TasksTooSmall), "{findings:#?}");
        assert!(has(&findings, IssueKind::CreationOverhead), "{findings:#?}");
        assert!(has(&findings, IssueKind::CreationBottleneck), "{findings:#?}");
        assert!(
            has(&findings, IssueKind::SchedulingPointsDominate),
            "thread 1 idles while thread 0 creates: {findings:#?}"
        );
        // Ranked by severity.
        for w in findings.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }

    #[test]
    fn detects_large_tasks() {
        let (par, task, _create, barrier) = regs();
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        for tid in 0..2 {
            team.apply(tid, Event::Enter(barrier));
        }
        // One giant task (80 ms) and one small; thread 1 idles.
        let a = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id: a })
            .advance(80_000_000)
            .apply(0, Event::TaskEnd { region: task, id: a });
        let b = ids.alloc();
        team.apply(1, Event::TaskBegin { region: task, id: b })
            .advance(1_000_000)
            .apply(1, Event::TaskEnd { region: task, id: b });
        for tid in 0..2 {
            team.apply(tid, Event::Exit(barrier));
        }
        let profile = team.finish();
        let findings = diagnose(&profile, &DiagnoseConfig::default());
        assert!(has(&findings, IssueKind::TasksTooLarge), "{findings:#?}");
        assert!(!has(&findings, IssueKind::TasksTooSmall));
    }

    #[test]
    fn healthy_profile_yields_no_findings() {
        let (par, task, _create, barrier) = regs();
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        for tid in 0..2 {
            team.apply(tid, Event::Enter(barrier));
        }
        // Both threads run a balanced set of 100 µs tasks back-to-back.
        for _ in 0..8 {
            for tid in 0..2 {
                let id = ids.alloc();
                team.apply(tid, Event::TaskBegin { region: task, id });
            }
            team.advance(100_000);
            // End both tasks (each thread has exactly one running).
            let n = ids.allocated();
            team.apply(0, Event::TaskEnd { region: task, id: pomp::TaskId::from_raw(n - 1).unwrap() });
            team.apply(1, Event::TaskEnd { region: task, id: pomp::TaskId::from_raw(n).unwrap() });
        }
        for tid in 0..2 {
            team.apply(tid, Event::Exit(barrier));
        }
        let profile = team.finish();
        let findings = diagnose(&profile, &DiagnoseConfig::default());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn empty_profile_is_silent() {
        let findings = diagnose(&Profile::default(), &DiagnoseConfig::default());
        assert!(findings.is_empty());
    }
}
