//! Flat CSV export of profiles (for spreadsheets / plotting scripts).

use crate::agg::AggProfile;
use pomp::registry;
use taskprof::{NodeKind, SnapNode};

/// One exported row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsvRow {
    /// Slash-separated call path of node labels.
    pub path: String,
    /// Node category: `region`, `stub`, or `param`.
    pub category: &'static str,
    /// Visits.
    pub visits: u64,
    /// Inclusive time, ns.
    pub incl_ns: u64,
    /// Exclusive time, ns (signed; negative only under the creating-node
    /// ablation).
    pub excl_ns: i64,
    /// Recorded samples.
    pub samples: u64,
    /// Min sample, ns (0 when no samples).
    pub min_ns: u64,
    /// Max sample, ns.
    pub max_ns: u64,
}

fn label(kind: NodeKind) -> String {
    let reg = registry();
    match kind {
        NodeKind::Region(r) => reg.name(r),
        NodeKind::Stub(r) => format!("stub:{}", reg.name(r)),
        NodeKind::Param(p, v) => format!("{}={v}", reg.param_name(p)),
        NodeKind::Truncated => "<truncated>".to_string(),
    }
}

fn category(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Region(_) => "region",
        NodeKind::Stub(_) => "stub",
        NodeKind::Param(..) => "param",
        NodeKind::Truncated => "truncated",
    }
}

fn rows_of(tree: &SnapNode, prefix: &str, out: &mut Vec<CsvRow>) {
    let path = if prefix.is_empty() {
        label(tree.kind)
    } else {
        format!("{prefix}/{}", label(tree.kind))
    };
    out.push(CsvRow {
        path: path.clone(),
        category: category(tree.kind),
        visits: tree.stats.visits,
        incl_ns: tree.stats.sum_ns,
        excl_ns: tree.exclusive_ns(),
        samples: tree.stats.samples,
        min_ns: tree.stats.min().unwrap_or(0),
        max_ns: tree.stats.max_ns,
    });
    for c in &tree.children {
        rows_of(c, &path, out);
    }
}

/// Flatten an aggregated profile into rows.
pub fn rows(p: &AggProfile) -> Vec<CsvRow> {
    let mut out = Vec::new();
    rows_of(&p.main, "", &mut out);
    for t in &p.task_trees {
        rows_of(t, "<tasks>", &mut out);
    }
    out
}

/// Render an aggregated profile as CSV text (header included). Fields with
/// commas or quotes are quoted per RFC 4180.
pub fn to_csv(p: &AggProfile) -> String {
    let mut s = String::from("path,category,visits,incl_ns,excl_ns,samples,min_ns,max_ns\n");
    for r in rows(p) {
        let path = if r.path.contains(',') || r.path.contains('"') {
            format!("\"{}\"", r.path.replace('"', "\"\""))
        } else {
            r.path.clone()
        };
        s.push_str(&format!(
            "{path},{},{},{},{},{},{},{}\n",
            r.category, r.visits, r.incl_ns, r.excl_ns, r.samples, r.min_ns, r.max_ns
        ));
    }
    s
}

/// Render an aggregated profile as a Graphviz DOT graph: the main tree
/// and every task tree as separate components, stub nodes dashed, node
/// labels carrying inclusive/exclusive times and visits.
pub fn to_dot(p: &AggProfile) -> String {
    use std::fmt::Write;
    let mut out = String::from("digraph profile {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    let mut counter = 0usize;

    fn esc_dot(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    fn emit(
        out: &mut String,
        node: &SnapNode,
        counter: &mut usize,
        parent: Option<usize>,
    ) {
        let my = *counter;
        *counter += 1;
        let style = match node.kind {
            NodeKind::Stub(_) => ", style=dashed",
            NodeKind::Param(..) => ", style=dotted",
            NodeKind::Truncated => ", style=dotted",
            NodeKind::Region(_) => "",
        };
        let _ = writeln!(
            out,
            "  n{my} [label=\"{}\\nincl {} excl {} visits {}\"{}];",
            esc_dot(&label(node.kind)),
            crate::format_ns(node.stats.sum_ns),
            node.exclusive_ns(),
            node.stats.visits,
            style
        );
        if let Some(p) = parent {
            let _ = writeln!(out, "  n{p} -> n{my};");
        }
        for c in &node.children {
            emit(out, c, counter, Some(my));
        }
    }

    emit(&mut out, &p.main, &mut counter, None);
    for t in &p.task_trees {
        emit(&mut out, t, &mut counter, None);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};
    use taskprof::{replay, AssignPolicy, Event, Profile};

    #[test]
    fn dot_export_contains_nodes_edges_and_stub_style() {
        let reg = registry();
        let par = reg.register("dot-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("dot-task", RegionKind::Task, "t", 0);
        let barrier = reg.register("dot-bar", RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id },
                Event::Advance(10),
                Event::TaskEnd { region: task, id },
                Event::Exit(barrier),
            ],
        );
        let p = crate::AggProfile::from_profile(&Profile { threads: vec![snap] });
        let dot = to_dot(&p);
        assert!(dot.starts_with("digraph profile {"));
        assert!(dot.contains("dot-par"));
        assert!(dot.contains("stub:dot-task"));
        assert!(dot.contains("style=dashed"), "stub must be dashed");
        assert!(dot.contains("n0 -> n1;"), "tree edges present");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn csv_contains_all_nodes_with_paths() {
        let reg = registry();
        let par = reg.register("e-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("e-task", RegionKind::Task, "t", 0);
        let barrier = reg.register("e-bar", RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id },
                Event::Advance(10),
                Event::TaskEnd { region: task, id },
                Event::Exit(barrier),
            ],
        );
        let p = crate::AggProfile::from_profile(&Profile { threads: vec![snap] });
        let csv = to_csv(&p);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "path,category,visits,incl_ns,excl_ns,samples,min_ns,max_ns"
        );
        assert!(csv.contains("e-par/e-bar,region"));
        assert!(csv.contains("e-par/e-bar/stub:e-task,stub"));
        assert!(csv.contains("<tasks>/e-task,region,1,10,10,1,10,10"));
    }

    #[test]
    fn csv_quotes_awkward_names() {
        let reg = registry();
        let par = reg.register("e2,par", RegionKind::Parallel, "t", 0);
        let snap = replay(par, AssignPolicy::Executing, [Event::Advance(1)]);
        let p = crate::AggProfile::from_profile(&Profile { threads: vec![snap] });
        let csv = to_csv(&p);
        assert!(csv.contains("\"e2,par\""), "{csv}");
    }
}
