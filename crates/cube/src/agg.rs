//! Cross-thread aggregation of profiles.

use taskprof::{Profile, SnapNode, Stats};

/// Structurally merge several snapshot trees (same root identity assumed):
/// statistics are folded, children matched by node identity recursively.
pub fn merge_nodes(nodes: &[&SnapNode]) -> SnapNode {
    let first = nodes.first().expect("merge_nodes on empty slice");
    let mut out = SnapNode {
        kind: first.kind,
        stats: Stats::new(),
        children: Vec::new(),
    };
    for n in nodes {
        debug_assert_eq!(n.kind, out.kind, "merging structurally different trees");
        out.stats.merge(&n.stats);
    }
    // Children in first-appearance order across all inputs.
    let mut order: Vec<taskprof::NodeKind> = Vec::new();
    for n in nodes {
        for c in &n.children {
            if !order.contains(&c.kind) {
                order.push(c.kind);
            }
        }
    }
    for kind in order {
        let group: Vec<&SnapNode> = nodes
            .iter()
            .flat_map(|n| n.children.iter().filter(|c| c.kind == kind))
            .collect();
        out.children.push(merge_nodes(&group));
    }
    out
}

/// A profile aggregated over all team threads.
#[derive(Clone, Debug)]
pub struct AggProfile {
    /// Team size.
    pub nthreads: usize,
    /// Merged implicit-task (main) tree.
    pub main: SnapNode,
    /// Merged per-construct task trees.
    pub task_trees: Vec<SnapNode>,
    /// Maximum concurrently live instance trees over all threads
    /// (paper Table II).
    pub max_live_trees: usize,
    /// Total instances shed to counting-only across all threads (overload
    /// shedding under a live-tree cap).
    pub shed_instances: u64,
    /// Total task instances force-closed after a panic/abort, summed over
    /// the merged trees.
    pub aborted_instances: u64,
    /// Self-healing diagnostics collected at measurement finish, tagged by
    /// thread id.
    pub diagnostics: Vec<(usize, String)>,
}

impl AggProfile {
    /// Aggregate a per-thread profile.
    pub fn from_profile(p: &Profile) -> Self {
        assert!(!p.threads.is_empty(), "empty profile");
        let mains: Vec<&SnapNode> = p.threads.iter().map(|t| &t.main).collect();
        let main = merge_nodes(&mains);
        // Group task trees by construct across threads.
        let mut kinds: Vec<taskprof::NodeKind> = Vec::new();
        for t in &p.threads {
            for tree in &t.task_trees {
                if !kinds.contains(&tree.kind) {
                    kinds.push(tree.kind);
                }
            }
        }
        let task_trees = kinds
            .into_iter()
            .map(|kind| {
                let group: Vec<&SnapNode> = p
                    .threads
                    .iter()
                    .flat_map(|t| t.task_trees.iter().filter(|tree| tree.kind == kind))
                    .collect();
                merge_nodes(&group)
            })
            .collect();
        Self {
            nthreads: p.num_threads(),
            main,
            task_trees,
            max_live_trees: p.max_live_trees(),
            shed_instances: p.shed_instances(),
            aborted_instances: p.aborted_instances(),
            diagnostics: p
                .diagnostics()
                .into_iter()
                .map(|(tid, d)| (tid, d.to_string()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::RegionId;
    use taskprof::NodeKind;

    fn node(kind: NodeKind, sum: u64, children: Vec<SnapNode>) -> SnapNode {
        let mut stats = Stats::new();
        stats.add_visit();
        stats.record(sum);
        SnapNode {
            kind,
            stats,
            children,
        }
    }

    #[test]
    fn merge_sums_and_unions_children() {
        let r = |i| NodeKind::Region(RegionId(i));
        let a = node(r(0), 10, vec![node(r(1), 3, vec![]), node(r(2), 4, vec![])]);
        let b = node(r(0), 20, vec![node(r(2), 6, vec![]), node(r(3), 1, vec![])]);
        let m = merge_nodes(&[&a, &b]);
        assert_eq!(m.stats.sum_ns, 30);
        assert_eq!(m.stats.visits, 2);
        assert_eq!(m.children.len(), 3);
        assert_eq!(m.child(r(2)).unwrap().stats.sum_ns, 10);
        assert_eq!(m.child(r(1)).unwrap().stats.sum_ns, 3);
        assert_eq!(m.stats.min_ns, 10);
        assert_eq!(m.stats.max_ns, 20);
    }

    #[test]
    fn merge_preserves_nesting() {
        let r = |i| NodeKind::Region(RegionId(i));
        let a = node(r(0), 10, vec![node(r(1), 5, vec![node(r(2), 2, vec![])])]);
        let b = node(r(0), 10, vec![node(r(1), 5, vec![node(r(2), 3, vec![])])]);
        let m = merge_nodes(&[&a, &b]);
        let c = m.child(r(1)).unwrap().child(r(2)).unwrap();
        assert_eq!(c.stats.sum_ns, 5);
    }
}
