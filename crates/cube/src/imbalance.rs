//! Per-thread load view.
//!
//! The paper's Section I motivation: call-path profiles "can help detect
//! idle times of threads and measure the amount of work each thread
//! performs". This module extracts exactly that from a per-thread
//! profile: how much of each thread's wall time went to task execution,
//! worksharing, scheduling-point idling, and everything else.

use pomp::{registry, RegionKind};
use std::fmt::Write as _;
use taskprof::{NodeKind, Profile, SnapNode};

/// One thread's load decomposition (all values in ns).
#[derive(Clone, Copy, Debug)]
pub struct ThreadLoad {
    /// Team-local thread id.
    pub tid: usize,
    /// Total wall time of the thread's parallel region.
    pub wall_ns: u64,
    /// Time executing explicit task fragments (sum of stub nodes).
    pub task_exec_ns: u64,
    /// Time inside worksharing loops.
    pub workshare_ns: u64,
    /// Non-executing time at scheduling points (barrier/taskwait
    /// exclusive remainders): management and/or idling.
    pub idle_ns: u64,
}

impl ThreadLoad {
    /// Useful work: tasks + worksharing.
    pub fn work_ns(&self) -> u64 {
        self.task_exec_ns + self.workshare_ns
    }
}

fn sum_by(node: &SnapNode, f: &impl Fn(&SnapNode) -> u64) -> u64 {
    let mut total = 0;
    node.walk(&mut |_, n| total += f(n));
    total
}

/// Decompose every thread's time.
pub fn thread_loads(p: &Profile) -> Vec<ThreadLoad> {
    let reg = registry();
    p.threads
        .iter()
        .map(|t| {
            let task_exec_ns = sum_by(&t.main, &|n| match n.kind {
                NodeKind::Stub(_) => n.stats.sum_ns,
                _ => 0,
            });
            let workshare_ns = sum_by(&t.main, &|n| match n.kind {
                NodeKind::Region(r) if reg.kind(r) == RegionKind::Workshare => n.stats.sum_ns,
                _ => 0,
            });
            let idle_ns = sum_by(&t.main, &|n| match n.kind {
                NodeKind::Region(r)
                    if matches!(
                        reg.kind(r),
                        RegionKind::ImplicitBarrier
                            | RegionKind::ExplicitBarrier
                            | RegionKind::Taskwait
                    ) =>
                {
                    n.exclusive_ns().max(0) as u64
                }
                _ => 0,
            });
            ThreadLoad {
                tid: t.tid,
                wall_ns: t.main.stats.sum_ns,
                task_exec_ns,
                workshare_ns,
                idle_ns,
            }
        })
        .collect()
}

/// Load-imbalance factor: max thread work over mean thread work
/// (1.0 = perfectly balanced; 0.0 when nobody did any work).
pub fn imbalance_factor(loads: &[ThreadLoad]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let works: Vec<f64> = loads.iter().map(|l| l.work_ns() as f64).collect();
    let mean = works.iter().sum::<f64>() / works.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    works.iter().fold(0.0f64, |a, &b| a.max(b)) / mean
}

/// Render the per-thread table.
pub fn render_loads(loads: &[ThreadLoad]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "tid", "wall", "task exec", "workshare", "sched idle", "work%"
    );
    for l in loads {
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>12} {:>12} {:>12} {:>6.1}%",
            l.tid,
            crate::format_ns(l.wall_ns),
            crate::format_ns(l.task_exec_ns),
            crate::format_ns(l.workshare_ns),
            crate::format_ns(l.idle_ns),
            100.0 * l.work_ns() as f64 / l.wall_ns.max(1) as f64,
        );
    }
    let _ = writeln!(out, "imbalance factor (max/mean work): {:.2}", imbalance_factor(loads));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionId, TaskIdAllocator, TaskRef};
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn regs() -> (RegionId, RegionId, RegionId) {
        let reg = registry();
        (
            reg.register("im-par", RegionKind::Parallel, "t", 0),
            reg.register("im-task", RegionKind::Task, "t", 0),
            reg.register("im-bar", RegionKind::ImplicitBarrier, "t", 0),
        )
    }

    #[test]
    fn detects_perfect_balance_and_skew() {
        let (par, task, bar) = regs();
        let ids = TaskIdAllocator::new();
        // Thread 0 runs 90 ns of tasks, thread 1 runs 10 ns then idles.
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        team.apply(0, Event::Enter(bar)).apply(1, Event::Enter(bar));
        let a = ids.alloc();
        team.apply(0, Event::TaskBegin { region: task, id: a })
            .advance(90)
            .apply(0, Event::TaskEnd { region: task, id: a });
        let b = ids.alloc();
        team.apply(1, Event::TaskBegin { region: task, id: b });
        // Only 10ns of work for thread 1; it began at t=90 though — use
        // switch bookkeeping: end at 100.
        team.advance(10)
            .apply(1, Event::TaskEnd { region: task, id: b })
            .apply(0, Event::Exit(bar))
            .apply(1, Event::Exit(bar));
        let p = team.finish();
        let loads = thread_loads(&p);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].task_exec_ns, 90);
        assert_eq!(loads[1].task_exec_ns, 10);
        // Thread 1 idled in the barrier: wall 100, task 10.
        assert_eq!(loads[1].idle_ns, 90);
        let f = imbalance_factor(&loads);
        assert!((f - 1.8).abs() < 1e-9, "factor {f}");
        let table = render_loads(&loads);
        assert!(table.contains("imbalance factor"));
        assert!(table.contains("90ns"));
    }

    #[test]
    fn empty_profile_is_safe() {
        assert_eq!(imbalance_factor(&[]), 0.0);
        let loads = thread_loads(&Profile::default());
        assert!(loads.is_empty());
    }

    #[test]
    fn pure_idle_profile_has_zero_factor() {
        let (par, _, bar) = regs();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        team.apply(0, Event::Enter(bar))
            .apply(1, Event::Enter(bar))
            .advance(50)
            .apply(0, Event::Exit(bar))
            .apply(1, Event::Exit(bar));
        // Avoid unused-import warning paths.
        let _ = TaskRef::Implicit;
        let p = team.finish();
        let loads = thread_loads(&p);
        assert_eq!(imbalance_factor(&loads), 0.0);
        assert_eq!(loads[0].idle_ns, 50);
    }
}
