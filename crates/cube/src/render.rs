//! ASCII rendering of call-path profiles (the CUBE view of paper Fig. 5).

use crate::agg::AggProfile;
use pomp::{registry, ParamId, RegionId};
use std::fmt::Write as _;
use taskprof::{NodeKind, SnapNode};

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct RenderOpts {
    /// Show exclusive times next to inclusive.
    pub exclusive: bool,
    /// Show visit counts.
    pub visits: bool,
    /// Show min/mean/max of sampled durations.
    pub stats: bool,
    /// Hide nodes whose inclusive time is below this many ns.
    pub min_time_ns: u64,
}

impl Default for RenderOpts {
    fn default() -> Self {
        Self {
            exclusive: true,
            visits: true,
            stats: false,
            min_time_ns: 0,
        }
    }
}

/// Format nanoseconds with an adaptive unit (`1.49µs`, `113.2s`, ...).
pub fn format_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}µs", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn kind_label(kind: NodeKind) -> String {
    let reg = registry();
    match kind {
        NodeKind::Region(r) => {
            let info = reg.info(r);
            format!("{} [{}]", info.name, info.kind.label())
        }
        NodeKind::Stub(r) => format!("task {} (stub)", region_name(r)),
        NodeKind::Param(p, v) => format!("{} = {v}", param_name(p)),
        NodeKind::Truncated => "<truncated below depth limit>".to_string(),
    }
}

fn region_name(r: RegionId) -> String {
    registry().name(r)
}

fn param_name(p: ParamId) -> String {
    registry().param_name(p)
}

fn render_node(out: &mut String, node: &SnapNode, prefix: &str, last: bool, root: bool, o: &RenderOpts) {
    if node.stats.sum_ns < o.min_time_ns && !root {
        return;
    }
    let branch = if root {
        ""
    } else if last {
        "└─ "
    } else {
        "├─ "
    };
    let mut line = format!("{prefix}{branch}{}", kind_label(node.kind));
    let _ = write!(line, "  incl {}", format_ns(node.stats.sum_ns));
    if o.exclusive {
        let e = node.exclusive_ns();
        let _ = if e < 0 {
            write!(line, "  excl -{}", format_ns(e.unsigned_abs()))
        } else {
            write!(line, "  excl {}", format_ns(e as u64))
        };
    }
    if o.visits {
        let _ = write!(line, "  visits {}", node.stats.visits);
    }
    if o.stats && node.stats.samples > 0 {
        let _ = write!(
            line,
            "  min {} mean {} max {}",
            format_ns(node.stats.min().unwrap_or(0)),
            format_ns(node.stats.mean_ns() as u64),
            format_ns(node.stats.max_ns),
        );
    }
    out.push_str(&line);
    out.push('\n');
    let child_prefix = if root {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    let visible: Vec<&SnapNode> = node
        .children
        .iter()
        .filter(|c| c.stats.sum_ns >= o.min_time_ns)
        .collect();
    for (i, c) in visible.iter().enumerate() {
        render_node(out, c, &child_prefix, i + 1 == visible.len(), false, o);
    }
}

/// Render one snapshot tree.
pub fn render_tree(tree: &SnapNode, opts: &RenderOpts) -> String {
    let mut out = String::new();
    render_node(&mut out, tree, "", true, true, opts);
    out
}

/// Render a whole aggregated profile: the main tree followed by every task
/// tree (which sit "beside the main tree", paper Section IV-B4).
pub fn render_profile(p: &AggProfile, opts: &RenderOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== main tree (implicit tasks, {} thread{}) ===",
        p.nthreads,
        if p.nthreads == 1 { "" } else { "s" }
    );
    out.push_str(&render_tree(&p.main, opts));
    for t in &p.task_trees {
        let aborted = if t.stats.aborted > 0 {
            format!(", aborted {}", t.stats.aborted)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "=== task tree: {} (instances {}, mean {}{aborted}) ===",
            kind_label(t.kind),
            t.stats.samples,
            format_ns(t.stats.mean_ns() as u64),
        );
        out.push_str(&render_tree(t, opts));
    }
    let _ = writeln!(out, "max concurrent task trees per thread: {}", p.max_live_trees);
    if p.shed_instances > 0 {
        let _ = writeln!(
            out,
            "instances shed to counting-only (live-tree cap): {}",
            p.shed_instances
        );
    }
    if p.aborted_instances > 0 {
        let _ = writeln!(out, "aborted task instances: {}", p.aborted_instances);
    }
    for (tid, d) in &p.diagnostics {
        let _ = writeln!(out, "diagnostic [thread {tid}]: {d}");
    }
    out
}

/// Render a live telemetry snapshot as a compact ASCII dashboard — the
/// observability companion of [`render_profile`]. `elapsed_ns` (when
/// known) turns the perturbation estimate into an overhead percentage.
pub fn render_telemetry(s: &taskprof_telemetry::TelemetrySnapshot, elapsed_ns: Option<u64>) -> String {
    use pomp::EventClass;
    let mut out = String::new();
    let _ = writeln!(out, "=== session telemetry ===");
    let _ = writeln!(
        out,
        "tasks: created {} completed {} aborted {} shed {} in-flight {}",
        s.tasks_created,
        s.tasks_completed,
        s.tasks_aborted,
        s.tasks_shed,
        s.tasks_in_flight()
    );
    let _ = writeln!(
        out,
        "fragments: {} executed, stub time {}",
        s.fragments,
        format_ns(s.stub_time_ns)
    );
    let _ = writeln!(
        out,
        "live instance trees: {} (per-thread high-water mark {})",
        s.live_trees, s.live_trees_hwm
    );
    let _ = writeln!(
        out,
        "threads active: {}  handoff stack depth: {}  spare arenas: {}",
        s.threads_active, s.handoff_depth, s.spare_arenas
    );
    let _ = writeln!(
        out,
        "arenas: {} recycled, {} freshly allocated",
        s.arenas_recycled, s.arenas_allocated
    );
    let _ = writeln!(out, "events ({} total):", s.total_events());
    for class in EventClass::ALL {
        let n = s.events[class.index()];
        if n == 0 {
            continue;
        }
        let cost = match s.per_event_cost_ns(class) {
            Some(c) => format!("  ~{} each ({} sampled)", format_ns(c as u64), s.perturb_samples[class.index()]),
            None => String::new(),
        };
        let _ = writeln!(out, "  {:<12} {n}{cost}", class.label());
    }
    let overhead = s.estimated_overhead_ns();
    match elapsed_ns.and_then(|e| s.estimated_overhead_ratio(e)) {
        Some(ratio) => {
            let _ = writeln!(
                out,
                "estimated measurement perturbation: {} ({:.3}% of {})",
                format_ns(overhead as u64),
                ratio * 100.0,
                format_ns(elapsed_ns.unwrap_or(0)),
            );
        }
        None => {
            let _ = writeln!(
                out,
                "estimated measurement perturbation: {}",
                format_ns(overhead as u64)
            );
        }
    }
    out
}

/// One request-latency row of a [`FleetStats`] dashboard frame.
#[derive(Clone, Debug, Default)]
pub struct FleetLatencyRow {
    /// Request verb (`ingest`, `query_stats`, …).
    pub verb: String,
    /// Wire protocol the requests arrived over (`json` / `bin`).
    pub proto: String,
    /// Requests served.
    pub count: u64,
    /// Median handling latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile handling latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst handling latency, nanoseconds.
    pub max_ns: u64,
}

/// Plain-field daemon health snapshot for [`render_fleet`] — mirrors the
/// profile-repository `STATS` report without making `cube` depend on the
/// daemon crate. The `watch` dashboard fills one per telemetry push.
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Server wall clock at snapshot time (unix epoch ns; 0 if unknown).
    pub t_ns: u64,
    /// Seconds the daemon has been serving.
    pub uptime_secs: u64,
    /// True when the daemon degraded to read-only after `ENOSPC`.
    pub read_only: bool,
    /// Connections accepted.
    pub connections: u64,
    /// Profiles ingested.
    pub ingests: u64,
    /// Bytes ingested.
    pub ingest_bytes: u64,
    /// Queries served.
    pub queries: u64,
    /// Typed errors answered.
    pub errors: u64,
    /// Subscriptions accepted.
    pub subscriptions: u64,
    /// Events pushed to subscribers.
    pub sub_events: u64,
    /// Events shed from lagging subscribers.
    pub sub_lagged: u64,
    /// Runs in the store.
    pub store_runs: u64,
    /// Segments in the store.
    pub store_segments: u64,
    /// Bytes across the store's segments.
    pub store_bytes: u64,
    /// Per-(verb, protocol) latency rows, busiest first.
    pub latency: Vec<FleetLatencyRow>,
}

/// Render one fleet-dashboard frame from a daemon health snapshot — the
/// serving-side companion of [`render_telemetry`], fed by `taskprof-cli
/// watch` from live subscription pushes.
pub fn render_fleet(s: &FleetStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== profserve fleet dashboard (up {}s{}) ===",
        s.uptime_secs,
        if s.read_only { ", READ-ONLY" } else { "" }
    );
    let _ = writeln!(
        out,
        "store: {} runs in {} segments ({} bytes)",
        s.store_runs, s.store_segments, s.store_bytes
    );
    let _ = writeln!(
        out,
        "traffic: {} conns  {} ingests ({} bytes)  {} queries  {} errors",
        s.connections, s.ingests, s.ingest_bytes, s.queries, s.errors
    );
    let _ = writeln!(
        out,
        "subscriptions: {} live-attached  {} events pushed  {} shed (lag)",
        s.subscriptions, s.sub_events, s.sub_lagged
    );
    if !s.latency.is_empty() {
        let _ = writeln!(
            out,
            "request latency: {:<14} {:<5} {:>8} {:>10} {:>10} {:>10}",
            "verb", "proto", "count", "p50", "p99", "max"
        );
        for row in &s.latency {
            let _ = writeln!(
                out,
                "                 {:<14} {:<5} {:>8} {:>10} {:>10} {:>10}",
                row.verb,
                row.proto,
                row.count,
                format_ns(row.p50_ns),
                format_ns(row.p99_ns),
                format_ns(row.max_ns)
            );
        }
    }
    out
}

/// Render a critical-path (work/span) report: headline numbers, per-thread
/// utilization, the per-region table with critical-path shares, and any
/// detrimental-pattern flags.
pub fn render_critpath(r: &critpath::CritPathReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== critical-path analysis ===");
    let _ = writeln!(
        out,
        "work {}  span {}  makespan {}  parallelism {:.2}",
        format_ns(r.work_ns),
        format_ns(r.span_ns),
        format_ns(r.makespan_ns),
        r.parallelism
    );
    let _ = writeln!(
        out,
        "threads {}  tasks {}  fragments {}  steals {}",
        r.threads, r.tasks, r.fragments, r.steals
    );
    if r.makespan_ns > 0 {
        let util: Vec<String> = r
            .thread_work_ns
            .iter()
            .map(|&w| format!("{:.0}%", 100.0 * w as f64 / r.makespan_ns as f64))
            .collect();
        let _ = writeln!(out, "thread utilization: [{}]", util.join(" "));
    }
    if !r.regions.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>7} {:>10} {:>7}",
            "region", "work", "work%", "span", "span%"
        );
        for row in &r.regions {
            let work_pct = if r.work_ns > 0 {
                100.0 * row.work_ns as f64 / r.work_ns as f64
            } else {
                0.0
            };
            let span_pct = if r.span_ns > 0 {
                100.0 * row.span_ns as f64 / r.span_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>6.1}% {:>10} {:>6.1}%",
                row.name,
                format_ns(row.work_ns),
                work_pct,
                format_ns(row.span_ns),
                span_pct
            );
        }
    }
    for flag in &r.flags {
        let _ = writeln!(out, "WARNING: {flag}");
    }
    out
}

/// Render a what-if prediction: "if `name` were K× faster, the runtime
/// would be …". The caller resolves the region name.
pub fn render_whatif(p: &critpath::WhatIfPrediction, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== what-if: {name} {}x faster ===",
        p.speedup
    );
    let _ = writeln!(out, "baseline makespan:  {}", format_ns(p.baseline_makespan_ns));
    let _ = writeln!(
        out,
        "predicted makespan: {}  ({:.2}x whole-program speedup)",
        format_ns(p.predicted_makespan_ns),
        p.program_speedup()
    );
    let _ = writeln!(
        out,
        "predicted span:     {}  (no schedule can beat this)",
        format_ns(p.predicted_span_ns)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionKind, TaskIdAllocator};
    use taskprof::{replay, AssignPolicy, Event, Profile};

    #[test]
    fn critpath_and_whatif_render() {
        let report = critpath::CritPathReport {
            work_ns: 1000,
            span_ns: 400,
            makespan_ns: 600,
            parallelism: 2.5,
            threads: 2,
            tasks: 8,
            fragments: 9,
            steals: 7,
            thread_work_ns: vec![600, 400],
            regions: vec![critpath::RegionRow {
                region: RegionId(1),
                name: "render-cp-task".into(),
                work_ns: 700,
                span_ns: 300,
            }],
            flags: vec![critpath::DetrimentalFlag::StealStorm {
                steals: 7,
                tasks: 8,
                steal_ratio: 0.875,
            }],
        };
        let text = render_critpath(&report);
        assert!(text.contains("parallelism 2.50"), "{text}");
        assert!(text.contains("render-cp-task"), "{text}");
        assert!(text.contains("WARNING: steal storm"), "{text}");
        assert!(text.contains("thread utilization"), "{text}");

        let p = critpath::WhatIfPrediction {
            region: RegionId(1),
            speedup: 4,
            baseline_makespan_ns: 600,
            predicted_makespan_ns: 450,
            predicted_span_ns: 300,
        };
        let text = render_whatif(&p, "render-cp-task");
        assert!(text.contains("render-cp-task 4x faster"), "{text}");
        assert!(text.contains("predicted makespan"), "{text}");
        assert!(text.contains("1.33x"), "{text}");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1490), "1.49µs");
        assert_eq!(format_ns(2_500_000), "2.50ms");
        assert_eq!(format_ns(113_000_000_000), "113.00s");
    }

    #[test]
    fn fleet_dashboard_renders_counters_and_latency() {
        let frame = render_fleet(&FleetStats {
            uptime_secs: 42,
            read_only: true,
            store_runs: 7,
            ingests: 3,
            subscriptions: 2,
            sub_lagged: 1,
            latency: vec![FleetLatencyRow {
                verb: "ingest".into(),
                proto: "bin".into(),
                count: 3,
                p50_ns: 1_500,
                p99_ns: 9_000,
                max_ns: 12_000,
            }],
            ..FleetStats::default()
        });
        assert!(frame.contains("up 42s, READ-ONLY"), "{frame}");
        assert!(frame.contains("7 runs"), "{frame}");
        assert!(frame.contains("1 shed (lag)"), "{frame}");
        assert!(frame.contains("ingest"), "{frame}");
        assert!(frame.contains("1.50µs"), "{frame}");
    }

    #[test]
    fn render_shows_stub_split_like_fig5() {
        let reg = registry();
        let par = reg.register("r-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("r-task0", RegionKind::Task, "t", 0);
        let barrier = reg.register("r-bar", RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id: t1 },
                Event::Advance(113),
                Event::TaskEnd { region: task, id: t1 },
                Event::Advance(103),
                Event::Exit(barrier),
            ],
        );
        let p = AggProfile::from_profile(&Profile { threads: vec![snap] });
        let s = render_profile(&p, &RenderOpts::default());
        assert!(s.contains("r-bar"), "{s}");
        assert!(s.contains("task r-task0 (stub)"), "{s}");
        assert!(s.contains("=== task tree: r-task0"), "{s}");
        // The barrier line shows inclusive 216 and exclusive 103.
        let bar_line = s.lines().find(|l| l.contains("r-bar")).unwrap();
        assert!(bar_line.contains("incl 216ns"), "{bar_line}");
        assert!(bar_line.contains("excl 103ns"), "{bar_line}");
    }

    #[test]
    fn render_surfaces_faults() {
        let reg = registry();
        let par = reg.register("r3-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("r3-task", RegionKind::Task, "t", 0);
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::TaskBegin { region: task, id: t1 },
                Event::Advance(7),
                Event::TaskAbort { region: task, id: t1 },
            ],
        );
        let p = AggProfile::from_profile(&Profile { threads: vec![snap] });
        assert_eq!(p.aborted_instances, 1);
        let s = render_profile(&p, &RenderOpts::default());
        assert!(s.contains("aborted 1"), "{s}");
        assert!(s.contains("aborted task instances: 1"), "{s}");
    }

    #[test]
    fn telemetry_dashboard_renders_key_gauges() {
        use pomp::EventClass;
        let mut s = taskprof_telemetry::TelemetrySnapshot {
            tasks_created: 10,
            tasks_completed: 8,
            live_trees: 2,
            live_trees_hwm: 4,
            fragments: 12,
            stub_time_ns: 2_500_000,
            ..Default::default()
        };
        s.events[EventClass::TaskBegin.index()] = 10;
        s.perturb_samples[EventClass::TaskBegin.index()] = 2;
        s.perturb_ns[EventClass::TaskBegin.index()] = 100;
        let text = render_telemetry(&s, Some(1_000_000));
        assert!(text.contains("created 10 completed 8"), "{text}");
        assert!(text.contains("in-flight 2"), "{text}");
        assert!(text.contains("high-water mark 4"), "{text}");
        assert!(text.contains("task_begin"), "{text}");
        assert!(text.contains("% of"), "{text}");
        // Classes with no events stay out of the dashboard.
        assert!(!text.contains("task_abort"), "{text}");
    }

    #[test]
    fn min_time_filter_prunes() {
        let reg = registry();
        let par = reg.register("r2-par", RegionKind::Parallel, "t", 0);
        let small = reg.register("r2-small", RegionKind::User, "t", 0);
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(small),
                Event::Advance(5),
                Event::Exit(small),
                Event::Advance(1000),
            ],
        );
        let p = AggProfile::from_profile(&Profile { threads: vec![snap] });
        let full = render_profile(&p, &RenderOpts::default());
        assert!(full.contains("r2-small"));
        let pruned = render_profile(
            &p,
            &RenderOpts {
                min_time_ns: 100,
                ..Default::default()
            },
        );
        assert!(!pruned.contains("r2-small"));
    }
}
