//! Structural diff of two profiles — comparing runs is how the paper's
//! Section VI localizes scaling problems ("comparison of profiles of
//! instrumented runs with different numbers of threads").

use crate::agg::AggProfile;
use crate::export::{rows, CsvRow};
use std::collections::HashMap;

/// One call path present in either profile.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Slash-separated call path.
    pub path: String,
    /// Inclusive ns in profile A (0 if absent).
    pub a_incl_ns: u64,
    /// Inclusive ns in profile B (0 if absent).
    pub b_incl_ns: u64,
    /// Visits in A.
    pub a_visits: u64,
    /// Visits in B.
    pub b_visits: u64,
}

impl DiffRow {
    /// Inclusive-time delta (B − A), ns.
    pub fn delta_ns(&self) -> i64 {
        self.b_incl_ns as i64 - self.a_incl_ns as i64
    }

    /// Inclusive-time ratio B/A (`None` when A is zero).
    pub fn ratio(&self) -> Option<f64> {
        (self.a_incl_ns > 0).then(|| self.b_incl_ns as f64 / self.a_incl_ns as f64)
    }
}

/// Diff two aggregated profiles by call path, sorted by descending
/// absolute time delta.
pub fn diff_profiles(a: &AggProfile, b: &AggProfile) -> Vec<DiffRow> {
    let index = |p: &AggProfile| -> HashMap<String, CsvRow> {
        rows(p).into_iter().map(|r| (r.path.clone(), r)).collect()
    };
    let (ia, ib) = (index(a), index(b));
    let mut paths: Vec<&String> = ia.keys().chain(ib.keys()).collect();
    paths.sort();
    paths.dedup();
    let mut out: Vec<DiffRow> = paths
        .into_iter()
        .map(|p| {
            let ra = ia.get(p);
            let rb = ib.get(p);
            DiffRow {
                path: p.clone(),
                a_incl_ns: ra.map_or(0, |r| r.incl_ns),
                b_incl_ns: rb.map_or(0, |r| r.incl_ns),
                a_visits: ra.map_or(0, |r| r.visits),
                b_visits: rb.map_or(0, |r| r.visits),
            }
        })
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse(r.delta_ns().unsigned_abs()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{registry, RegionKind};
    use taskprof::{replay, AssignPolicy, Event, Profile};

    fn profile_with(work_ns: u64) -> AggProfile {
        let reg = registry();
        let par = reg.register("d-par", RegionKind::Parallel, "t", 0);
        let work = reg.register("d-work", RegionKind::User, "t", 0);
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(work),
                Event::Advance(work_ns),
                Event::Exit(work),
            ],
        );
        AggProfile::from_profile(&Profile { threads: vec![snap] })
    }

    #[test]
    fn diff_ranks_biggest_change_first() {
        let a = profile_with(100);
        let b = profile_with(500);
        let d = diff_profiles(&a, &b);
        assert_eq!(d[0].delta_ns().unsigned_abs(), 400);
        let work = d.iter().find(|r| r.path.ends_with("d-work")).unwrap();
        assert_eq!(work.a_incl_ns, 100);
        assert_eq!(work.b_incl_ns, 500);
        assert_eq!(work.ratio(), Some(5.0));
    }

    #[test]
    fn diff_handles_missing_paths() {
        let reg = registry();
        let par = reg.register("d2-par", RegionKind::Parallel, "t", 0);
        let only_b = reg.register("d2-only-b", RegionKind::User, "t", 0);
        let snap_a = replay(par, AssignPolicy::Executing, [Event::Advance(10)]);
        let snap_b = replay(
            par,
            AssignPolicy::Executing,
            [Event::Enter(only_b), Event::Advance(10), Event::Exit(only_b)],
        );
        let a = AggProfile::from_profile(&Profile { threads: vec![snap_a] });
        let b = AggProfile::from_profile(&Profile { threads: vec![snap_b] });
        let d = diff_profiles(&a, &b);
        let row = d.iter().find(|r| r.path.ends_with("d2-only-b")).unwrap();
        assert_eq!(row.a_incl_ns, 0);
        assert_eq!(row.b_incl_ns, 10);
        assert_eq!(row.ratio(), None);
    }
}
