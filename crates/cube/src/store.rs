//! Plain-text profile persistence.
//!
//! Score-P writes `.cubex` archives that CUBE reads later; this is the
//! reproduction's equivalent: a line-oriented, diff-friendly text format
//! that round-trips a whole per-thread [`Profile`]. Region and parameter
//! names are stored by name+kind and re-interned on load, so profiles can
//! be compared across processes and machines.

use pomp::{registry, ParamId, RegionId, RegionKind};
use std::fmt::Write as _;
use taskprof::{NodeKind, Profile, SnapNode, Stats, ThreadSnapshot};

/// Format version tag.
const MAGIC: &str = "taskprof-profile v1";

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the problem (0 = header).
    pub line: usize,
    /// 1-based column of the problem (0 = whole line / unknown).
    pub column: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "profile parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "profile parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn kind_tag(kind: RegionKind) -> &'static str {
    match kind {
        RegionKind::Function => "function",
        RegionKind::Parallel => "parallel",
        RegionKind::Task => "task",
        RegionKind::TaskCreate => "create",
        RegionKind::Taskwait => "taskwait",
        RegionKind::ImplicitBarrier => "ibarrier",
        RegionKind::ExplicitBarrier => "barrier",
        RegionKind::Single => "single",
        RegionKind::Workshare => "for",
        RegionKind::Critical => "critical",
        RegionKind::User => "user",
    }
}

fn kind_from_tag(tag: &str) -> Option<RegionKind> {
    Some(match tag {
        "function" => RegionKind::Function,
        "parallel" => RegionKind::Parallel,
        "task" => RegionKind::Task,
        "create" => RegionKind::TaskCreate,
        "taskwait" => RegionKind::Taskwait,
        "ibarrier" => RegionKind::ImplicitBarrier,
        "barrier" => RegionKind::ExplicitBarrier,
        "single" => RegionKind::Single,
        "for" => RegionKind::Workshare,
        "critical" => RegionKind::Critical,
        "user" => RegionKind::User,
        _ => return None,
    })
}

fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn write_node(out: &mut String, node: &SnapNode, depth: usize) {
    let reg = registry();
    let ident = match node.kind {
        NodeKind::Region(r) => {
            let info = reg.info(r);
            format!("region {} \"{}\"", kind_tag(info.kind), escape(&info.name))
        }
        NodeKind::Stub(r) => format!("stub \"{}\"", escape(&reg.name(r))),
        NodeKind::Param(p, v) => {
            format!("param \"{}\" {v}", escape(&reg.param_name(p)))
        }
        NodeKind::Truncated => "truncated \"\"".to_string(),
    };
    let s = &node.stats;
    // Serialized min follows the export convention: 0 when no sample
    // landed. The in-memory `u64::MAX` sentinel is an internal detail of
    // `Stats` and must not leak into the text format (it used to, making
    // store and CSV export disagree); the parser restores the sentinel.
    let _ = write!(
        out,
        "{}{} visits {} sum {} min {} max {} samples {}",
        "  ".repeat(depth),
        ident,
        s.visits,
        s.sum_ns,
        s.min().unwrap_or(0),
        s.max_ns,
        s.samples
    );
    // Fault-tolerance annotation, omitted when clean so that profiles
    // written by older versions and clean new profiles look identical.
    if s.aborted > 0 {
        let _ = write!(out, " aborted {}", s.aborted);
    }
    out.push('\n');
    for c in &node.children {
        write_node(out, c, depth + 1);
    }
}

/// Serialize a profile to the text format.
pub fn write_profile(p: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "threads {}", p.threads.len());
    for t in &p.threads {
        let _ = write!(
            out,
            "thread {} max_live {} arena {}",
            t.tid, t.max_live_trees, t.arena_capacity
        );
        if t.shed_instances > 0 {
            let _ = write!(out, " shed {}", t.shed_instances);
        }
        out.push('\n');
        for d in &t.diagnostics {
            let _ = writeln!(out, "diag \"{}\"", escape(d));
        }
        let _ = writeln!(out, "main");
        write_node(&mut out, &t.main, 1);
        for tree in &t.task_trees {
            let _ = writeln!(out, "tasktree");
            write_node(&mut out, tree, 1);
        }
        let _ = writeln!(out, "end");
    }
    out
}

/// Serialize a profile to `path` atomically: the text is written to a
/// sibling temp file, flushed, and renamed into place, so a crash mid-save
/// leaves either the previous file or the complete new one — never a torn
/// profile. The temp file name embeds the process id so concurrent savers
/// into the same directory do not collide.
pub fn write_profile_to(path: &std::path::Path, p: &Profile) -> std::io::Result<()> {
    use std::io::Write as _;

    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(write_profile(p).as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

struct Parser<'a> {
    lines: std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>,
}

impl<'a> Parser<'a> {
    fn err(line: usize, message: impl Into<String>) -> ParseError {
        Self::err_at(line, 0, message)
    }

    fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line: line + 1,
            column,
            message: message.into(),
        }
    }

    /// Parse one node line: returns (depth, kind, stats).
    fn parse_node_line(lineno: usize, raw: &str) -> Result<(usize, NodeKind, Stats), ParseError> {
        let trimmed = raw.trim_start();
        let indent = raw.len() - trimmed.len();
        let depth = indent / 2;
        // Split the quoted name out first.
        let (head, rest) = trimmed
            .split_once('"')
            .ok_or_else(|| Self::err_at(lineno, indent + 1, "missing name quote"))?;
        // Find the closing quote honoring escapes.
        let mut end = None;
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end
            .ok_or_else(|| Self::err_at(lineno, indent + head.len() + 1, "unterminated name"))?;
        let name = unescape(&rest[..end]);
        let tail = &rest[end + 1..];
        // 1-based column where the post-name tail of the line starts.
        let tail_col = raw.len() - tail.len() + 1;
        let head_tokens: Vec<&str> = head.split_whitespace().collect();
        let reg = registry();
        let kind = match head_tokens.as_slice() {
            ["region", ktag] => {
                let k = kind_from_tag(ktag).ok_or_else(|| {
                    Self::err_at(lineno, indent + 1, format!("unknown region kind {ktag}"))
                })?;
                NodeKind::Region(reg.register(&name, k, "loaded", 0))
            }
            ["stub"] => {
                // Stubs always refer to task constructs.
                NodeKind::Stub(reg.register(&name, RegionKind::Task, "loaded", 0))
            }
            ["truncated"] => NodeKind::Truncated,
            ["param"] => {
                let v: i64 = tail
                    .split_whitespace()
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| Self::err_at(lineno, tail_col, "param missing value"))?;
                return Ok((
                    depth,
                    NodeKind::Param(reg.register_param(&name), v),
                    Self::parse_stats(lineno, tail_col, tail.split_whitespace().skip(1))?,
                ));
            }
            other => {
                return Err(Self::err_at(
                    lineno,
                    indent + 1,
                    format!("unknown node head {other:?}"),
                ))
            }
        };
        Ok((depth, kind, Self::parse_stats(lineno, tail_col, tail.split_whitespace())?))
    }

    fn parse_stats<'t>(
        lineno: usize,
        col: usize,
        mut tokens: impl Iterator<Item = &'t str>,
    ) -> Result<Stats, ParseError> {
        let mut stats = Stats::new();
        let grab = |key: &str, tokens: &mut dyn Iterator<Item = &'t str>| {
            match (tokens.next(), tokens.next()) {
                (Some(k), Some(v)) if k == key => v
                    .parse::<u64>()
                    .map_err(|_| Self::err_at(lineno, col, format!("bad {key} value"))),
                _ => Err(Self::err_at(lineno, col, format!("expected '{key} <n>'"))),
            }
        };
        stats.visits = grab("visits", &mut tokens)?;
        stats.sum_ns = grab("sum", &mut tokens)?;
        stats.min_ns = grab("min", &mut tokens)?;
        stats.max_ns = grab("max", &mut tokens)?;
        stats.samples = grab("samples", &mut tokens)?;
        if stats.samples == 0 {
            // Restore the internal no-samples sentinel so a re-loaded
            // profile is indistinguishable from a live one (`Stats::min`
            // returns `None`, `record` still folds correctly). Also
            // normalizes legacy files that serialized the raw sentinel.
            stats.min_ns = u64::MAX;
        }
        // Optional fault-tolerance annotation (absent in clean and in
        // older profiles).
        match tokens.next() {
            None => {}
            Some("aborted") => {
                stats.aborted = tokens
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| Self::err_at(lineno, col, "bad aborted value"))?;
            }
            Some(other) => {
                return Err(Self::err_at(
                    lineno,
                    col,
                    format!("unexpected trailing token '{other}'"),
                ))
            }
        }
        if let Some(extra) = tokens.next() {
            return Err(Self::err_at(
                lineno,
                col,
                format!("unexpected trailing token '{extra}'"),
            ));
        }
        Ok(stats)
    }

    /// Parse an indented node block starting at the current position.
    fn parse_tree(&mut self) -> Result<SnapNode, ParseError> {
        let (lineno, first) = self
            .lines
            .next()
            .ok_or_else(|| Self::err(0, "unexpected end of file in tree"))?;
        let (depth, kind, stats) = Self::parse_node_line(lineno, first)?;
        let mut root = SnapNode {
            kind,
            stats,
            children: vec![],
        };
        let mut stack: Vec<(usize, SnapNode)> = vec![];
        let base = depth;
        // Collect subsequent deeper lines.
        while let Some(&(lineno, peek)) = self.lines.peek() {
            let trimmed = peek.trim_start();
            if trimmed.is_empty()
                || trimmed.starts_with("main")
                || trimmed.starts_with("tasktree")
                || trimmed.starts_with("thread ")
                || trimmed.starts_with("end")
            {
                break;
            }
            let d = (peek.len() - trimmed.len()) / 2;
            if d <= base {
                break;
            }
            self.lines.next();
            let (_, kind, stats) = Self::parse_node_line(lineno, peek)?;
            let node = SnapNode {
                kind,
                stats,
                children: vec![],
            };
            // Pop completed siblings/ancestors.
            while let Some(&(sd, _)) = stack.last() {
                if sd >= d {
                    let (_, done) = stack.pop().expect("non-empty");
                    match stack.last_mut() {
                        Some((_, parent)) => parent.children.push(done),
                        None => root.children.push(done),
                    }
                } else {
                    break;
                }
            }
            stack.push((d, node));
        }
        while let Some((_, done)) = stack.pop() {
            match stack.last_mut() {
                Some((_, parent)) => parent.children.push(done),
                None => root.children.push(done),
            }
        }
        Ok(root)
    }
}

/// Parse a profile from the text format.
pub fn read_profile(text: &str) -> Result<Profile, ParseError> {
    let mut p = Parser {
        lines: text.lines().enumerate().peekable(),
    };
    match p.lines.next() {
        Some((_, l)) if l.trim() == MAGIC => {}
        Some((n, l)) => return Err(Parser::err(n, format!("bad magic '{l}'"))),
        None => return Err(Parser::err(0, "empty input")),
    }
    let nthreads = match p.lines.next() {
        Some((n, l)) => l
            .trim()
            .strip_prefix("threads ")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| Parser::err(n, "expected 'threads <n>'"))?,
        None => return Err(Parser::err(1, "missing thread count")),
    };
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let (n, header) = p
            .lines
            .next()
            .ok_or_else(|| Parser::err(0, "missing thread header"))?;
        let toks: Vec<&str> = header.split_whitespace().collect();
        let (tid, max_live, arena, shed) = match toks.as_slice() {
            ["thread", tid, "max_live", ml, "arena", ar] => (
                tid.parse().map_err(|_| Parser::err(n, "bad tid"))?,
                ml.parse().map_err(|_| Parser::err(n, "bad max_live"))?,
                ar.parse().map_err(|_| Parser::err(n, "bad arena"))?,
                0u64,
            ),
            ["thread", tid, "max_live", ml, "arena", ar, "shed", sh] => (
                tid.parse().map_err(|_| Parser::err(n, "bad tid"))?,
                ml.parse().map_err(|_| Parser::err(n, "bad max_live"))?,
                ar.parse().map_err(|_| Parser::err(n, "bad arena"))?,
                sh.parse().map_err(|_| Parser::err(n, "bad shed count"))?,
            ),
            _ => return Err(Parser::err(n, "malformed thread header")),
        };
        // Optional self-healing diagnostics recorded with the thread.
        let mut diagnostics = Vec::new();
        while let Some(&(dn, l)) = p.lines.peek() {
            let Some(rest) = l.trim().strip_prefix("diag ") else {
                break;
            };
            p.lines.next();
            let inner = rest
                .trim()
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| Parser::err(dn, "malformed diag line"))?;
            diagnostics.push(unescape(inner));
        }
        match p.lines.next() {
            Some((_, l)) if l.trim() == "main" => {}
            Some((n, l)) => return Err(Parser::err(n, format!("expected 'main', got '{l}'"))),
            None => return Err(Parser::err(n, "missing main section")),
        }
        let main = p.parse_tree()?;
        let mut task_trees = Vec::new();
        loop {
            match p.lines.peek().copied() {
                Some((_, l)) if l.trim() == "tasktree" => {
                    p.lines.next();
                    task_trees.push(p.parse_tree()?);
                }
                Some((_, l)) if l.trim() == "end" => {
                    p.lines.next();
                    break;
                }
                Some((n, l)) => {
                    return Err(Parser::err(n, format!("expected tasktree/end, got '{l}'")))
                }
                None => return Err(Parser::err(0, "missing 'end'")),
            }
        }
        let parallel_region = match main.kind {
            NodeKind::Region(r) => r,
            _ => RegionId(0),
        };
        threads.push(ThreadSnapshot {
            tid,
            parallel_region,
            main,
            task_trees,
            max_live_trees: max_live,
            arena_capacity: arena,
            shed_instances: shed,
            diagnostics,
        });
    }
    Ok(Profile { threads })
}

/// The parameter-name interning used on load.
#[allow(dead_code)]
fn _assert_param_api(p: ParamId) -> ParamId {
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::TaskIdAllocator;
    use taskprof::{AssignPolicy, Event, TeamReplayer};

    fn sample_profile() -> Profile {
        let reg = registry();
        let par = reg.register("st-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("st-task", RegionKind::Task, "t", 0);
        let barrier = reg.register("st-bar", RegionKind::ImplicitBarrier, "t", 0);
        let depth = reg.register_param("st-depth");
        let ids = TaskIdAllocator::new();
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        for tid in 0..2 {
            team.apply(tid, Event::Enter(barrier));
        }
        for k in 0..3 {
            let id = ids.alloc();
            team.apply(0, Event::TaskBegin { region: task, id })
                .apply(0, Event::ParamBegin { param: depth, value: k })
                .advance(10 + k as u64)
                .apply(0, Event::ParamEnd { param: depth })
                .apply(0, Event::TaskEnd { region: task, id });
        }
        for tid in 0..2 {
            team.apply(tid, Event::Exit(barrier));
        }
        team.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let p = sample_profile();
        let text = write_profile(&p);
        let q = read_profile(&text).expect("parse");
        assert_eq!(p.threads.len(), q.threads.len());
        for (a, b) in p.threads.iter().zip(&q.threads) {
            assert_eq!(a.tid, b.tid);
            assert_eq!(a.max_live_trees, b.max_live_trees);
            assert_eq!(a.arena_capacity, b.arena_capacity);
            assert_eq!(a.shed_instances, b.shed_instances);
            assert_eq!(a.diagnostics, b.diagnostics);
            assert_eq!(a.main, b.main);
            assert_eq!(a.task_trees, b.task_trees);
        }
        // Idempotent: serialize again, identical text.
        assert_eq!(text, write_profile(&q));
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!(
            "cube-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("profile.tpf");
        let p = sample_profile();
        write_profile_to(&path, &p).expect("atomic write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, write_profile(&p));
        // Overwrite in place: still atomic, still complete.
        write_profile_to(&path, &p).expect("overwrite");
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .expect("read dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip_preserves_fault_annotations() {
        use pomp::TaskRef;
        let reg = registry();
        let par = reg.register("ft-par", RegionKind::Parallel, "t", 0);
        let task = reg.register("ft-task", RegionKind::Task, "t", 0);
        let barrier = reg.register("ft-bar", RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let (t1, t2, t3) = (ids.alloc(), ids.alloc(), ids.alloc());
        let mut r = taskprof::Replayer::new(par, AssignPolicy::Executing);
        r.set_max_live_trees(Some(1));
        r.run([
            Event::Enter(barrier),
            Event::TaskBegin { region: task, id: t1 },
            Event::Advance(5),
            Event::Switch(TaskRef::Implicit), // t1 suspended, 1 live tree
            Event::TaskBegin { region: task, id: t2 }, // cap hit: shed
            Event::Advance(3),
            Event::TaskEnd { region: task, id: t2 },
            Event::Switch(TaskRef::Explicit(t1)),
            Event::Advance(2),
            Event::TaskAbort { region: task, id: t1 }, // panicked body
            Event::TaskBegin { region: task, id: t3 },
            Event::Advance(1),
            Event::Switch(TaskRef::Implicit), // t3 left open at finish
            Event::Exit(barrier),
        ]);
        let snap = r.finish(0);
        assert_eq!(snap.shed_instances, 1);
        assert_eq!(snap.diagnostics.len(), 1);
        let p = Profile { threads: vec![snap] };
        let text = write_profile(&p);
        assert!(text.contains("shed 1"), "{text}");
        assert!(text.contains("aborted 2"), "{text}"); // t1 + force-closed t3
        assert!(text.contains("diag \""), "{text}");
        let q = read_profile(&text).expect("parse");
        assert_eq!(q.threads[0].shed_instances, 1);
        assert_eq!(q.threads[0].diagnostics, p.threads[0].diagnostics);
        assert_eq!(q.threads[0].task_trees, p.threads[0].task_trees);
        assert_eq!(q.aborted_instances(), 2);
        assert_eq!(text, write_profile(&q));
    }

    #[test]
    fn no_samples_min_round_trips_as_zero() {
        // A node with visits but no duration samples (e.g. a region still
        // open at snapshot time, or a pure-visit stub) keeps the internal
        // `u64::MAX` min sentinel. The text format must carry the export
        // convention (0), never the sentinel, and the parser must restore
        // the sentinel so `Stats::min()` stays `None` after a reload.
        let reg = registry();
        let par = reg.register("ms-par", RegionKind::Parallel, "t", 0);
        let snap = taskprof::replay(par, AssignPolicy::Executing, [Event::Advance(5)]);
        let mut p = Profile { threads: vec![snap] };
        // Forge a visited-but-never-sampled child to pin the convention.
        let mut stats = Stats::new();
        stats.add_visit();
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.min(), None);
        let task = reg.register("ms-task", RegionKind::Task, "t", 0);
        p.threads[0].main.children.push(SnapNode {
            kind: NodeKind::Stub(task),
            stats,
            children: vec![],
        });
        let text = write_profile(&p);
        assert!(
            !text.contains(&u64::MAX.to_string()),
            "sentinel leaked into the text format:\n{text}"
        );
        assert!(text.contains("min 0"), "{text}");
        let q = read_profile(&text).expect("parse");
        let reloaded = &q.threads[0].main.children.last().unwrap().stats;
        assert_eq!(reloaded.min(), None, "sentinel restored on load");
        assert_eq!(reloaded.min_ns, u64::MAX);
        // Store, export-style accessors, and re-serialization all agree.
        assert_eq!(text, write_profile(&q));
        // Legacy files that serialized the raw sentinel still load (and
        // normalize on the next write).
        let legacy = text.replace("min 0", &format!("min {}", u64::MAX));
        let ql = read_profile(&legacy).expect("legacy parse");
        assert_eq!(ql.threads[0].main.children.last().unwrap().stats.min(), None);
        assert_eq!(write_profile(&ql), text);
    }

    #[test]
    fn errors_carry_position_context() {
        // A corrupted stats token reports both line and column.
        let p = sample_profile();
        let text = write_profile(&p);
        let broken = text.replace("sum ", "sum x");
        let err = read_profile(&broken).unwrap_err();
        assert!(err.line > 0);
        assert!(err.column > 0, "column context missing: {err:?}");
        let rendered = err.to_string();
        assert!(rendered.contains("line"), "{rendered}");
        assert!(rendered.contains("column"), "{rendered}");
    }

    #[test]
    fn names_with_quotes_survive() {
        let reg = registry();
        let par = reg.register("weird \"name\"\\x", RegionKind::Parallel, "t", 0);
        let snap = taskprof::replay(par, AssignPolicy::Executing, [Event::Advance(5)]);
        let p = Profile { threads: vec![snap] };
        let q = read_profile(&write_profile(&p)).expect("parse");
        assert_eq!(p.threads[0].main, q.threads[0].main);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_profile("").is_err());
        assert!(read_profile("not a profile").is_err());
        assert!(read_profile("taskprof-profile v1\nthreads x").is_err());
        let p = sample_profile();
        let text = write_profile(&p);
        let truncated = &text[..text.len() / 2];
        assert!(read_profile(truncated).is_err());
    }
}
