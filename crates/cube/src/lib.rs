//! `cube` — CUBE-style analysis of task call-path profiles.
//!
//! Score-P writes profiles that the CUBE browser displays (paper Fig. 5);
//! this crate is the analysis layer of the reproduction: cross-thread
//! aggregation, metric queries for the experiment harness (Tables I–IV),
//! an ASCII call-tree renderer, CSV export, and profile diffing.

#![warn(missing_docs)]

pub mod agg;
pub mod diagnose;
pub mod diff;
pub mod export;
pub mod imbalance;
pub mod query;
pub mod render;
pub mod store;

pub use agg::{merge_nodes, AggProfile};
pub use diagnose::{diagnose, DiagnoseConfig, Finding, IssueKind};
pub use diff::{diff_profiles, DiffRow};
pub use export::{rows, to_csv, to_dot, CsvRow};
pub use imbalance::{imbalance_factor, render_loads, thread_loads, ThreadLoad};
pub use query::{
    param_table, region_excl_by_kind, region_excl_by_name, stub_time_under_kind, task_stats,
    TaskConstructStats,
};
pub use render::{
    format_ns, render_critpath, render_fleet, render_profile, render_telemetry, render_tree,
    render_whatif, FleetLatencyRow, FleetStats, RenderOpts,
};
pub use store::{read_profile, write_profile, write_profile_to, ParseError};
