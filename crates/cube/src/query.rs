//! Metric queries used by the experiment harness.
//!
//! The paper's tables are all expressible as queries over the aggregated
//! profile:
//!
//! * Table I — instance counts and mean inclusive times of task constructs
//!   ([`task_stats`]),
//! * Table III — exclusive times of regions by name or kind
//!   ([`region_excl_by_name`], [`region_excl_by_kind`]),
//! * Table IV — per-parameter-value statistics ([`param_table`]).

use crate::agg::AggProfile;
use pomp::{registry, ParamId, RegionId, RegionKind};
use taskprof::{NodeKind, SnapNode, Stats};

/// Statistics of one task construct, aggregated over all threads and
/// instances (the per-construct row of the paper's Table I).
#[derive(Clone, Copy, Debug)]
pub struct TaskConstructStats {
    /// The construct's region.
    pub region: RegionId,
    /// Completed instances.
    pub instances: u64,
    /// Total inclusive execution time (suspension excluded), ns.
    pub sum_ns: u64,
    /// Mean inclusive instance time, ns.
    pub mean_ns: f64,
    /// Fastest instance, ns.
    pub min_ns: u64,
    /// Slowest instance, ns.
    pub max_ns: u64,
}

/// Per-construct instance statistics from an aggregated profile.
pub fn task_stats(p: &AggProfile) -> Vec<TaskConstructStats> {
    p.task_trees
        .iter()
        .filter_map(|t| match t.kind {
            NodeKind::Region(region) => Some(TaskConstructStats {
                region,
                instances: t.stats.samples,
                sum_ns: t.stats.sum_ns,
                mean_ns: t.stats.mean_ns(),
                min_ns: t.stats.min().unwrap_or(0),
                max_ns: t.stats.max_ns,
            }),
            _ => None,
        })
        .collect()
}

/// Sum of exclusive times of every node in `tree` whose region satisfies
/// `pred`. Exclusive times are additive across nesting, so this never
/// double-counts.
fn sum_excl_by(tree: &SnapNode, pred: &impl Fn(RegionId) -> bool) -> i64 {
    let mut total = 0i64;
    tree.walk(&mut |_, n| {
        if let NodeKind::Region(r) = n.kind {
            if pred(r) {
                total += n.exclusive_ns();
            }
        }
    });
    total
}

/// Total exclusive time (ns, over main tree and task trees) of all regions
/// with the given registered name. Used for Table III rows like
/// `"nqueens!create"`.
pub fn region_excl_by_name(p: &AggProfile, name: &str) -> i64 {
    let reg = registry();
    let pred = |r: RegionId| reg.name(r) == name;
    p.task_trees
        .iter()
        .chain(std::iter::once(&p.main))
        .map(|t| sum_excl_by(t, &pred))
        .sum()
}

/// Total exclusive time (ns) of all regions of one kind (e.g. every
/// taskwait, every implicit barrier).
pub fn region_excl_by_kind(p: &AggProfile, kind: RegionKind) -> i64 {
    let reg = registry();
    let pred = |r: RegionId| reg.kind(r) == kind;
    p.task_trees
        .iter()
        .chain(std::iter::once(&p.main))
        .map(|t| sum_excl_by(t, &pred))
        .sum()
}

/// Total *stub* time under nodes of one kind in the main tree: the share
/// of a scheduling point's time spent doing useful task work (the
/// paper's Fig. 5 split).
pub fn stub_time_under_kind(p: &AggProfile, kind: RegionKind) -> u64 {
    let reg = registry();
    let mut total = 0u64;
    p.main.walk(&mut |_, n| {
        if let NodeKind::Region(r) = n.kind {
            if reg.kind(r) == kind {
                total += n
                    .children
                    .iter()
                    .filter(|c| matches!(c.kind, NodeKind::Stub(_)))
                    .map(|c| c.stats.sum_ns)
                    .sum::<u64>();
            }
        }
    });
    total
}

/// Per-value statistics of a parameter in a task tree, sorted by value
/// (the paper's Table IV: per-recursion-level mean/sum/count).
pub fn param_table(tree: &SnapNode, param: ParamId) -> Vec<(i64, Stats)> {
    let mut rows: Vec<(i64, Stats)> = Vec::new();
    tree.walk(&mut |_, n| {
        if let NodeKind::Param(p, v) = n.kind {
            if p == param {
                match rows.iter_mut().find(|(val, _)| *val == v) {
                    Some((_, s)) => s.merge(&n.stats),
                    None => rows.push((v, n.stats)),
                }
            }
        }
    });
    rows.sort_by_key(|(v, _)| *v);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskprof::{replay, AssignPolicy, Event};

    fn reg(name: &str, kind: RegionKind) -> RegionId {
        registry().register(name, kind, "test", 0)
    }

    fn agg_single_thread(snap: taskprof::ThreadSnapshot) -> AggProfile {
        AggProfile::from_profile(&taskprof::Profile {
            threads: vec![snap],
        })
    }

    #[test]
    fn task_stats_and_exclusive_queries() {
        let ids = pomp::TaskIdAllocator::new();
        let par = reg("q-par", RegionKind::Parallel);
        let task = reg("q-task", RegionKind::Task);
        let barrier = reg("q-bar", RegionKind::ImplicitBarrier);
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Advance(5),
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id: t1 },
                Event::Advance(10),
                Event::TaskEnd { region: task, id: t1 },
                Event::TaskBegin { region: task, id: t2 },
                Event::Advance(30),
                Event::TaskEnd { region: task, id: t2 },
                Event::Advance(5),
                Event::Exit(barrier),
            ],
        );
        let p = agg_single_thread(snap);
        let stats = task_stats(&p);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.instances, 2);
        assert_eq!(s.sum_ns, 40);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert!((s.mean_ns - 20.0).abs() < 1e-9);
        // Barrier inclusive 45, stub 40 → exclusive 5.
        assert_eq!(region_excl_by_kind(&p, RegionKind::ImplicitBarrier), 5);
        assert_eq!(stub_time_under_kind(&p, RegionKind::ImplicitBarrier), 40);
        // Task root has no children → exclusive == inclusive.
        assert_eq!(region_excl_by_name(&p, "q-task"), 40);
    }

    #[test]
    fn param_table_groups_by_value() {
        let ids = pomp::TaskIdAllocator::new();
        let par = reg("q2-par", RegionKind::Parallel);
        let task = reg("q2-task", RegionKind::Task);
        let barrier = reg("q2-bar", RegionKind::ImplicitBarrier);
        let depth = registry().register_param("q2-depth");
        let mut events = vec![Event::Enter(barrier)];
        for (d, dur) in [(0i64, 40u64), (1, 10), (1, 20)] {
            let id = ids.alloc();
            events.extend([
                Event::TaskBegin { region: task, id },
                Event::ParamBegin { param: depth, value: d },
                Event::Advance(dur),
                Event::ParamEnd { param: depth },
                Event::TaskEnd { region: task, id },
            ]);
        }
        events.push(Event::Exit(barrier));
        let snap = replay(par, AssignPolicy::Executing, events);
        let p = agg_single_thread(snap);
        let table = param_table(&p.task_trees[0], depth);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].0, 0);
        assert_eq!(table[0].1.sum_ns, 40);
        assert_eq!(table[1].0, 1);
        assert_eq!(table[1].1.samples, 2);
        assert_eq!(table[1].1.sum_ns, 30);
        assert!((table[1].1.mean_ns() - 15.0).abs() < 1e-9);
    }
}
