#!/bin/bash
# Minimal CI gate: release build, full test suite, lint-clean clippy,
# and a smoke run of the overhead benchmark (regenerates
# BENCH_overhead.json, checked in).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release

echo "=== tests ==="
cargo test -q

echo "=== clippy (workspace, all targets) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== clippy (portable clock path) ==="
# Compile-check the non-TSC clock fallback other architectures take,
# without needing a cross toolchain (see crates/pomp/src/clock.rs).
RUSTFLAGS="--cfg taskprof_portable_clock" \
    cargo clippy -p pomp --all-targets -- -D warnings

echo "=== overhead bench smoke (test scale) ==="
BENCH_SCALE="${BENCH_SCALE:-test}" BENCH_REPS="${BENCH_REPS:-1}" \
    cargo run --release -p bench --bin overhead_json -- /tmp/BENCH_overhead.smoke.json
# The profile_ingest section must carry the paired per-protocol daemon
# numbers (JSON lines vs. TPF1 binary) next to the direct-store rate.
grep -q '"server_json_profiles_per_sec"' /tmp/BENCH_overhead.smoke.json
grep -q '"server_bin_profiles_per_sec"' /tmp/BENCH_overhead.smoke.json
grep -q '"server_bin_profiles_per_sec"' BENCH_overhead.json
echo "(full run: BENCH_SCALE=small cargo run --release -p bench --bin overhead_json)"

echo "=== live telemetry smoke ==="
# Polls the lock-free gauges while nqueens runs, then asserts both
# exporters round-trip and the HWM gauge matches the profile.
cargo run --release --example live_telemetry | tee /tmp/live_telemetry.out
grep -q "LIVE_TELEMETRY_OK" /tmp/live_telemetry.out

echo "=== schedule exploration smoke ==="
# Deterministic simulated schedules over the built-in workloads, every
# run checked against the paper's profile invariants plus a differential
# live-vs-replay comparison. TASKPROF_EXPLORE_SEEDS scales the sweep
# (nightly runs use hundreds; the smoke default keeps CI fast).
TASKPROF_EXPLORE_SEEDS="${TASKPROF_EXPLORE_SEEDS:-32}" \
    cargo run --release --bin taskprof-cli -- explore --threads 2 --workload all --dfs 100

echo "=== causal what-if smoke (replay-checked prediction) ==="
# Predict the makespan with the task region 3x faster, then replay the
# same seed with the work actually scaled: --validate exits nonzero
# unless the replayed makespan equals the prediction exactly.
cargo run --release --bin taskprof-cli -- whatif \
    --workload div --seed 11 --threads 2 \
    --region 'sim-div-3!task' --speedup 3 --validate | tee /tmp/whatif.out
grep -q 'predicted makespan' /tmp/whatif.out \
    || { echo "what-if printed no prediction"; exit 1; }
grep -q 'replay reproduced the prediction exactly' /tmp/whatif.out \
    || { echo "what-if replay validation missing"; exit 1; }
cargo run --release --bin taskprof-cli -- critpath \
    --workload div --seed 11 --threads 2 | tee /tmp/critpath.out
grep -q 'parallelism' /tmp/critpath.out \
    || { echo "critpath report missing parallelism"; exit 1; }

echo "=== profile repository smoke ==="
# Serve an empty store on an ephemeral port, ingest two deterministic
# seeded runs over TCP, then gate on the regression query: a candidate
# re-measured from the same seed must not regress against its own
# baseline (exit 3 would mean the daemon flagged a regression).
REPO_DIR="$(mktemp -d /tmp/profrepo-smoke.XXXXXX)"
PORT_FILE="$REPO_DIR/port"
cargo run --release --bin taskprof-cli -- serve \
    --dir "$REPO_DIR/store" --addr 127.0.0.1:0 --port-file "$PORT_FILE" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$REPO_DIR"' EXIT
for _ in $(seq 1 300); do [ -s "$PORT_FILE" ] && break; sleep 0.2; done
[ -s "$PORT_FILE" ] || { echo "serve daemon never published its port"; exit 1; }
ADDR="127.0.0.1:$(cat "$PORT_FILE")"
# Exercise both wire protocols against the same daemon: the binary
# TPF1 framing and the JSON-lines fallback must store runs in one log
# and answer queries byte-identically.
cargo run --release --bin taskprof-cli -- ingest \
    --addr "$ADDR" --app fib --seed 41 --runs 2 --threads 2 --proto bin
cargo run --release --bin taskprof-cli -- ingest \
    --addr "$ADDR" --app fib --seed 43 --runs 1 --threads 2 --proto json
cargo run --release --bin taskprof-cli -- query top \
    --addr "$ADDR" --bench fib --threads 2 --proto bin | tee /tmp/top.bin.out
cargo run --release --bin taskprof-cli -- query top \
    --addr "$ADDR" --bench fib --threads 2 --proto json | tee /tmp/top.json.out
cmp /tmp/top.bin.out /tmp/top.json.out \
    || { echo "query output differs between wire protocols"; exit 1; }
grep -q '"runs":3' /tmp/top.bin.out \
    || { echo "expected 3 runs across both protocols"; exit 1; }
cargo run --release --bin taskprof-cli -- query regress \
    --addr "$ADDR" --bench fib --threads 2 --app fib --seed 41

echo "=== live subscription smoke ==="
# One subscriber per wire protocol; each must observe the ingest
# notification pushed mid-stream plus periodic telemetry snapshots.
# Use the already-built binary directly: cargo's file locks would eat
# the subscription window while the watchers count frames.
CLI=target/release/taskprof-cli
"$CLI" watch \
    --addr "$ADDR" --proto json --interval-ms 200 --frames 20 --format jsonl \
    > /tmp/watch.json.out &
WATCH_JSON_PID=$!
"$CLI" watch \
    --addr "$ADDR" --proto bin --interval-ms 200 --frames 20 --format jsonl \
    > /tmp/watch.bin.out &
WATCH_BIN_PID=$!
# Hold the upload until both subscribers are attached; they then keep
# watching for ~4s, so the fan-out provably reaches them.
for _ in $(seq 1 100); do
    "$CLI" query stats --prometheus --addr "$ADDR" > /tmp/prom.out
    SUBS=$(awk '$1 == "profserve_subscriptions_total" { print $2 }' /tmp/prom.out)
    [ "${SUBS:-0}" -ge 2 ] && break
    sleep 0.1
done
[ "${SUBS:-0}" -ge 2 ] || { echo "subscribers never attached"; exit 1; }
"$CLI" ingest \
    --addr "$ADDR" --app fib --seed 45 --runs 1 --threads 2 --proto bin
wait "$WATCH_JSON_PID" || { echo "json watch failed"; exit 1; }
wait "$WATCH_BIN_PID" || { echo "binary watch failed"; exit 1; }
for OUT in /tmp/watch.json.out /tmp/watch.bin.out; do
    grep -q '"event":"ingest"' "$OUT" \
        || { echo "$OUT: no ingest notification observed"; exit 1; }
    grep -q '"event":"telemetry"' "$OUT" \
        || { echo "$OUT: no telemetry snapshot observed"; exit 1; }
done
# The Prometheus scrape must expose the request-latency histograms.
"$CLI" query stats --prometheus --addr "$ADDR" > /tmp/prom.out
grep -q '^profserve_request_latency_ns_bucket' /tmp/prom.out \
    || { echo "no latency histogram in prometheus scrape"; exit 1; }
grep -q '^profserve_store_runs' /tmp/prom.out \
    || { echo "no store gauges in prometheus scrape"; exit 1; }

echo "=== resilient export smoke (spool while down, drain when back) ==="
# Daemon still up: an ingest pointed at a *dead* port with --spool must
# exit 0 and leave a frame file; `drain` against the live daemon must
# deliver it exactly once and empty the spool.
SPOOL_DIR="$REPO_DIR/spool"
DEAD_ADDR="127.0.0.1:1"
cargo run --release --bin taskprof-cli -- ingest \
    --addr "$DEAD_ADDR" --app fib --seed 77 --runs 1 --threads 2 \
    --spool "$SPOOL_DIR" --deadline-ms 500
FRAMES=$(find "$SPOOL_DIR" -name '*.frame' | wc -l)
[ "$FRAMES" -eq 1 ] || { echo "expected 1 spooled frame, found $FRAMES"; exit 1; }
cargo run --release --bin taskprof-cli -- drain --addr "$ADDR" --spool "$SPOOL_DIR"
FRAMES=$(find "$SPOOL_DIR" -name '*.frame' | wc -l)
[ "$FRAMES" -eq 0 ] || { echo "spool not drained: $FRAMES frame(s) left"; exit 1; }
# Draining an empty spool is a no-op success (exactly-once).
cargo run --release --bin taskprof-cli -- drain --addr "$ADDR" --spool "$SPOOL_DIR"
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

echo "=== replication smoke (two daemons, auth, sharded follower) ==="
# A leader and a sharded follower on ephemeral ports, both requiring the
# shared secret; `replicate` pumps the leader's log over, and the
# replicas must answer the canonical query byte-identically. A second
# pump must be exactly-once (nothing new to apply).
LEAD_PORT_FILE="$REPO_DIR/lead-port"
FOLW_PORT_FILE="$REPO_DIR/folw-port"
"$CLI" serve --dir "$REPO_DIR/leader" --addr 127.0.0.1:0 \
    --port-file "$LEAD_PORT_FILE" --auth hunter2 &
LEAD_PID=$!
"$CLI" serve --dir "$REPO_DIR/follower" --addr 127.0.0.1:0 \
    --port-file "$FOLW_PORT_FILE" --auth hunter2 --shards 2 --keep-last 100 &
FOLW_PID=$!
trap 'kill "$SERVE_PID" "$LEAD_PID" "$FOLW_PID" 2>/dev/null || true; rm -rf "$REPO_DIR"' EXIT
for _ in $(seq 1 300); do
    [ -s "$LEAD_PORT_FILE" ] && [ -s "$FOLW_PORT_FILE" ] && break
    sleep 0.2
done
{ [ -s "$LEAD_PORT_FILE" ] && [ -s "$FOLW_PORT_FILE" ]; } \
    || { echo "replication daemons never published their ports"; exit 1; }
LEAD_ADDR="127.0.0.1:$(cat "$LEAD_PORT_FILE")"
FOLW_ADDR="127.0.0.1:$(cat "$FOLW_PORT_FILE")"
# The wrong secret must be refused before any data moves.
if "$CLI" query stats --addr "$LEAD_ADDR" --auth wrong 2>/dev/null; then
    echo "wrong secret was accepted"; exit 1
fi
"$CLI" ingest --addr "$LEAD_ADDR" --app fib --seed 61 --runs 3 --threads 2 \
    --proto bin --auth hunter2
"$CLI" replicate --from "$LEAD_ADDR" --to "$FOLW_ADDR" --auth hunter2 --batch 2
"$CLI" query top --addr "$LEAD_ADDR" --bench fib --threads 2 --auth hunter2 \
    > /tmp/top.lead.out
"$CLI" query top --addr "$FOLW_ADDR" --bench fib --threads 2 --auth hunter2 \
    > /tmp/top.folw.out
cmp /tmp/top.lead.out /tmp/top.folw.out \
    || { echo "replica query output diverges from the leader"; exit 1; }
grep -q '"runs":3' /tmp/top.folw.out \
    || { echo "follower missed replicated runs"; exit 1; }
"$CLI" replicate --from "$LEAD_ADDR" --to "$FOLW_ADDR" --auth hunter2 \
    | tee /tmp/replicate.out
grep -q ' 0 frame(s) applied' /tmp/replicate.out \
    || { echo "re-pump was not a no-op"; exit 1; }
kill "$LEAD_PID" "$FOLW_PID" 2>/dev/null || true
wait "$LEAD_PID" 2>/dev/null || true
wait "$FOLW_PID" 2>/dev/null || true

echo "=== fault-injection torture (pinned seed) ==="
# Crash-at-every-injection-point over the store's VFS seam — single
# store, plus the sharded leader/follower replication sweeps; the pinned
# seed keeps nightly logs comparable while the in-tree seeds rotate.
TASKPROF_TORTURE_SEED="${TASKPROF_TORTURE_SEED:-20260808}" \
    cargo test --release --test profstore_torture -q

echo "CI_OK"
