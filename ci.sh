#!/bin/bash
# Minimal CI gate: release build, full test suite, lint-clean clippy,
# and a smoke run of the overhead benchmark (regenerates
# BENCH_overhead.json, checked in).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release

echo "=== tests ==="
cargo test -q

echo "=== clippy (workspace, all targets) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== overhead bench smoke (test scale) ==="
BENCH_SCALE="${BENCH_SCALE:-test}" BENCH_REPS="${BENCH_REPS:-1}" \
    cargo run --release -p bench --bin overhead_json -- /tmp/BENCH_overhead.smoke.json
echo "(full run: BENCH_SCALE=small cargo run --release -p bench --bin overhead_json)"

echo "=== live telemetry smoke ==="
# Polls the lock-free gauges while nqueens runs, then asserts both
# exporters round-trip and the HWM gauge matches the profile.
cargo run --release --example live_telemetry | tee /tmp/live_telemetry.out
grep -q "LIVE_TELEMETRY_OK" /tmp/live_telemetry.out

echo "=== schedule exploration smoke ==="
# Deterministic simulated schedules over the built-in workloads, every
# run checked against the paper's profile invariants plus a differential
# live-vs-replay comparison. TASKPROF_EXPLORE_SEEDS scales the sweep
# (nightly runs use hundreds; the smoke default keeps CI fast).
TASKPROF_EXPLORE_SEEDS="${TASKPROF_EXPLORE_SEEDS:-32}" \
    cargo run --release --bin taskprof-cli -- explore --threads 2 --workload all --dfs 100

echo "CI_OK"
