#!/bin/bash
# Minimal CI gate: release build, full test suite, lint-clean clippy.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== build (release) ==="
cargo build --release

echo "=== tests ==="
cargo test -q

echo "=== clippy ==="
cargo clippy -- -D warnings

echo "CI_OK"
